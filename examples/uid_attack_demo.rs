//! The headline result of the paper: a non-control-data attack that corrupts
//! the server's cached UID succeeds against an unprotected server (and even
//! against address-space partitioning), but is detected with certainty by
//! the 2-variant UID data variation.
//!
//! Run with: `cargo run --example uid_attack_demo`

use nvariant::DeploymentConfig;
use nvariant_apps::attacks::{run_attack, Attack};

fn main() {
    let attacks = Attack::all();
    let configs = vec![
        DeploymentConfig::Unmodified,
        DeploymentConfig::TransformedSingle,
        DeploymentConfig::TwoVariantAddress,
        DeploymentConfig::TwoVariantUid,
        DeploymentConfig::composed_uid_and_address(),
    ];

    println!("== UID corruption attacks against the mini Apache ==\n");
    for attack in &attacks {
        println!("[{}] {}\n", attack.name, attack.description);
        for config in &configs {
            let outcome = run_attack(config, attack);
            println!(
                "    {:<45} -> {:<9} (predicted: {}){}",
                config.to_string(),
                outcome.result.to_string(),
                outcome.expected,
                if outcome.matches_expectation() {
                    ""
                } else {
                    "  <-- UNEXPECTED"
                }
            );
            if let Some(alarm) = &outcome.alarm {
                println!("        {alarm}");
            }
        }
        println!();
    }
    println!(
        "Note the class-specificity in both directions: the relative UID overwrite sails past\n\
         address-space partitioning, and the non-UID data corruption sails past the UID variation —\n\
         each variation gives a guarantee only for its own attack class, which is why the paper\n\
         proposes composing them (the last configuration)."
    );
}
