//! Quickstart: deploy a small privilege-dropping program as a 2-variant
//! UID-diversity system (the paper's Configuration 4) and watch it behave
//! exactly like the original on benign input.
//!
//! Run with: `cargo run --example quickstart`

use nvariant::prelude::*;

fn main() -> Result<(), BuildError> {
    // A server-style program: look up the service UID, drop privileges,
    // and refuse to continue if it is somehow still root.
    let source = r"
        var service_uid: uid_t;
        fn main() -> int {
            var rc: int;
            service_uid = getuid();
            if (service_uid == 0) {
                rc = setuid(48);
                if (rc != 0) { return 2; }
            }
            if (geteuid() == 0) { return 3; }
            return 0;
        }
    ";

    println!("== Security through Redundant Data Diversity: quickstart ==\n");

    for config in DeploymentConfig::paper_configurations() {
        let mut system = NVariantSystemBuilder::from_source(source)?
            .config(config.clone())
            .initial_uid(Uid::ROOT)
            .build()?;
        let outcome = system.run();
        println!("{config}");
        println!("    outcome ............ {outcome}");
        println!("    variants ........... {}", outcome.metrics.variants);
        println!(
            "    instructions ....... {}",
            outcome.metrics.total_instructions
        );
        println!(
            "    monitor checks ..... {}",
            outcome.metrics.monitor_checks
        );
        println!(
            "    transformation ..... {} source changes\n",
            system.transform_stats().total()
        );
    }

    // Show the data diversity itself: the same logical UID has different
    // concrete representations in the two variants of Configuration 4.
    let r1 = UidTransform::paper_mask();
    println!("Reexpression of the UID data class (Table 1, last row):");
    println!("    R0(48) = 48 (identity)");
    println!("    R1(48) = {:#010x}", r1.apply(Uid::new(48)).as_u32());
    println!(
        "    R1(0)  = {:#010x}  <- what `root` looks like inside variant 1",
        r1.apply(Uid::ROOT).as_u32()
    );
    Ok(())
}
