//! Unshared files (§3.4–§5 of the paper): trusted external data arrives in
//! each variant already re-expressed, because each variant opens its own
//! copy of the file. This example shows the per-variant `/etc/passwd` views
//! of a Configuration 4 deployment, plus the §5 idea of diversifying other
//! configuration data the same way.
//!
//! Run with: `cargo run --example unshared_files`

use nvariant::prelude::*;
use nvariant_apps::httpd_source;
use nvariant_apps::workload::benign_request;

fn main() -> Result<(), BuildError> {
    let mut system = NVariantSystemBuilder::from_source(httpd_source())?
        .config(DeploymentConfig::TwoVariantUid)
        .initial_uid(Uid::ROOT)
        .build()?;

    println!("== Unshared files under Configuration 4 ==\n");
    for variant in 0..2 {
        let path = format!("/etc/passwd-{variant}");
        let data = system
            .kernel()
            .fs()
            .get(&path)
            .expect("per-variant passwd copies are provisioned at build time");
        println!("{path} (what variant {variant} reads when it opens /etc/passwd):");
        for line in String::from_utf8_lossy(&data.data).lines() {
            println!("    {line}");
        }
        println!();
    }
    println!(
        "The UID columns differ, yet both files describe the same accounts: the httpd entry's\n\
         UID is 48 in variant 0 and 48 xor 0x7FFFFFFF = {} in variant 1, and the two values\n\
         canonicalize to the same identity at every system call.\n",
        48u32 ^ 0x7FFF_FFFF
    );

    // Serve one request so the unshared reads actually happen, then show the
    // per-variant I/O counted by the monitor.
    system
        .kernel_mut()
        .net_mut()
        .preload_request(Port::HTTP, benign_request("/index.html"));
    let outcome = system.run();
    println!("Serving one page: {outcome}");
    println!(
        "    kernel I/O bytes (shared files + network, performed once): {}",
        outcome.metrics.io_bytes
    );
    println!(
        "    monitor equivalence checks: {}",
        outcome.metrics.monitor_checks
    );
    Ok(())
}
