//! The experiment-plan API: sweep deployment configurations across several
//! *worlds* (alternative account databases, document roots, injected
//! filesystem faults), shard the matrix as a distributed coordinator
//! would, and merge the shard reports back into the exact unsharded
//! result.
//!
//! Run with: `cargo run --release --example campaign_worlds`

use nvariant::DeploymentConfig;
use nvariant_apps::campaigns::{benign_scenario, httpd_campaign};
use nvariant_apps::workload::WorkloadMix;
use nvariant_campaign::CampaignReport;
use nvariant_simos::WorldTemplate;

fn main() {
    // A plan is a pure description: configurations enter as build-once
    // compiled artifacts, worlds as named templates, and every cell's seed
    // is derived from its (config, world, scenario, replicate) coordinates.
    let plan = httpd_campaign(
        "worlds-demo",
        &[
            DeploymentConfig::Unmodified,
            DeploymentConfig::TwoVariantUid,
        ],
    )
    .worlds(WorldTemplate::catalogue())
    .scenario(benign_scenario(&WorkloadMix::standard(), 12))
    .replicates(2);

    println!(
        "== Experiment plan across {} worlds ==\n",
        plan.world_count()
    );
    println!(
        "matrix: {} configs x {} worlds x 1 scenario x 2 replicates = {} cells",
        plan.compiled_configs().len(),
        plan.world_count(),
        plan.cells().len()
    );
    // The canonical plan hash (name + seed + full axes) travels in every
    // report and shard file; merges are gated on it, so shards from a
    // differently-shaped plan can never blend in silently.
    println!(
        "plan hash: {:#018x} (shape {})\n",
        plan.plan_hash(),
        plan.shape()
    );

    // Run the whole matrix on a worker pool.
    let whole = plan.run(4);
    for world in whole.world_labels() {
        let cells = whole.cells_for_world(world);
        let mut tally = nvariant_campaign::RequestTally::default();
        for cell in &cells {
            tally.absorb(&cell.tally());
        }
        println!("  {world:<14} {tally}");
    }
    println!();
    println!("{}", whole.render_summary());

    // Shard the same plan three ways — as three processes or machines
    // would — and merge the reports. The canonical serialization is
    // byte-identical to the unsharded run.
    let merged = CampaignReport::merge((0..3).map(|index| plan.run_shard(index, 3, 2)))
        .expect("shards of one plan always merge");
    println!(
        "3-way shard + merge reproduces the unsharded report: {}",
        if merged.canonical_text() == whole.canonical_text() {
            "byte-identical"
        } else {
            "MISMATCH"
        }
    );
}
