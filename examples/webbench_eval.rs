//! The Table 3 evaluation: throughput and latency of the mini Apache under
//! the four paper configurations at the unsaturated and saturated load
//! levels. (The `table3_report` binary in `crates/bench` prints the full
//! table with paper-value comparisons; this example is a smaller, faster
//! run suitable for a quick look.)
//!
//! Run with: `cargo run --release --example webbench_eval`

use nvariant::DeploymentConfig;
use nvariant_apps::workload::{LoadLevel, WebBench};

fn main() {
    let bench = WebBench::default();
    let light = LoadLevel {
        clients: 1,
        requests_per_client: 12,
    };
    let heavy = LoadLevel {
        clients: 15,
        requests_per_client: 2,
    };

    println!("== WebBench-style evaluation (abbreviated) ==\n");
    println!(
        "{:<38} {:>12} {:>10} {:>12} {:>10}",
        "Configuration", "Unsat KB/s", "Unsat ms", "Sat KB/s", "Sat ms"
    );
    let mut baseline: Option<(f64, f64)> = None;
    for config in DeploymentConfig::paper_configurations() {
        let unsaturated = bench.measure(&config, &light);
        let saturated = bench.measure(&config, &heavy);
        println!(
            "{:<38} {:>12.0} {:>10.2} {:>12.0} {:>10.2}",
            config.to_string(),
            unsaturated.throughput_kb_s,
            unsaturated.latency_ms,
            saturated.throughput_kb_s,
            saturated.latency_ms
        );
        match &baseline {
            None => baseline = Some((unsaturated.throughput_kb_s, saturated.throughput_kb_s)),
            Some((unsat_base, sat_base)) => {
                println!(
                    "{:<38} {:>11.1}% {:>10} {:>11.1}% {:>10}",
                    "    relative to Configuration 1",
                    (unsaturated.throughput_kb_s - unsat_base) / unsat_base * 100.0,
                    "",
                    (saturated.throughput_kb_s - sat_base) / sat_base * 100.0,
                    ""
                );
            }
        }
    }
    println!(
        "\nExpected shape (paper): Configuration 2 is nearly free; Configurations 3 and 4 lose\n\
         ~10-15% unsaturated and roughly half their throughput saturated; Configuration 4 costs\n\
         only a few percent more than Configuration 3."
    );
}
