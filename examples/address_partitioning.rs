//! Figure 1 of the paper: two-variant address-space partitioning. An attack
//! that injects a complete absolute address works against at most one
//! variant; the other faults, and the monitor reports the divergence.
//!
//! Run with: `cargo run --example address_partitioning`

use nvariant::prelude::*;

const ATTACKED_PROGRAM: &str = r"
    var secret_flag: int = 0;
    fn main() -> int {
        var p: ptr;
        // Attack data: a complete absolute address (here the address of
        // `secret_flag` in the conventional low-half layout) reaches a
        // pointer the program then writes through.
        p = 0x00100000;
        *p = 1;
        if (secret_flag == 1) { return 99; }
        return 0;
    }
";

fn main() -> Result<(), BuildError> {
    println!("== Figure 1: address-space partitioning ==\n");

    // Against a single unprotected process the injected absolute address
    // lands exactly where the attacker wanted.
    let mut single = NVariantSystemBuilder::from_source(ATTACKED_PROGRAM)?
        .config(DeploymentConfig::Unmodified)
        .build()?;
    let outcome = single.run();
    println!("Configuration 1 (single process): {outcome}");
    println!("    -> the write landed; the program observed the corrupted flag\n");

    // Under partitioning the same concrete address cannot be valid in both
    // variants at once: P1 lives in the upper half, so it faults.
    let mut partitioned = NVariantSystemBuilder::from_source(ATTACKED_PROGRAM)?
        .config(DeploymentConfig::TwoVariantAddress)
        .build()?;
    let outcome = partitioned.run();
    println!("Configuration 3 (2-variant address partitioning): {outcome}");
    if let Some(alarm) = &outcome.alarm {
        println!("    -> {alarm}");
    }

    // The variant layouts really are disjoint.
    let layouts: Vec<String> = Variation::address_partitioning()
        .variant_specs(2)
        .iter()
        .map(|spec| spec.addr.describe())
        .collect();
    println!("\nPer-variant address reexpression: {layouts:?}");
    Ok(())
}
