//! Workspace root crate for the *Security through Redundant Data Diversity* reproduction.
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! directories; the actual functionality lives in the `crates/*` members.
//! See the [`nvariant`] facade crate for the public API.

#![forbid(unsafe_code)]

pub use nvariant;
pub use nvariant_apps as apps;
pub use nvariant_diversity as diversity;
pub use nvariant_monitor as monitor;
pub use nvariant_simos as simos;
pub use nvariant_transform as transform;
pub use nvariant_types as types;
pub use nvariant_vm as vm;
