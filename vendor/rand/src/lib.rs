//! Offline stand-in for the `rand` crate.
//!
//! Provides the tiny slice of the `rand` 0.8 API the workspace uses —
//! `StdRng::seed_from_u64` plus `Rng::gen_range` over half-open integer
//! ranges — backed by a splitmix64 generator. Deterministic for a given seed,
//! which is exactly what the workload generator wants; not cryptographic.

use std::ops::Range;

/// Mirror of `rand::SeedableRng`, reduced to the one constructor in use.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)` using `next` as the word source.
    fn sample(low: Self, high: Self, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleUniform for $t {
                fn sample(low: Self, high: Self, next: &mut dyn FnMut() -> u64) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let span = (high as u128).wrapping_sub(low as u128);
                    let r = ((next)() as u128) % span;
                    (low as u128).wrapping_add(r) as Self
                }
            }
        )*
    };
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Mirror of `rand::Rng`, reduced to `gen_range` over half-open ranges.
pub trait Rng {
    /// Returns the next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let mut next = || self.next_u64();
        T::sample(range.start, range.end, &mut next)
    }
}

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u32..100), b.gen_range(0u32..100));
        }
    }

    #[test]
    fn stays_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
        }
    }
}
