//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] here is an `Arc<[u8]>`-backed immutable buffer with the same
//! cheap-clone semantics as the real type, covering the construction and
//! read-only accessors the workspace uses.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes {
            data: Arc::from([]),
        }
    }

    /// Creates a buffer borrowing nothing: the static slice is copied once.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes { data: Arc::from(s) }
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes {
            data: Arc::from(s.as_bytes()),
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn round_trips_vec() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::from("hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert!(!b.is_empty());
    }
}
