//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace's five
//! benches use — groups, `bench_function`/`bench_with_input`, `Bencher::iter`,
//! `black_box`, and the two entry macros — with a simple fixed-iteration
//! timer instead of criterion's statistical engine. Benches therefore compile
//! and run offline and print a mean per-iteration time, without confidence
//! intervals or HTML reports.

use std::time::{Duration, Instant};

/// Re-exported so `black_box(x)` behaves like criterion's.
pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    /// Default number of timed samples per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default sample count for benchmarks driven by this instance.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(name, sample_size, f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub timer has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub runs a fixed sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function<I: IntoBenchmarkId, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, f);
        self
    }

    /// Times `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group. No-op beyond parity with criterion.
    pub fn finish(self) {}
}

/// Iteration driver handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to touch lazy state, then a small fixed batch.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..Self::BATCH {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += Self::BATCH;
    }

    const BATCH: u64 = 8;
}

/// Identifier for a parameterized benchmark, mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter label.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function`-style methods (`&str` or `BenchmarkId`).
pub trait IntoBenchmarkId {
    /// Renders the id as the printed label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Throughput annotation, accepted but not reported by the stub.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher::default();
    for _ in 0..samples {
        f(&mut bencher);
    }
    if bencher.iters > 0 {
        let per_iter = bencher.elapsed / u32::try_from(bencher.iters).unwrap_or(u32::MAX);
        println!(
            "bench {label:<60} {per_iter:>12.2?}/iter ({} iters)",
            bencher.iters
        );
    } else {
        println!("bench {label:<60} (no iterations)");
    }
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: emits `main` calling each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("serve", "two_variant_uid");
        assert_eq!(id.into_benchmark_id(), "serve/two_variant_uid");
    }
}
