//! Offline stand-in for the `serde` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! workspace vendors a minimal `serde` that provides the two marker traits and
//! the `derive` feature the sources rely on. No actual serialization happens:
//! every type in the repository only uses `#[derive(Serialize, Deserialize)]`
//! as a forward-compatibility annotation, never a serializer. Swapping this
//! crate for the real `serde` is a one-line change in the workspace manifest.

/// Marker trait mirroring `serde::Serialize`.
///
/// The real trait's `serialize` method is deliberately omitted: nothing in the
/// workspace calls it, and omitting it lets the no-op derive stay empty.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl Serialize for str {}

impl_markers!(
    bool,
    char,
    String,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    ()
);

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize> Serialize for &T where T: ?Sized {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<T: Serialize> Serialize for std::collections::VecDeque<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}
impl<T: Serialize> Serialize for std::collections::HashSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::HashSet<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}
