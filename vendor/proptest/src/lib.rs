//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest grammar this workspace's property
//! tests use: a `proptest! { ... }` block with an optional
//! `#![proptest_config(...)]` header, test functions whose arguments are
//! `name in strategy` bindings, the `any::<T>()` and integer-range
//! strategies, and the `prop_assert*` macros. Sampling is deterministic:
//! the first cases enumerate the cross-product of per-argument edge values
//! (0, 1, extremes — each argument walks its edge table at a different
//! stride), the rest are splitmix64 pseudo-random draws seeded from the
//! test name — so failures reproduce exactly. There is no shrinking; the
//! failing input is printed by the assertion message instead.

use std::ops::Range;

/// Run-time configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a config running `cases` samples per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-case word source handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    case: u64,
    state: u64,
    args_sampled: u32,
}

impl TestRng {
    /// Builds the generator for one case of one named property.
    #[must_use]
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index, so every property
        // sees a different but reproducible stream.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            case,
            state: seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            args_sampled: 0,
        }
    }

    /// The zero-based index of the case being generated.
    #[must_use]
    pub fn case(&self) -> u64 {
        self.case
    }

    /// The zero-based position of the argument about to be sampled within
    /// this case; each call advances the counter. Strategies use it to
    /// decorrelate their deterministic phases: argument `k` walks its edge
    /// table at 1/L^k the rate of argument 0, so the edge phase enumerates
    /// the full cross-product of edge values instead of only the diagonal.
    pub fn next_arg_index(&mut self) -> u32 {
        let index = self.args_sampled;
        self.args_sampled += 1;
        index
    }

    /// Next raw 64-bit word (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of values for one property argument, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Produces the value for the current case.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy, mirroring `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized + 'static {
    /// Edge values enumerated before random sampling begins.
    const EDGES: &'static [Self];

    /// A uniformly random value.
    fn random(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),* $(,)?) => {
        $(
            impl Arbitrary for $t {
                const EDGES: &'static [$t] =
                    &[0, 1, <$t>::MAX, <$t>::MAX / 2, <$t>::MAX / 2 + 1];

                fn random(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    const EDGES: &'static [bool] = &[false, true];

    fn random(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The "any value of `T`" strategy, mirroring `proptest::arbitrary::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary + Copy> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let len = T::EDGES.len() as u64;
        let arg = rng.next_arg_index();
        // Edge phase: the first len^2 cases. Argument k steps through the
        // edge table once every len^k cases (cycling), so a two-argument
        // property sees the full cross-product of edge values — including
        // mixed extremes like (0, MAX) — before random sampling begins.
        match len.checked_pow(arg) {
            Some(stride) if rng.case() < len * len => {
                T::EDGES[(rng.case() / stride % len) as usize]
            }
            _ => T::random(rng),
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // i128 holds every supported element type, including
                    // negative starts, so the span math never overflows.
                    let span = (self.end as i128) - (self.start as i128);
                    let arg = rng.next_arg_index();
                    // Boundary phase for the first 4 cases, decorrelated per
                    // argument like the edge phase of `Any` (start, end-1).
                    let offset = match 2u64.checked_pow(arg) {
                        Some(stride) if rng.case() < 4 => {
                            (rng.case() / stride % 2) as i128 * (span - 1)
                        }
                        _ => (rng.next_u64() as i128) % span,
                    };
                    ((self.start as i128) + offset) as $t
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Prelude mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Mirrors `proptest::prop_assert!`: plain assert, since there is no shrinker
/// to report to — a panic fails the case and prints the message.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Mirrors `proptest::proptest!`: expands each `fn name(arg in strategy, ..)`
/// into a `#[test]`-able zero-argument function that loops over the cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..u64::from(config.cases) {
                    let mut rng =
                        $crate::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn edges_come_first_then_random(x in any::<u32>()) {
            // Merely exercises the expansion; the property is trivially true.
            prop_assert!(u64::from(x) <= u64::from(u32::MAX));
        }

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in any::<u32>()) {
            prop_assert!((10..20).contains(&x));
            let _ = y;
        }
    }

    #[test]
    fn first_cases_enumerate_edges() {
        let mut seen = Vec::new();
        for case in 0..5 {
            let mut rng = TestRng::for_case("edge_probe", case);
            seen.push(Strategy::sample(&any::<u32>(), &mut rng));
        }
        assert_eq!(seen, vec![0, 1, u32::MAX, u32::MAX / 2, u32::MAX / 2 + 1]);
    }

    #[test]
    fn edge_phase_enumerates_mixed_combinations() {
        // With two u32 arguments (5 edges each) the first 25 cases must
        // cover the full 5x5 cross-product, including off-diagonal pairs.
        let mut seen = std::collections::BTreeSet::new();
        for case in 0..25 {
            let mut rng = TestRng::for_case("cross", case);
            let x = Strategy::sample(&any::<u32>(), &mut rng);
            let y = Strategy::sample(&any::<u32>(), &mut rng);
            seen.insert((x, y));
        }
        assert_eq!(seen.len(), 25);
        assert!(seen.contains(&(0, u32::MAX)));
        assert!(seen.contains(&(u32::MAX, 0)));
    }

    #[test]
    fn negative_start_ranges_stay_in_bounds() {
        for case in 0..64 {
            let mut rng = TestRng::for_case("neg_range", case);
            let v = Strategy::sample(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&v), "case {case}: {v}");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = TestRng::for_case("det", 9);
        let mut b = TestRng::for_case("det", 9);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
