//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The vendored `serde` stand-in defines `Serialize`/`Deserialize` as marker
//! traits with no required methods, so the derives here emit nothing at all:
//! the annotated type simply never gains the impls, and because no code in the
//! workspace bounds on the traits, nothing notices. This keeps the proc-macro
//! crate free of `syn`/`quote`, which are unavailable offline.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
