//! Virtual addresses in the simulated process address space.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A 32-bit virtual address in a simulated variant process.
///
/// Address-space partitioning (Table 1 of the paper) places variant 0
/// entirely in addresses whose high bit is `0` and variant 1 in addresses
/// whose high bit is `1`; an attack that injects a complete absolute address
/// is therefore guaranteed to fault in one of the two variants.
///
/// # Example
///
/// ```
/// use nvariant_types::VirtAddr;
///
/// let a = VirtAddr::new(0x0000_4000);
/// let partitioned = a.with_high_bit();
/// assert!(partitioned.high_bit_set());
/// assert_eq!(partitioned.without_high_bit(), a);
/// assert_eq!(a.checked_add(4), Some(VirtAddr::new(0x0000_4004)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct VirtAddr(u32);

/// The partition bit used by address-space partitioning: `0x8000_0000`.
pub const PARTITION_BIT: u32 = 0x8000_0000;

impl VirtAddr {
    /// The null address.
    pub const NULL: VirtAddr = VirtAddr(0);

    /// Creates an address from its raw numeric value.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw numeric value.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns the address as a `usize` offset, useful for indexing segments.
    #[must_use]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this is the null address.
    #[must_use]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if the partition (high) bit is set.
    #[must_use]
    pub const fn high_bit_set(self) -> bool {
        self.0 & PARTITION_BIT != 0
    }

    /// Returns the address with the partition bit set.
    #[must_use]
    pub const fn with_high_bit(self) -> Self {
        VirtAddr(self.0 | PARTITION_BIT)
    }

    /// Returns the address with the partition bit cleared.
    #[must_use]
    pub const fn without_high_bit(self) -> Self {
        VirtAddr(self.0 & !PARTITION_BIT)
    }

    /// Adds `offset` bytes, returning `None` on overflow.
    #[must_use]
    pub fn checked_add(self, offset: u32) -> Option<Self> {
        self.0.checked_add(offset).map(VirtAddr)
    }

    /// Subtracts `offset` bytes, returning `None` on underflow.
    #[must_use]
    pub fn checked_sub(self, offset: u32) -> Option<Self> {
        self.0.checked_sub(offset).map(VirtAddr)
    }

    /// Adds `offset` bytes with wraparound (two's complement), matching the
    /// behaviour of pointer arithmetic in the simulated machine.
    #[must_use]
    pub const fn wrapping_add(self, offset: u32) -> Self {
        VirtAddr(self.0.wrapping_add(offset))
    }

    /// Returns the byte distance from `other` to `self`, if non-negative.
    #[must_use]
    pub fn offset_from(self, other: VirtAddr) -> Option<u32> {
        self.0.checked_sub(other.0)
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtAddr({:#010x})", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u32> for VirtAddr {
    fn from(raw: u32) -> Self {
        VirtAddr(raw)
    }
}

impl From<VirtAddr> for u32 {
    fn from(addr: VirtAddr) -> Self {
        addr.0
    }
}

impl Add<u32> for VirtAddr {
    type Output = VirtAddr;

    fn add(self, rhs: u32) -> VirtAddr {
        VirtAddr(self.0.wrapping_add(rhs))
    }
}

impl Sub<u32> for VirtAddr {
    type Output = VirtAddr;

    fn sub(self, rhs: u32) -> VirtAddr {
        VirtAddr(self.0.wrapping_sub(rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_bit_manipulation() {
        let a = VirtAddr::new(0x1234);
        assert!(!a.high_bit_set());
        let b = a.with_high_bit();
        assert!(b.high_bit_set());
        assert_eq!(b.without_high_bit(), a);
        assert_eq!(b.as_u32(), 0x8000_1234);
    }

    #[test]
    fn arithmetic() {
        let a = VirtAddr::new(100);
        assert_eq!((a + 4).as_u32(), 104);
        assert_eq!((a - 4).as_u32(), 96);
        assert_eq!(a.checked_add(4), Some(VirtAddr::new(104)));
        assert_eq!(a.checked_sub(200), None);
        assert_eq!(VirtAddr::new(u32::MAX).checked_add(1), None);
        assert_eq!(VirtAddr::new(u32::MAX).wrapping_add(1), VirtAddr::NULL);
    }

    #[test]
    fn offset_from() {
        let base = VirtAddr::new(0x1000);
        let p = VirtAddr::new(0x1010);
        assert_eq!(p.offset_from(base), Some(0x10));
        assert_eq!(base.offset_from(p), None);
    }

    #[test]
    fn null_address() {
        assert!(VirtAddr::NULL.is_null());
        assert!(!VirtAddr::new(1).is_null());
    }

    #[test]
    fn display_formats_as_hex() {
        assert_eq!(format!("{}", VirtAddr::new(0x8000_1234)), "0x80001234");
        assert_eq!(
            format!("{:?}", VirtAddr::new(0x1234)),
            "VirtAddr(0x00001234)"
        );
    }
}
