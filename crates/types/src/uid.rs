//! User and group identifier newtypes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A user identifier, mirroring POSIX `uid_t`.
///
/// In the paper, UID values are the *target type* of the data variation: the
/// second variant stores every UID re-expressed as `u ⊕ 0x7FFFFFFF`, so the
/// concrete bit pattern `0` no longer means *root* inside that variant.
/// This type always holds the **canonical** (un-reexpressed) value when used
/// on the kernel side of the system; re-expressed values flowing through
/// variant memory are plain [`Word`](crate::Word)s until they are inverted at
/// the target-interpreter boundary.
///
/// # Example
///
/// ```
/// use nvariant_types::Uid;
///
/// let www = Uid::new(48);
/// assert!(!www.is_root());
/// assert_eq!(www.as_u32(), 48);
/// assert_eq!(format!("{www}"), "uid(48)");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Uid(u32);

impl Uid {
    /// The superuser identity (`uid == 0`).
    pub const ROOT: Uid = Uid(0);

    /// The conventional "nobody" user on many Unix systems.
    pub const NOBODY: Uid = Uid(65534);

    /// Creates a UID from its raw numeric value.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        Uid(raw)
    }

    /// Returns the raw numeric value.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns `true` if this UID denotes the superuser.
    #[must_use]
    pub const fn is_root(self) -> bool {
        self.0 == 0
    }

    /// Applies a bitwise XOR to the raw value, returning a new UID.
    ///
    /// This is the primitive used by the UID reexpression functions in the
    /// paper (`R₁(u) = u ⊕ 0x7FFFFFFF`).
    #[must_use]
    pub const fn xor(self, mask: u32) -> Self {
        Uid(self.0 ^ mask)
    }
}

impl fmt::Debug for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uid({})", self.0)
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid({})", self.0)
    }
}

impl fmt::LowerHex for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u32> for Uid {
    fn from(raw: u32) -> Self {
        Uid(raw)
    }
}

impl From<Uid> for u32 {
    fn from(uid: Uid) -> Self {
        uid.0
    }
}

/// A group identifier, mirroring POSIX `gid_t`.
///
/// The paper uses the term *UID* to denote both UID and GID values (§3); the
/// reexpression machinery treats both identically, but keeping separate Rust
/// types prevents accidental cross-assignment in the kernel model.
///
/// # Example
///
/// ```
/// use nvariant_types::Gid;
///
/// let wheel = Gid::new(10);
/// assert_eq!(wheel.as_u32(), 10);
/// assert!(Gid::ROOT.is_root());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Gid(u32);

impl Gid {
    /// The root group (`gid == 0`).
    pub const ROOT: Gid = Gid(0);

    /// Creates a GID from its raw numeric value.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        Gid(raw)
    }

    /// Returns the raw numeric value.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns `true` if this GID denotes the root group.
    #[must_use]
    pub const fn is_root(self) -> bool {
        self.0 == 0
    }

    /// Applies a bitwise XOR to the raw value, returning a new GID.
    #[must_use]
    pub const fn xor(self, mask: u32) -> Self {
        Gid(self.0 ^ mask)
    }
}

impl fmt::Debug for Gid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gid({})", self.0)
    }
}

impl fmt::Display for Gid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gid({})", self.0)
    }
}

impl From<u32> for Gid {
    fn from(raw: u32) -> Self {
        Gid(raw)
    }
}

impl From<Gid> for u32 {
    fn from(gid: Gid) -> Self {
        gid.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_zero() {
        assert_eq!(Uid::ROOT.as_u32(), 0);
        assert!(Uid::ROOT.is_root());
        assert!(Gid::ROOT.is_root());
    }

    #[test]
    fn non_root_is_not_root() {
        assert!(!Uid::new(1000).is_root());
        assert!(!Gid::new(100).is_root());
    }

    #[test]
    fn xor_round_trips() {
        let uid = Uid::new(48);
        assert_eq!(uid.xor(0x7FFF_FFFF).xor(0x7FFF_FFFF), uid);
        let gid = Gid::new(513);
        assert_eq!(gid.xor(0x7FFF_FFFF).xor(0x7FFF_FFFF), gid);
    }

    #[test]
    fn xor_changes_value() {
        // Disjointedness of the paper's mask: flipping the low 31 bits always
        // changes the value.
        for raw in [0u32, 1, 48, 1000, u32::MAX] {
            assert_ne!(Uid::new(raw).xor(0x7FFF_FFFF), Uid::new(raw));
        }
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert_eq!(format!("{}", Uid::new(7)), "uid(7)");
        assert_eq!(format!("{:?}", Uid::new(7)), "Uid(7)");
        assert_eq!(format!("{}", Gid::new(7)), "gid(7)");
        assert_eq!(format!("{:?}", Gid::new(7)), "Gid(7)");
    }

    #[test]
    fn conversions() {
        let uid: Uid = 42u32.into();
        let raw: u32 = uid.into();
        assert_eq!(raw, 42);
        let gid: Gid = 7u32.into();
        let raw: u32 = gid.into();
        assert_eq!(raw, 7);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(Uid::new(1) < Uid::new(2));
        assert!(Gid::new(10) > Gid::new(9));
    }
}
