//! Small identifier newtypes for kernel objects and variants.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A file descriptor in the simulated kernel.
///
/// Negative values are never constructed; syscall-level errors are conveyed
/// through [`Errno`](crate::Errno) instead.
///
/// # Example
///
/// ```
/// use nvariant_types::Fd;
///
/// assert_eq!(Fd::STDIN.as_u32(), 0);
/// assert_eq!(Fd::new(5).as_u32(), 5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Fd(u32);

impl Fd {
    /// Standard input.
    pub const STDIN: Fd = Fd(0);
    /// Standard output.
    pub const STDOUT: Fd = Fd(1);
    /// Standard error.
    pub const STDERR: Fd = Fd(2);

    /// Creates a file descriptor from its raw index.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        Fd(raw)
    }

    /// Returns the raw descriptor index.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns the raw descriptor index as a `usize` for table lookups.
    #[must_use]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fd({})", self.0)
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

impl From<u32> for Fd {
    fn from(raw: u32) -> Self {
        Fd(raw)
    }
}

/// A process identifier in the simulated kernel.
///
/// # Example
///
/// ```
/// use nvariant_types::Pid;
/// assert_eq!(Pid::new(1).as_u32(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Pid(u32);

impl Pid {
    /// Creates a PID from its raw value.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        Pid(raw)
    }

    /// Returns the raw PID value.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pid({})", self.0)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// The index of a variant within an N-variant system (`0..N`).
///
/// The paper's case study uses two variants (`P0`, `P1`); the framework here
/// is generic over N, so the identifier is a full `usize` index.
///
/// # Example
///
/// ```
/// use nvariant_types::VariantId;
///
/// let v0 = VariantId::new(0);
/// let v1 = VariantId::new(1);
/// assert_ne!(v0, v1);
/// assert_eq!(format!("{v1}"), "P1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct VariantId(usize);

impl VariantId {
    /// The first variant (`P0`), which conventionally uses the identity
    /// reexpression function.
    pub const P0: VariantId = VariantId(0);
    /// The second variant (`P1`).
    pub const P1: VariantId = VariantId(1);

    /// Creates a variant identifier from its index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        VariantId(index)
    }

    /// Returns the variant index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for VariantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VariantId({})", self.0)
    }
}

impl fmt::Display for VariantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for VariantId {
    fn from(index: usize) -> Self {
        VariantId(index)
    }
}

/// A simulated TCP connection identifier.
///
/// # Example
///
/// ```
/// use nvariant_types::ConnId;
/// assert_eq!(ConnId::new(3).as_u64(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct ConnId(u64);

impl ConnId {
    /// Creates a connection identifier.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        ConnId(raw)
    }

    /// Returns the raw identifier.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ConnId({})", self.0)
    }
}

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn#{}", self.0)
    }
}

/// A TCP port number in the simulated network.
///
/// Ports below 1024 are *privileged*: binding them requires an effective UID
/// of root, which is why the Apache-like case study must start as root and
/// drop privileges afterwards.
///
/// # Example
///
/// ```
/// use nvariant_types::Port;
///
/// assert!(Port::HTTP.is_privileged());
/// assert!(!Port::new(8080).is_privileged());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Port(u16);

impl Port {
    /// The conventional HTTP port.
    pub const HTTP: Port = Port(80);

    /// Creates a port from its numeric value.
    #[must_use]
    pub const fn new(raw: u16) -> Self {
        Port(raw)
    }

    /// Returns the numeric port value.
    #[must_use]
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// Returns `true` if binding this port requires root privileges.
    #[must_use]
    pub const fn is_privileged(self) -> bool {
        self.0 < 1024
    }
}

impl fmt::Debug for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Port({})", self.0)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":{}", self.0)
    }
}

impl From<u16> for Port {
    fn from(raw: u16) -> Self {
        Port(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_descriptors() {
        assert_eq!(Fd::STDIN.as_u32(), 0);
        assert_eq!(Fd::STDOUT.as_u32(), 1);
        assert_eq!(Fd::STDERR.as_u32(), 2);
    }

    #[test]
    fn variant_ids_are_ordered() {
        assert!(VariantId::P0 < VariantId::P1);
        assert_eq!(VariantId::new(0), VariantId::P0);
        assert_eq!(VariantId::P1.index(), 1);
    }

    #[test]
    fn privileged_ports() {
        assert!(Port::new(80).is_privileged());
        assert!(Port::new(1023).is_privileged());
        assert!(!Port::new(1024).is_privileged());
        assert!(!Port::new(8080).is_privileged());
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(format!("{}", Fd::new(3)), "fd3");
        assert_eq!(format!("{}", Pid::new(9)), "pid 9");
        assert_eq!(format!("{}", VariantId::P0), "P0");
        assert_eq!(format!("{}", ConnId::new(12)), "conn#12");
        assert_eq!(format!("{}", Port::HTTP), ":80");
    }
}
