//! Table-driven hexadecimal codec shared by the artifact store and shard
//! interchange codecs.
//!
//! Both codecs carry binary payloads (code images, request/response bytes)
//! as lowercase hex tokens with a `-` sentinel for the empty payload, and
//! both sit on warm-run hot paths — an artifact-store hit re-encodes every
//! compiled code image, a shard merge decodes every exchange. Encoding goes
//! through a precomputed byte→digit-pair table and decoding through a
//! 256-entry nibble table, so neither walks a match per nibble.
//!
//! # Example
//!
//! ```
//! use nvariant_types::hex::{hex_decode, hex_encode};
//!
//! assert_eq!(hex_encode(&[0xAB, 0x01]), "ab01");
//! assert_eq!(hex_encode(&[]), "-");
//! assert_eq!(hex_decode("ab01").unwrap(), vec![0xAB, 0x01]);
//! assert_eq!(hex_decode("-").unwrap(), Vec::<u8>::new());
//! ```

/// Lowercase digit pair for every possible byte value.
const ENCODE: [[u8; 2]; 256] = {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut table = [[0u8; 2]; 256];
    let mut byte = 0usize;
    while byte < 256 {
        table[byte] = [DIGITS[byte >> 4], DIGITS[byte & 0xF]];
        byte += 1;
    }
    table
};

/// Nibble value for every possible digit byte; `0xFF` marks a non-digit.
/// The encoder emits lowercase, but the historical decoder accepted
/// uppercase too, so externally produced interchange files keep parsing.
const DECODE: [u8; 256] = {
    let mut table = [0xFFu8; 256];
    let mut b = 0usize;
    while b < 256 {
        let byte = b as u8;
        table[b] = match byte {
            b'0'..=b'9' => byte - b'0',
            b'a'..=b'f' => byte - b'a' + 10,
            b'A'..=b'F' => byte - b'A' + 10,
            _ => 0xFF,
        };
        b += 1;
    }
    table
};

/// Encodes `bytes` as lowercase hex; the empty payload encodes as `-` so it
/// survives space-delimited line formats as a token.
#[must_use]
pub fn hex_encode(bytes: &[u8]) -> String {
    if bytes.is_empty() {
        return "-".to_string();
    }
    let mut out = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.extend_from_slice(&ENCODE[usize::from(b)]);
    }
    String::from_utf8(out).expect("hex digits are ASCII")
}

/// Decodes a [`hex_encode`]d token.
///
/// # Errors
///
/// Returns a message naming the problem for odd-length tokens or non-digit
/// bytes (a parser of untrusted interchange files must report, never
/// panic — the input may be arbitrarily corrupt, including mid-UTF-8
/// truncations).
pub fn hex_decode(token: &str) -> Result<Vec<u8>, String> {
    if token == "-" {
        return Ok(Vec::new());
    }
    if !token.len().is_multiple_of(2) {
        return Err(format!("odd-length hex payload ({} bytes)", token.len()));
    }
    let nibble = |b: u8| -> Result<u8, String> {
        match DECODE[usize::from(b)] {
            0xFF => Err(format!("bad hex digit {:?}", char::from(b))),
            value => Ok(value),
        }
    };
    let mut out = Vec::with_capacity(token.len() / 2);
    for pair in token.as_bytes().chunks_exact(2) {
        out.push(nibble(pair[0])? << 4 | nibble(pair[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_byte_value() {
        let all: Vec<u8> = (0..=255).collect();
        let encoded = hex_encode(&all);
        assert_eq!(encoded.len(), 512);
        assert!(encoded.bytes().all(|b| b.is_ascii_hexdigit()));
        assert!(!encoded.bytes().any(|b| b.is_ascii_uppercase()));
        assert_eq!(hex_decode(&encoded).unwrap(), all);
    }

    #[test]
    fn empty_payload_uses_the_dash_sentinel() {
        assert_eq!(hex_encode(&[]), "-");
        assert_eq!(hex_decode("-").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn uppercase_is_accepted_on_decode() {
        assert_eq!(hex_decode("AbFf").unwrap(), vec![0xAB, 0xFF]);
    }

    #[test]
    fn corrupt_tokens_report_without_panicking() {
        assert_eq!(
            hex_decode("abc").unwrap_err(),
            "odd-length hex payload (3 bytes)"
        );
        assert_eq!(hex_decode("zz").unwrap_err(), "bad hex digit 'z'");
        // A multi-byte UTF-8 token must not panic byte-offset slicing.
        assert!(hex_decode("é!").is_err());
    }

    #[test]
    fn matches_the_reference_nibble_walk() {
        let payload: Vec<u8> = (0u32..4096)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        let mut reference = String::new();
        for b in &payload {
            reference.push(char::from_digit(u32::from(b >> 4), 16).unwrap());
            reference.push(char::from_digit(u32::from(b & 0xF), 16).unwrap());
        }
        assert_eq!(hex_encode(&payload), reference);
    }
}
