//! Common error types shared by the simulated kernel and monitor.

use crate::Errno;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result alias for kernel-level operations.
pub type KernelResult<T> = Result<T, KernelError>;

/// Errors produced by the simulated kernel substrate.
///
/// Syscall-level failures that a real kernel would report to user space are
/// represented by [`KernelError::Errno`]; the remaining variants represent
/// conditions that indicate misuse of the simulation itself (for example,
/// referring to a process that was never registered).
///
/// # Example
///
/// ```
/// use nvariant_types::{Errno, KernelError};
///
/// let err = KernelError::Errno(Errno::Eacces);
/// assert!(err.to_string().contains("EACCES"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum KernelError {
    /// A POSIX-style failure that is reported to the calling program.
    Errno(Errno),
    /// A path string contained invalid bytes (e.g. interior NUL).
    InvalidPath(String),
    /// The referenced process does not exist in the kernel's tables.
    NoSuchProcess(u32),
    /// The simulation was asked to do something its configuration forbids.
    Unsupported(String),
}

impl KernelError {
    /// Returns the errno to report to user space for this error.
    ///
    /// Simulation-misuse errors map to `EINVAL` so that a buggy harness still
    /// produces a well-formed syscall return value rather than a panic.
    #[must_use]
    pub fn errno(&self) -> Errno {
        match self {
            KernelError::Errno(e) => *e,
            KernelError::InvalidPath(_) => Errno::Einval,
            KernelError::NoSuchProcess(_) => Errno::Einval,
            KernelError::Unsupported(_) => Errno::Enosys,
        }
    }
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Errno(e) => write!(f, "syscall failed: {e}"),
            KernelError::InvalidPath(p) => write!(f, "invalid path: {p:?}"),
            KernelError::NoSuchProcess(pid) => write!(f, "no such process: pid {pid}"),
            KernelError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<Errno> for KernelError {
    fn from(e: Errno) -> Self {
        KernelError::Errno(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_mapping() {
        assert_eq!(KernelError::Errno(Errno::Eacces).errno(), Errno::Eacces);
        assert_eq!(
            KernelError::InvalidPath("a\0b".into()).errno(),
            Errno::Einval
        );
        assert_eq!(KernelError::NoSuchProcess(7).errno(), Errno::Einval);
        assert_eq!(
            KernelError::Unsupported("threads".into()).errno(),
            Errno::Enosys
        );
    }

    #[test]
    fn display_is_informative() {
        let text = KernelError::NoSuchProcess(42).to_string();
        assert!(text.contains("42"));
        let text = KernelError::from(Errno::Eperm).to_string();
        assert!(text.contains("EPERM"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<KernelError>();
    }
}
