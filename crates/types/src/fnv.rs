//! FNV-1a 64: tiny, dependency-free, and stable across platforms and
//! processes.
//!
//! Every cross-process identity in the workspace — the campaign plan hash,
//! the artifact store's content fingerprints and checksums, and the model
//! checker's canonical state digests — uses this one construction, because
//! such keys must survive process and machine boundaries (unlike `std`'s
//! `DefaultHasher`, whose output is explicitly allowed to vary between
//! releases).

/// The FNV-1a 64-bit offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01B3;

/// Hashes `bytes` with FNV-1a 64 in one call.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hasher = Fnv1a::new();
    hasher.write(bytes);
    hasher.finish()
}

/// A streaming FNV-1a 64 hasher, for digests assembled from many small
/// fields (kernel and process state digests) without building an
/// intermediate buffer.
///
/// Multi-byte integers are folded in little-endian order; the caller is
/// responsible for domain separation (writing distinguishing tags between
/// variable-length fields) where ambiguity is possible.
#[derive(Clone, Debug)]
pub struct Fnv1a {
    hash: u64,
}

impl Fnv1a {
    /// Starts a fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv1a { hash: OFFSET_BASIS }
    }

    /// Folds a byte slice into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.hash ^= u64::from(byte);
            self.hash = self.hash.wrapping_mul(PRIME);
        }
    }

    /// Folds a single byte into the digest.
    pub fn write_u8(&mut self, value: u8) {
        self.write(&[value]);
    }

    /// Folds a `u32` into the digest (little-endian).
    pub fn write_u32(&mut self, value: u32) {
        self.write(&value.to_le_bytes());
    }

    /// Folds a `u64` into the digest (little-endian).
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Folds a `usize` into the digest (as a `u64`, so the digest is
    /// identical across pointer widths).
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Folds a string's bytes into the digest, preceded by its length so
    /// adjacent strings cannot alias (`"ab" + "c"` vs `"a" + "bc"`).
    pub fn write_str(&mut self, value: &str) {
        self.write_usize(value.len());
        self.write(value.as_bytes());
    }

    /// The current digest value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Reference vectors from the FNV specification.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut hasher = Fnv1a::new();
        hasher.write(b"foo");
        hasher.write(b"bar");
        assert_eq!(hasher.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn integer_writes_are_little_endian() {
        let mut split = Fnv1a::new();
        split.write_u32(0x0403_0201);
        let mut raw = Fnv1a::new();
        raw.write(&[1, 2, 3, 4]);
        assert_eq!(split.finish(), raw.finish());

        let mut wide = Fnv1a::new();
        wide.write_u64(0x0807_0605_0403_0201);
        let mut raw = Fnv1a::new();
        raw.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(wide.finish(), raw.finish());
    }

    #[test]
    fn length_prefixed_strings_do_not_alias() {
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
