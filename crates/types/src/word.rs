//! Machine words as stored in variant process memory and registers.

use crate::{Uid, VirtAddr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 32-bit machine word.
///
/// The simulated machine is untyped at runtime, exactly like the hardware the
/// paper targets: UIDs, addresses, counts, and characters are all just words
/// once the program is compiled. Type information (and therefore the UID data
/// variation) exists only at the source level. `Word` provides explicit
/// conversions to and from the typed views so that the *kernel* side of the
/// system can recover meaning at the target-interpreter boundary.
///
/// # Example
///
/// ```
/// use nvariant_types::{Uid, VirtAddr, Word};
///
/// let w = Word::from_i32(-1);
/// assert_eq!(w.as_u32(), u32::MAX);
///
/// let uid_word = Word::from_uid(Uid::new(48));
/// assert_eq!(uid_word.as_uid(), Uid::new(48));
///
/// let addr_word = Word::from_addr(VirtAddr::new(0x8000_0000));
/// assert!(addr_word.as_addr().high_bit_set());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Word(u32);

impl Word {
    /// The zero word.
    pub const ZERO: Word = Word(0);
    /// The all-ones word (`-1` as a signed value).
    pub const MINUS_ONE: Word = Word(u32::MAX);

    /// Creates a word from an unsigned 32-bit value.
    #[must_use]
    pub const fn from_u32(raw: u32) -> Self {
        Word(raw)
    }

    /// Creates a word from a signed 32-bit value (two's complement).
    #[must_use]
    pub const fn from_i32(raw: i32) -> Self {
        Word(raw as u32)
    }

    /// Creates a word holding a boolean (`1` for true, `0` for false).
    #[must_use]
    pub const fn from_bool(value: bool) -> Self {
        Word(value as u32)
    }

    /// Creates a word from a UID's raw value.
    #[must_use]
    pub const fn from_uid(uid: Uid) -> Self {
        Word(uid.as_u32())
    }

    /// Creates a word from a virtual address.
    #[must_use]
    pub const fn from_addr(addr: VirtAddr) -> Self {
        Word(addr.as_u32())
    }

    /// Returns the unsigned value.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns the signed (two's complement) value.
    #[must_use]
    pub const fn as_i32(self) -> i32 {
        self.0 as i32
    }

    /// Interprets the word as a boolean: any non-zero value is true.
    #[must_use]
    pub const fn as_bool(self) -> bool {
        self.0 != 0
    }

    /// Interprets the word as a UID.
    #[must_use]
    pub const fn as_uid(self) -> Uid {
        Uid::new(self.0)
    }

    /// Interprets the word as a virtual address.
    #[must_use]
    pub const fn as_addr(self) -> VirtAddr {
        VirtAddr::new(self.0)
    }

    /// Returns the little-endian byte representation used in process memory.
    #[must_use]
    pub const fn to_le_bytes(self) -> [u8; 4] {
        self.0.to_le_bytes()
    }

    /// Reconstructs a word from its little-endian byte representation.
    #[must_use]
    pub const fn from_le_bytes(bytes: [u8; 4]) -> Self {
        Word(u32::from_le_bytes(bytes))
    }

    /// XORs the word with a mask, the primitive used by data reexpression.
    #[must_use]
    pub const fn xor(self, mask: u32) -> Self {
        Word(self.0 ^ mask)
    }

    /// Wrapping addition, matching machine semantics.
    #[must_use]
    pub const fn wrapping_add(self, rhs: Word) -> Self {
        Word(self.0.wrapping_add(rhs.0))
    }

    /// Wrapping subtraction, matching machine semantics.
    #[must_use]
    pub const fn wrapping_sub(self, rhs: Word) -> Self {
        Word(self.0.wrapping_sub(rhs.0))
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Word({:#x})", self.0)
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_i32())
    }
}

impl fmt::LowerHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl From<u32> for Word {
    fn from(raw: u32) -> Self {
        Word(raw)
    }
}

impl From<i32> for Word {
    fn from(raw: i32) -> Self {
        Word::from_i32(raw)
    }
}

impl From<Word> for u32 {
    fn from(word: Word) -> Self {
        word.0
    }
}

impl From<Uid> for Word {
    fn from(uid: Uid) -> Self {
        Word::from_uid(uid)
    }
}

impl From<VirtAddr> for Word {
    fn from(addr: VirtAddr) -> Self {
        Word::from_addr(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_unsigned_views_agree() {
        assert_eq!(Word::from_i32(-1).as_u32(), u32::MAX);
        assert_eq!(Word::from_u32(u32::MAX).as_i32(), -1);
        assert_eq!(Word::from_i32(42).as_i32(), 42);
    }

    #[test]
    fn typed_views() {
        assert_eq!(Word::from_uid(Uid::ROOT).as_uid(), Uid::ROOT);
        let a = VirtAddr::new(0x8000_1000);
        assert_eq!(Word::from_addr(a).as_addr(), a);
        assert!(Word::from_bool(true).as_bool());
        assert!(!Word::ZERO.as_bool());
    }

    #[test]
    fn little_endian_round_trip() {
        let w = Word::from_u32(0x1234_5678);
        assert_eq!(w.to_le_bytes(), [0x78, 0x56, 0x34, 0x12]);
        assert_eq!(Word::from_le_bytes(w.to_le_bytes()), w);
    }

    #[test]
    fn xor_is_involutive() {
        let w = Word::from_u32(48);
        assert_eq!(w.xor(0x7FFF_FFFF).xor(0x7FFF_FFFF), w);
    }

    #[test]
    fn wrapping_arithmetic() {
        assert_eq!(
            Word::from_u32(u32::MAX).wrapping_add(Word::from_u32(1)),
            Word::ZERO
        );
        assert_eq!(Word::ZERO.wrapping_sub(Word::from_u32(1)), Word::MINUS_ONE);
    }

    #[test]
    fn formatting() {
        assert_eq!(format!("{}", Word::from_i32(-5)), "-5");
        assert_eq!(format!("{:x}", Word::from_u32(0xff)), "ff");
        assert_eq!(format!("{:b}", Word::from_u32(5)), "101");
    }
}
