//! POSIX-style error numbers returned by simulated system calls.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error numbers returned by the simulated kernel.
///
/// The numbering follows Linux conventions where a value exists there, so the
/// numbers that flow back into variant programs as negative syscall return
/// values look familiar (`-13` for `EACCES`, and so on).
///
/// # Example
///
/// ```
/// use nvariant_types::Errno;
///
/// assert_eq!(Errno::Eacces.as_i32(), 13);
/// assert_eq!(Errno::Eacces.as_syscall_ret(), -13);
/// assert_eq!(Errno::from_i32(2), Some(Errno::Enoent));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Errno {
    /// Operation not permitted.
    Eperm,
    /// No such file or directory.
    Enoent,
    /// I/O error.
    Eio,
    /// Bad file descriptor.
    Ebadf,
    /// Resource temporarily unavailable (also `EWOULDBLOCK`).
    Eagain,
    /// Permission denied.
    Eacces,
    /// Bad address (a pointer argument referenced unmapped memory).
    Efault,
    /// File exists.
    Eexist,
    /// Not a directory.
    Enotdir,
    /// Is a directory.
    Eisdir,
    /// Invalid argument.
    Einval,
    /// Too many open files.
    Emfile,
    /// Address already in use.
    Eaddrinuse,
    /// Not a socket.
    Enotsock,
    /// Connection reset by peer.
    Econnreset,
    /// Function not implemented.
    Enosys,
}

impl Errno {
    /// Returns the positive errno value, following Linux numbering.
    #[must_use]
    pub const fn as_i32(self) -> i32 {
        match self {
            Errno::Eperm => 1,
            Errno::Enoent => 2,
            Errno::Eio => 5,
            Errno::Ebadf => 9,
            Errno::Eagain => 11,
            Errno::Eacces => 13,
            Errno::Efault => 14,
            Errno::Eexist => 17,
            Errno::Enotdir => 20,
            Errno::Eisdir => 21,
            Errno::Einval => 22,
            Errno::Emfile => 24,
            Errno::Eaddrinuse => 98,
            Errno::Enotsock => 88,
            Errno::Econnreset => 104,
            Errno::Enosys => 38,
        }
    }

    /// Returns the value as it appears in a syscall return register: the
    /// negated errno.
    #[must_use]
    pub const fn as_syscall_ret(self) -> i32 {
        -self.as_i32()
    }

    /// Looks up an errno from its positive numeric value.
    #[must_use]
    pub fn from_i32(value: i32) -> Option<Self> {
        const ALL: &[Errno] = &[
            Errno::Eperm,
            Errno::Enoent,
            Errno::Eio,
            Errno::Ebadf,
            Errno::Eagain,
            Errno::Eacces,
            Errno::Efault,
            Errno::Eexist,
            Errno::Enotdir,
            Errno::Eisdir,
            Errno::Einval,
            Errno::Emfile,
            Errno::Eaddrinuse,
            Errno::Enotsock,
            Errno::Econnreset,
            Errno::Enosys,
        ];
        ALL.iter().copied().find(|e| e.as_i32() == value)
    }

    /// Returns the symbolic name, e.g. `"EACCES"`.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Errno::Eperm => "EPERM",
            Errno::Enoent => "ENOENT",
            Errno::Eio => "EIO",
            Errno::Ebadf => "EBADF",
            Errno::Eagain => "EAGAIN",
            Errno::Eacces => "EACCES",
            Errno::Efault => "EFAULT",
            Errno::Eexist => "EEXIST",
            Errno::Enotdir => "ENOTDIR",
            Errno::Eisdir => "EISDIR",
            Errno::Einval => "EINVAL",
            Errno::Emfile => "EMFILE",
            Errno::Eaddrinuse => "EADDRINUSE",
            Errno::Enotsock => "ENOTSOCK",
            Errno::Econnreset => "ECONNRESET",
            Errno::Enosys => "ENOSYS",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.as_i32())
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_numbering() {
        assert_eq!(Errno::Eperm.as_i32(), 1);
        assert_eq!(Errno::Enoent.as_i32(), 2);
        assert_eq!(Errno::Eacces.as_i32(), 13);
        assert_eq!(Errno::Efault.as_i32(), 14);
    }

    #[test]
    fn syscall_return_is_negative() {
        assert_eq!(Errno::Eacces.as_syscall_ret(), -13);
        assert!(Errno::Eperm.as_syscall_ret() < 0);
    }

    #[test]
    fn round_trip_from_i32() {
        for e in [
            Errno::Eperm,
            Errno::Enoent,
            Errno::Eio,
            Errno::Ebadf,
            Errno::Eagain,
            Errno::Eacces,
            Errno::Efault,
            Errno::Eexist,
            Errno::Enotdir,
            Errno::Eisdir,
            Errno::Einval,
            Errno::Emfile,
            Errno::Eaddrinuse,
            Errno::Enotsock,
            Errno::Econnreset,
            Errno::Enosys,
        ] {
            assert_eq!(Errno::from_i32(e.as_i32()), Some(e));
        }
        assert_eq!(Errno::from_i32(0), None);
        assert_eq!(Errno::from_i32(9999), None);
    }

    #[test]
    fn display_contains_name_and_number() {
        let text = format!("{}", Errno::Eacces);
        assert!(text.contains("EACCES"));
        assert!(text.contains("13"));
    }
}
