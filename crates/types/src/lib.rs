//! Core identifier, value and error types for the *Security through Redundant
//! Data Diversity* (DSN 2008) reproduction.
//!
//! Every other crate in the workspace builds on the newtypes defined here:
//! user and group identifiers ([`Uid`], [`Gid`]), virtual addresses
//! ([`VirtAddr`]), kernel object handles ([`Fd`], [`Pid`], [`VariantId`]),
//! machine words ([`Word`]) and error numbers ([`Errno`]).
//!
//! The types are deliberately small, `Copy`, and strongly distinguished from
//! one another (the newtype pattern) so that a UID can never be accidentally
//! confused with an address or a plain integer anywhere in the monitor,
//! kernel, or transformation pipeline — a property the paper's transformation
//! itself relies on ("the `uid_t` type is never used to hold non-UID values").
//!
//! # Example
//!
//! ```
//! use nvariant_types::{Uid, VirtAddr, Word};
//!
//! let root = Uid::ROOT;
//! assert!(root.is_root());
//!
//! let reexpressed = Uid::new(root.as_u32() ^ 0x7FFF_FFFF);
//! assert_ne!(root, reexpressed);
//!
//! let addr = VirtAddr::new(0x0000_2000);
//! assert!(!addr.high_bit_set());
//! assert!(addr.with_high_bit().high_bit_set());
//!
//! let w = Word::from_u32(42);
//! assert_eq!(w.as_i32(), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod errno;
mod error;
pub mod fnv;
pub mod hex;
mod ids;
mod uid;
mod word;

pub use addr::VirtAddr;
pub use errno::Errno;
pub use error::{KernelError, KernelResult};
pub use fnv::{fnv1a_64, Fnv1a};
pub use ids::{ConnId, Fd, Pid, Port, VariantId};
pub use uid::{Gid, Uid};
pub use word::Word;
