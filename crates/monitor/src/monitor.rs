//! The monitor proper: lockstep execution, equivalence checking, I/O-once
//! replication, and alarm generation.

use crate::alarm::{Alarm, DivergenceKind};
use crate::config::{DivergencePolicy, MonitorConfig};
use crate::fdtable::VirtualFdTable;
use crate::metrics::MonitorMetrics;
use nvariant_diversity::{Canonicalizer, DataClass, VariantSet};
use nvariant_simos::{OpenFlags, OsKernel, SyscallRequest, Sysno};
use nvariant_types::{Errno, Fd, Fnv1a, Gid, Pid, Port, Uid, VariantId, Word};
use nvariant_vm::{Fault, Process, TrapReason};
use serde::{Deserialize, Serialize};

/// The observable outcome of running an N-variant group to completion.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NVariantOutcome {
    /// The common exit status, if all variants exited normally and agreed.
    pub exit_status: Option<i32>,
    /// The first alarm raised, if the run was terminated by divergence.
    pub alarm: Option<Alarm>,
    /// Execution counters.
    pub metrics: MonitorMetrics,
}

impl NVariantOutcome {
    /// Returns `true` if the monitor detected an attack (raised an alarm).
    #[must_use]
    pub fn detected_attack(&self) -> bool {
        self.alarm.is_some()
    }

    /// Returns `true` if the group terminated normally with agreeing exits.
    #[must_use]
    pub fn exited_normally(&self) -> bool {
        self.exit_status.is_some() && self.alarm.is_none()
    }
}

#[derive(Clone)]
struct VariantRuntime {
    process: Process,
    canon: Canonicalizer,
}

/// One observed synchronization step that did *not* terminate the group
/// (see [`NVariantMonitor::step`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepObservation {
    /// The syscall processed at this synchronization point, if the step
    /// reached one (`None` when the step only raised a pre-syscall alarm
    /// under [`DivergencePolicy::ReportAndContinue`]).
    pub sysno: Option<Sysno>,
    /// Alarms raised during this step.
    pub alarms_raised: usize,
    /// Bytes of externally visible output (console or network) produced by
    /// this step.
    pub output_delta: u64,
    /// `true` if the canonicalized arguments disagreed across variants at
    /// this synchronization point — the monitor's divergence evidence,
    /// reported even when [`MonitorConfig::detection_checks`] is disabled
    /// (that is what lets a model checker observe what a weakened monitor
    /// silently ignores).
    pub divergent_args: bool,
}

/// Result of a single monitor step (see [`NVariantMonitor::step`]).
#[derive(Clone, Debug)]
pub enum StepEvent {
    /// The group advanced one synchronization point and keeps running.
    Progress(StepObservation),
    /// The group terminated (normal exit or alarm-induced kill).
    Done(NVariantOutcome),
}

/// The N-variant monitor: owns the kernel, the variant processes and the
/// synchronized descriptor table, and drives the group to completion.
///
/// The monitor is `Clone`: the model checker snapshots whole monitors to
/// branch over syscall interleavings and attacker moves.
#[derive(Clone)]
pub struct NVariantMonitor {
    kernel: OsKernel,
    group_pid: Pid,
    variants: Vec<VariantRuntime>,
    vfds: VirtualFdTable,
    config: MonitorConfig,
    metrics: MonitorMetrics,
    alarms: Vec<Alarm>,
    /// Syscall processed by the most recent synchronization point (reported
    /// through [`StepEvent::Progress`]).
    last_sysno: Option<Sysno>,
    /// Whether the most recent synchronization point saw canonically
    /// divergent arguments.
    last_divergent_args: bool,
}

impl NVariantMonitor {
    /// Creates a monitor for `processes` (one per variant specification).
    /// The variant group appears to the kernel as a single process whose
    /// initial credentials are `initial_uid`.
    ///
    /// # Panics
    ///
    /// Panics if no variants are supplied or if the number of processes does
    /// not match the number of specifications.
    #[must_use]
    #[allow(clippy::needless_pass_by_value)] // the monitor owns its specs for its lifetime
    pub fn new(
        mut kernel: OsKernel,
        processes: Vec<Process>,
        specs: VariantSet,
        initial_uid: Uid,
        config: MonitorConfig,
    ) -> Self {
        assert!(
            !processes.is_empty(),
            "an N-variant system needs at least one variant"
        );
        assert_eq!(
            processes.len(),
            specs.len(),
            "one variant specification per process is required"
        );
        let group_pid = kernel.spawn_process(initial_uid);
        let variants = processes
            .into_iter()
            .zip(specs.iter())
            .map(|(process, (_, spec))| VariantRuntime {
                process,
                canon: Canonicalizer::new(*spec),
            })
            .collect::<Vec<_>>();
        let count = variants.len();
        NVariantMonitor {
            kernel,
            group_pid,
            variants,
            vfds: VirtualFdTable::new(count),
            config,
            metrics: MonitorMetrics::new(count),
            alarms: Vec::new(),
            last_sysno: None,
            last_divergent_args: false,
        }
    }

    /// The kernel this group runs against (for inspecting files, network
    /// responses, credentials).
    #[must_use]
    pub fn kernel(&self) -> &OsKernel {
        &self.kernel
    }

    /// Mutable access to the kernel (used by workload drivers to stage
    /// client connections before or between runs).
    pub fn kernel_mut(&mut self) -> &mut OsKernel {
        &mut self.kernel
    }

    /// The kernel process identifier representing the variant group.
    #[must_use]
    pub fn group_pid(&self) -> Pid {
        self.group_pid
    }

    /// The execution counters collected so far.
    #[must_use]
    pub fn metrics(&self) -> &MonitorMetrics {
        &self.metrics
    }

    /// Every alarm raised so far (more than one only under
    /// [`DivergencePolicy::ReportAndContinue`]).
    #[must_use]
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Read access to one variant's process (used by tests and the attack
    /// harness to inspect or corrupt variant memory).
    #[must_use]
    pub fn variant_process(&self, variant: VariantId) -> &Process {
        &self.variants[variant.index()].process
    }

    /// Mutable access to one variant's process.
    pub fn variant_process_mut(&mut self, variant: VariantId) -> &mut Process {
        &mut self.variants[variant.index()].process
    }

    /// Number of variants in the group.
    #[must_use]
    pub fn variant_count(&self) -> usize {
        self.variants.len()
    }

    /// The syscall processed at the most recent synchronization point, if
    /// that point reached one (also carried by [`StepEvent::Progress`]; this
    /// accessor additionally covers steps that terminated the group).
    #[must_use]
    pub fn last_sysno(&self) -> Option<Sysno> {
        self.last_sysno
    }

    /// Runs the group until it exits or an alarm terminates it.
    pub fn run_to_completion(&mut self) -> NVariantOutcome {
        loop {
            if let Some(outcome) = self.step_group() {
                return outcome;
            }
        }
    }

    /// Advances the group by exactly one synchronization point, reporting
    /// what happened. This is the model checker's stepping primitive: it
    /// exposes which syscall was processed and whether alarms or external
    /// output occurred, without running to completion.
    pub fn step(&mut self) -> StepEvent {
        let alarms_before = self.alarms.len();
        let output_before = self.metrics.output_bytes;
        self.last_sysno = None;
        self.last_divergent_args = false;
        match self.step_group() {
            Some(outcome) => StepEvent::Done(outcome),
            None => StepEvent::Progress(StepObservation {
                sysno: self.last_sysno,
                alarms_raised: self.alarms.len() - alarms_before,
                output_delta: self.metrics.output_bytes - output_before,
                divergent_args: self.last_divergent_args,
            }),
        }
    }

    /// A canonical digest of the group's full semantic state: kernel (time,
    /// accounts, filesystem, network, processes), every variant's machine
    /// state, the virtual descriptor table and the alarm count. Monotone
    /// execution counters ([`MonitorMetrics`]) are deliberately excluded so
    /// the model checker's visited-state pruning identifies states that are
    /// behaviourally identical but were reached by different paths.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut digest = Fnv1a::new();
        self.kernel.digest_into(&mut digest);
        digest.write_u32(self.group_pid.as_u32());
        digest.write_usize(self.variants.len());
        for variant in &self.variants {
            variant.process.digest_into(&mut digest);
        }
        self.vfds.digest_into(&mut digest);
        digest.write_usize(self.alarms.len());
        digest.finish()
    }

    // ----- the synchronization loop -------------------------------------------

    /// Advances every variant to its next trap and processes the
    /// synchronization point. Returns the final outcome once the group
    /// terminates.
    fn step_group(&mut self) -> Option<NVariantOutcome> {
        if self.metrics.syscalls >= self.config.max_syscalls {
            let alarm = Alarm::new(
                DivergenceKind::VariantFault {
                    variant: VariantId::P0,
                    fault: Fault::StepLimitExceeded,
                },
                self.metrics.syscalls,
            );
            return Some(self.terminate_with_alarm(alarm));
        }

        let max_steps = self.config.max_steps_per_slice;
        let traps: Vec<TrapReason> = self
            .variants
            .iter_mut()
            .map(|v| v.process.run_until_trap(max_steps))
            .collect();
        self.metrics.total_instructions = self
            .variants
            .iter()
            .map(|v| v.process.instructions_executed())
            .sum();

        // A fault in any variant is a divergence (the healthy variants were
        // about to do something the faulted one could not).
        for (index, trap) in traps.iter().enumerate() {
            if let TrapReason::Faulted(fault) = trap {
                let alarm = Alarm::new(
                    DivergenceKind::VariantFault {
                        variant: VariantId::new(index),
                        fault: *fault,
                    },
                    self.metrics.syscalls,
                );
                return Some(self.terminate_with_alarm(alarm));
            }
        }

        // All exited: agree or alarm.
        if traps.iter().all(|t| matches!(t, TrapReason::Exited(_))) {
            let statuses: Vec<Option<i32>> = traps
                .iter()
                .map(|t| match t {
                    TrapReason::Exited(status) => Some(*status),
                    _ => None,
                })
                .collect();
            let first = statuses[0];
            if statuses.iter().all(|s| *s == first) {
                return Some(self.finish(first));
            }
            let alarm = Alarm::new(
                DivergenceKind::ExitMismatch { statuses },
                self.metrics.syscalls,
            );
            return Some(self.terminate_with_alarm(alarm));
        }

        // Mixed exits/syscalls or differing call numbers.
        let calls: Vec<Option<Sysno>> = traps
            .iter()
            .map(|t| match t {
                TrapReason::Syscall(req) => Some(req.sysno),
                _ => None,
            })
            .collect();
        let first_call = calls[0];
        if first_call.is_none() || calls.iter().any(|c| *c != first_call) {
            let alarm = Alarm::new(
                DivergenceKind::SyscallMismatch { calls },
                self.metrics.syscalls,
            );
            return Some(self.terminate_with_alarm(alarm));
        }

        let requests: Vec<SyscallRequest> = traps
            .into_iter()
            .map(|t| match t {
                TrapReason::Syscall(req) => req,
                _ => unreachable!("non-syscall traps handled above"),
            })
            .collect();
        self.handle_syscall(&requests)
    }

    fn finish(&mut self, exit_status: Option<i32>) -> NVariantOutcome {
        NVariantOutcome {
            exit_status,
            alarm: self.alarms.first().cloned(),
            metrics: self.metrics,
        }
    }

    fn terminate_with_alarm(&mut self, alarm: Alarm) -> NVariantOutcome {
        self.metrics.alarms += 1;
        self.alarms.push(alarm.clone());
        NVariantOutcome {
            exit_status: None,
            alarm: Some(alarm),
            metrics: self.metrics,
        }
    }

    /// Records an alarm; returns `Some(outcome)` if the policy says to stop.
    fn raise(&mut self, alarm: Alarm) -> Option<NVariantOutcome> {
        match self.config.policy {
            DivergencePolicy::KillAndReport => Some(self.terminate_with_alarm(alarm)),
            DivergencePolicy::ReportAndContinue => {
                self.metrics.alarms += 1;
                self.alarms.push(alarm);
                None
            }
        }
    }

    // ----- syscall handling -------------------------------------------------------

    /// The data class of argument `index` of `sysno`, which selects the
    /// inverse reexpression the monitor applies before comparing.
    fn arg_class(sysno: Sysno, index: usize) -> DataClass {
        if sysno.uid_arg_positions().contains(&index) {
            DataClass::Uid
        } else if sysno.pointer_arg_positions().contains(&index) {
            DataClass::Address
        } else {
            DataClass::Opaque
        }
    }

    fn handle_syscall(&mut self, requests: &[SyscallRequest]) -> Option<NVariantOutcome> {
        let sysno = requests[0].sysno;
        self.last_sysno = Some(sysno);
        self.metrics.syscalls += 1;
        if sysno.is_detection_call() {
            self.metrics.detection_calls += 1;
        }

        // Canonicalize and compare every argument position.
        let arg_count = requests.iter().map(|r| r.args.len()).max().unwrap_or(0);
        let mut canonical_args: Vec<Vec<Word>> = Vec::with_capacity(self.variants.len());
        for (variant, request) in self.variants.iter().zip(requests) {
            let canon: Vec<Word> = (0..arg_count)
                .map(|i| {
                    variant
                        .canon
                        .canonical(request.arg(i), Self::arg_class(sysno, i))
                })
                .collect();
            canonical_args.push(canon);
        }
        for index in 0..arg_count {
            self.metrics.equivalence_checks += 1;
            let first = canonical_args[0][index];
            if canonical_args.iter().any(|args| args[index] != first) {
                self.last_divergent_args = true;
                let values = canonical_args.iter().map(|args| args[index]).collect();
                let kind = if sysno.is_detection_call() {
                    DivergenceKind::DetectionCheckFailed {
                        sysno,
                        canonical_values: values,
                    }
                } else {
                    DivergenceKind::ArgumentMismatch {
                        sysno,
                        arg_index: index,
                        canonical_values: values,
                    }
                };
                // With detection checks disabled (a deliberately weakened
                // monitor, used to demonstrate counterexamples) the mismatch
                // is observed but never alarmed.
                if self.config.detection_checks {
                    let alarm = Alarm::new(kind, self.metrics.syscalls);
                    if let Some(outcome) = self.raise(alarm) {
                        return Some(outcome);
                    }
                }
            }
        }

        // Execute the (single) kernel effect and compute per-variant returns.
        match self.execute(sysno, requests, &canonical_args) {
            ExecuteResult::Deliver(returns) => {
                for (variant, ret) in self.variants.iter_mut().zip(returns) {
                    variant.process.complete_syscall(ret);
                }
                None
            }
            ExecuteResult::Exited(status) => {
                let _ = self.kernel.exit(self.group_pid, status);
                for variant in &mut self.variants {
                    variant.process.set_exited(status);
                }
                Some(self.finish(Some(status)))
            }
            ExecuteResult::Abort(alarm) => self.raise(alarm).or_else(|| {
                // Under ReportAndContinue an output mismatch still needs a
                // return value; deliver the length the first variant asked
                // for so execution can proceed.
                let fallback = requests[0].arg(2);
                for variant in &mut self.variants {
                    variant.process.complete_syscall(fallback);
                }
                None
            }),
        }
    }

    fn execute(
        &mut self,
        sysno: Sysno,
        requests: &[SyscallRequest],
        canonical_args: &[Vec<Word>],
    ) -> ExecuteResult {
        let canon0 = &canonical_args[0];
        let n = self.variants.len();
        let errno_word = |e: Errno| Word::from_i32(e.as_syscall_ret());
        let all = |w: Word| vec![w; n];

        match sysno {
            Sysno::Exit => {
                ExecuteResult::Exited(canon0.first().copied().unwrap_or(Word::ZERO).as_i32())
            }

            // Identity queries: perform once, re-express per variant.
            Sysno::GetUid | Sysno::GetEuid | Sysno::GetGid => {
                let canonical = match sysno {
                    Sysno::GetUid => self.kernel.getuid(self.group_pid).map(Word::from_uid),
                    Sysno::GetEuid => self.kernel.geteuid(self.group_pid).map(Word::from_uid),
                    _ => self
                        .kernel
                        .getgid(self.group_pid)
                        .map(|g| Word::from_u32(g.as_u32())),
                };
                match canonical {
                    Ok(word) => ExecuteResult::Deliver(
                        self.variants
                            .iter()
                            .map(|v| v.canon.reexpress_uid(word))
                            .collect(),
                    ),
                    Err(e) => ExecuteResult::Deliver(all(errno_word(e))),
                }
            }

            // Credential changes: canonical value applied once.
            Sysno::SetUid | Sysno::SetEuid | Sysno::SetGid => {
                let value = canon0[0];
                let result = match sysno {
                    Sysno::SetUid => self.kernel.setuid(self.group_pid, value.as_uid()),
                    Sysno::SetEuid => self.kernel.seteuid(self.group_pid, value.as_uid()),
                    _ => self.kernel.setgid(self.group_pid, Gid::new(value.as_u32())),
                };
                ExecuteResult::Deliver(all(match result {
                    Ok(()) => Word::ZERO,
                    Err(e) => errno_word(e),
                }))
            }
            Sysno::SetReUid => {
                let decode = |w: Word| {
                    if w.as_i32() == -1 {
                        None
                    } else {
                        Some(w.as_uid())
                    }
                };
                let result =
                    self.kernel
                        .setreuid(self.group_pid, decode(canon0[0]), decode(canon0[1]));
                ExecuteResult::Deliver(all(match result {
                    Ok(()) => Word::ZERO,
                    Err(e) => errno_word(e),
                }))
            }

            // Detection calls: already checked; answer locally.
            Sysno::UidValue => ExecuteResult::Deliver(requests.iter().map(|r| r.arg(0)).collect()),
            Sysno::CondChk => ExecuteResult::Deliver(requests.iter().map(|r| r.arg(0)).collect()),
            Sysno::CcEq
            | Sysno::CcNeq
            | Sysno::CcLt
            | Sysno::CcLeq
            | Sysno::CcGt
            | Sysno::CcGeq => {
                let a = canon0[0].as_u32();
                let b = canon0[1].as_u32();
                let result = match sysno {
                    Sysno::CcEq => a == b,
                    Sysno::CcNeq => a != b,
                    Sysno::CcLt => a < b,
                    Sysno::CcLeq => a <= b,
                    Sysno::CcGt => a > b,
                    _ => a >= b,
                };
                ExecuteResult::Deliver(all(Word::from_bool(result)))
            }

            Sysno::Open => self.execute_open(requests),
            Sysno::Read | Sysno::Recv => self.execute_read(sysno, requests),
            Sysno::Write | Sysno::Send => self.execute_write(sysno, requests),
            Sysno::Close => {
                let vfd = canon0[0].as_u32();
                match self.vfds.close(vfd) {
                    Ok(fds) => {
                        for fd in fds {
                            let _ = self.kernel.close(self.group_pid, fd);
                        }
                        ExecuteResult::Deliver(all(Word::ZERO))
                    }
                    Err(e) => ExecuteResult::Deliver(all(errno_word(e))),
                }
            }

            Sysno::Socket => match self.kernel.socket(self.group_pid) {
                Ok(fd) => {
                    let vfd = self.vfds.insert_shared(fd);
                    ExecuteResult::Deliver(all(Word::from_u32(vfd)))
                }
                Err(e) => ExecuteResult::Deliver(all(errno_word(e))),
            },
            Sysno::Bind => {
                let result = self.vfds.shared_fd(canon0[0].as_u32()).and_then(|fd| {
                    self.kernel
                        .bind(self.group_pid, fd, Port::new(canon0[1].as_u32() as u16))
                });
                ExecuteResult::Deliver(all(match result {
                    Ok(()) => Word::ZERO,
                    Err(e) => errno_word(e),
                }))
            }
            Sysno::Listen => {
                let result = self
                    .vfds
                    .shared_fd(canon0[0].as_u32())
                    .and_then(|fd| self.kernel.listen(self.group_pid, fd));
                ExecuteResult::Deliver(all(match result {
                    Ok(()) => Word::ZERO,
                    Err(e) => errno_word(e),
                }))
            }
            Sysno::Accept => {
                let result = self
                    .vfds
                    .shared_fd(canon0[0].as_u32())
                    .and_then(|fd| self.kernel.accept(self.group_pid, fd));
                match result {
                    Ok(fd) => {
                        let vfd = self.vfds.insert_shared(fd);
                        ExecuteResult::Deliver(all(Word::from_u32(vfd)))
                    }
                    Err(e) => ExecuteResult::Deliver(all(errno_word(e))),
                }
            }
            Sysno::Time => ExecuteResult::Deliver(all(Word::from_u32(self.kernel.time() as u32))),
            // `Sysno` is non-exhaustive: unknown calls behave like an
            // unimplemented syscall.
            _ => ExecuteResult::Deliver(all(errno_word(Errno::Enosys))),
        }
    }

    fn execute_open(&mut self, requests: &[SyscallRequest]) -> ExecuteResult {
        let n = self.variants.len();
        let errno_word = |e: Errno| Word::from_i32(e.as_syscall_ret());

        // Read the path from each variant's own memory and require equality.
        let mut paths = Vec::with_capacity(n);
        for (variant, request) in self.variants.iter().zip(requests) {
            match variant.process.read_cstring(request.arg(0).as_addr(), 4096) {
                Ok(bytes) => paths.push(String::from_utf8_lossy(&bytes).to_string()),
                Err(_) => return ExecuteResult::Deliver(vec![errno_word(Errno::Efault); n]),
            }
        }
        self.metrics.equivalence_checks += 1;
        if paths.iter().any(|p| p != &paths[0]) {
            return ExecuteResult::Abort(Alarm::new(
                DivergenceKind::ArgumentMismatch {
                    sysno: Sysno::Open,
                    arg_index: 0,
                    canonical_values: requests.iter().map(|r| r.arg(0)).collect(),
                },
                self.metrics.syscalls,
            ));
        }
        let path = nvariant_simos::FileSystem::normalize(&paths[0]);
        let flags = OpenFlags::from_bits(requests[0].arg(1).as_u32());

        if self.config.is_unshared(&path) && n > 1 {
            let mut fds: Vec<Fd> = Vec::with_capacity(n);
            for variant in 0..n {
                match self
                    .kernel
                    .open(self.group_pid, &format!("{path}-{variant}"), flags)
                {
                    Ok(fd) => fds.push(fd),
                    Err(e) => {
                        for fd in fds {
                            let _ = self.kernel.close(self.group_pid, fd);
                        }
                        return ExecuteResult::Deliver(vec![errno_word(e); n]);
                    }
                }
            }
            let vfd = self.vfds.insert_unshared(fds);
            ExecuteResult::Deliver(vec![Word::from_u32(vfd); n])
        } else {
            match self.kernel.open(self.group_pid, &path, flags) {
                Ok(fd) => {
                    let vfd = self.vfds.insert_shared(fd);
                    ExecuteResult::Deliver(vec![Word::from_u32(vfd); n])
                }
                Err(e) => ExecuteResult::Deliver(vec![errno_word(e); n]),
            }
        }
    }

    fn execute_read(&mut self, sysno: Sysno, requests: &[SyscallRequest]) -> ExecuteResult {
        let n = self.variants.len();
        let errno_word = |e: Errno| Word::from_i32(e.as_syscall_ret());
        let vfd = requests[0].arg(0).as_u32();
        let count = requests[0].arg(2).as_u32() as usize;

        if self.vfds.is_unshared(vfd) {
            // Each variant reads from its own backing file.
            let mut returns = Vec::with_capacity(n);
            for (index, request) in requests.iter().enumerate() {
                let fd = match self.vfds.fd_for_variant(vfd, index) {
                    Ok(fd) => fd,
                    Err(e) => {
                        returns.push(errno_word(e));
                        continue;
                    }
                };
                match self.kernel.read(self.group_pid, fd, count) {
                    Ok(data) => {
                        self.metrics.unshared_bytes += data.len() as u64;
                        let addr = request.arg(1).as_addr();
                        match self.variants[index].process.write_bytes(addr, &data) {
                            Ok(()) => returns.push(Word::from_u32(data.len() as u32)),
                            Err(_) => returns.push(errno_word(Errno::Efault)),
                        }
                    }
                    Err(e) => returns.push(errno_word(e)),
                }
            }
            return ExecuteResult::Deliver(returns);
        }

        // Shared: perform the input once and replicate it to every variant.
        let result = match self.vfds.shared_fd(vfd) {
            Ok(fd) => {
                if sysno == Sysno::Recv {
                    self.kernel.recv(self.group_pid, fd, count)
                } else {
                    self.kernel.read(self.group_pid, fd, count)
                }
            }
            Err(e) => Err(e),
        };
        match result {
            Ok(data) => {
                self.metrics.input_bytes += data.len() as u64;
                let mut returns = Vec::with_capacity(n);
                for (variant, request) in self.variants.iter_mut().zip(requests) {
                    let addr = request.arg(1).as_addr();
                    match variant.process.write_bytes(addr, &data) {
                        Ok(()) => returns.push(Word::from_u32(data.len() as u32)),
                        Err(_) => returns.push(errno_word(Errno::Efault)),
                    }
                }
                ExecuteResult::Deliver(returns)
            }
            Err(e) => ExecuteResult::Deliver(vec![errno_word(e); n]),
        }
    }

    fn execute_write(&mut self, sysno: Sysno, requests: &[SyscallRequest]) -> ExecuteResult {
        let n = self.variants.len();
        let errno_word = |e: Errno| Word::from_i32(e.as_syscall_ret());
        let vfd = requests[0].arg(0).as_u32();
        let count = requests[0].arg(2).as_u32() as usize;

        // Gather the bytes each variant wants to emit.
        let mut payloads = Vec::with_capacity(n);
        for (variant, request) in self.variants.iter().zip(requests) {
            match variant.process.read_bytes(request.arg(1).as_addr(), count) {
                Ok(bytes) => payloads.push(bytes),
                Err(_) => return ExecuteResult::Deliver(vec![errno_word(Errno::Efault); n]),
            }
        }

        if self.vfds.is_unshared(vfd) {
            // Per-variant output to per-variant files: no cross-check needed.
            let mut returns = Vec::with_capacity(n);
            for (index, payload) in payloads.iter().enumerate() {
                let result = self
                    .vfds
                    .fd_for_variant(vfd, index)
                    .and_then(|fd| self.kernel.write(self.group_pid, fd, payload));
                match result {
                    Ok(len) => {
                        self.metrics.unshared_bytes += len as u64;
                        returns.push(Word::from_u32(len as u32));
                    }
                    Err(e) => returns.push(errno_word(e)),
                }
            }
            return ExecuteResult::Deliver(returns);
        }

        // Shared output must be byte-identical across variants.
        self.metrics.equivalence_checks += 1;
        if payloads.iter().any(|p| p != &payloads[0]) {
            return ExecuteResult::Abort(Alarm::new(
                DivergenceKind::OutputMismatch { sysno },
                self.metrics.syscalls,
            ));
        }

        // Standard descriptors (console) are not in the virtual table; treat
        // them as shared writes to the group process console.
        let result = if vfd < 3 {
            self.kernel
                .write(self.group_pid, Fd::new(vfd), &payloads[0])
        } else {
            match self.vfds.shared_fd(vfd) {
                Ok(fd) => {
                    if sysno == Sysno::Send {
                        self.kernel.send(self.group_pid, fd, &payloads[0])
                    } else {
                        self.kernel.write(self.group_pid, fd, &payloads[0])
                    }
                }
                Err(e) => Err(e),
            }
        };
        match result {
            Ok(len) => {
                self.metrics.output_bytes += len as u64;
                ExecuteResult::Deliver(vec![Word::from_u32(len as u32); n])
            }
            Err(e) => ExecuteResult::Deliver(vec![errno_word(e); n]),
        }
    }
}

enum ExecuteResult {
    /// Deliver one return value to each variant and keep running.
    Deliver(Vec<Word>),
    /// The group exited with the given status.
    Exited(i32),
    /// A divergence was detected while executing the call.
    Abort(Alarm),
}

// Reads on standard descriptors (console) are not routed through the virtual
// table either; they reach `execute_read` with vfd < 3 and fail the
// `shared_fd` lookup, returning EBADF like a real kernel would for a closed
// descriptor. The case-study programs never read from stdin, so this is the
// desired behaviour.

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_diversity::{UidTransform, VariantSet, VariantSpec, Variation};
    use nvariant_simos::WorldBuilder;
    use nvariant_types::VirtAddr;
    use nvariant_vm::{compile_program, parse_with_stdlib, MemoryLayout, Process};

    /// Builds a 2-variant monitor for `source` under `variation`, all
    /// variants sharing the same program text (no UID reexpression of
    /// constants — suitable for programs without UID constants).
    fn monitor_for(source: &str, variation: &Variation, uid: Uid) -> NVariantMonitor {
        let program = parse_with_stdlib(source).unwrap();
        let compiled = compile_program(&program).unwrap();
        let specs = VariantSet::from_variation(variation, 2);
        let processes: Vec<Process> = specs
            .iter()
            .map(|(_, spec)| {
                let mut layout = MemoryLayout::default();
                if !spec.addr.is_identity() {
                    layout = layout.with_partition_bit();
                }
                Process::with_tag(&compiled, layout, spec.tag)
            })
            .collect();
        let kernel = WorldBuilder::standard().build();
        NVariantMonitor::new(kernel, processes, specs, uid, MonitorConfig::default())
    }

    #[test]
    fn clean_program_exits_normally_under_every_variation() {
        let source = r"
            fn main() -> int {
                var total: int = 0;
                var i: int = 0;
                while (i < 100) { total = total + i; i = i + 1; }
                if (total == 4950) { return 0; }
                return 1;
            }
        ";
        for variation in [
            Variation::uid_diversity(),
            Variation::address_partitioning(),
            Variation::instruction_tagging(),
        ] {
            let mut monitor = monitor_for(source, &variation, Uid::ROOT);
            let outcome = monitor.run_to_completion();
            assert_eq!(outcome.exit_status, Some(0), "under {variation}");
            assert!(!outcome.detected_attack());
            assert!(outcome.metrics.total_instructions > 100);
        }
    }

    #[test]
    fn uid_returning_calls_are_reexpressed_per_variant() {
        // The program only passes the UID straight back to the kernel, so
        // each variant holds a different concrete value but the canonical
        // meanings agree.
        let source = r"
            fn main() -> int {
                var uid: uid_t;
                uid = getuid();
                return setuid(uid);
            }
        ";
        let mut monitor = monitor_for(source, &Variation::uid_diversity(), Uid::new(48));
        let outcome = monitor.run_to_completion();
        assert_eq!(outcome.exit_status, Some(0));
        assert!(!outcome.detected_attack());
        assert_eq!(
            monitor
                .kernel()
                .credentials(monitor.group_pid())
                .unwrap()
                .ruid(),
            Uid::new(48)
        );
    }

    #[test]
    fn file_and_network_io_is_performed_once() {
        let source = r#"
            fn main() -> int {
                var fd: int;
                var text: buf[128];
                fd = open("/etc/httpd.conf", 0);
                if (fd < 0) { return 1; }
                read(fd, &text, 100);
                close(fd);
                write(1, &text, 9);
                return 0;
            }
        "#;
        let mut monitor = monitor_for(source, &Variation::uid_diversity(), Uid::new(48));
        let outcome = monitor.run_to_completion();
        assert_eq!(outcome.exit_status, Some(0));
        // The config file was read once, not once per variant.
        let conf_len = monitor.kernel().fs().get("/etc/httpd.conf").unwrap().len() as u64;
        assert_eq!(outcome.metrics.input_bytes, conf_len);
        assert_eq!(outcome.metrics.output_bytes, 9);
        let console = monitor
            .kernel()
            .console_output(monitor.group_pid())
            .unwrap()
            .to_vec();
        assert_eq!(console, b"Listen 80");
    }

    #[test]
    fn detection_calls_pass_when_canonical_values_agree() {
        // Note: the program must not contain raw UID *constants* — those
        // only stay equivalent if each variant's text has been re-expressed
        // by the transformer (covered by the integration tests). Here the
        // detection calls compare two kernel-provided UIDs.
        let source = r"
            fn main() -> int {
                var uid: uid_t;
                var euid: uid_t;
                uid = uid_value(getuid());
                euid = geteuid();
                if (cc_neq(uid, euid)) { return 1; }
                if (cond_chk(cc_leq(uid, euid))) { return 2; }
                return 0;
            }
        ";
        // Running as uid 48: uid == euid, and cc_leq is true -> exit 2.
        let mut monitor = monitor_for(source, &Variation::uid_diversity(), Uid::new(48));
        let outcome = monitor.run_to_completion();
        assert_eq!(outcome.exit_status, Some(2));
        assert!(outcome.metrics.detection_calls >= 4);
        assert!(!outcome.detected_attack());
    }

    #[test]
    fn corrupting_one_variants_uid_is_detected_at_the_next_uid_use() {
        // Simulate the effect of a memory-corruption attack by overwriting
        // the UID variable in *both* variants with the same concrete value
        // (the attacker sends one payload to the replicated input, so both
        // variants receive identical bytes).
        let source = r"
            var server_uid: uid_t;
            fn main() -> int {
                server_uid = getuid();
                time();
                server_uid = uid_value(server_uid);
                return 0;
            }
        ";
        let program = parse_with_stdlib(source).unwrap();
        let compiled = compile_program(&program).unwrap();
        let specs = VariantSet::from_variation(&Variation::uid_diversity(), 2);
        let processes: Vec<Process> = (0..2)
            .map(|_| Process::new(&compiled, MemoryLayout::default()))
            .collect();
        let kernel = WorldBuilder::standard().build();
        let mut monitor = NVariantMonitor::new(
            kernel,
            processes,
            specs,
            Uid::new(48),
            MonitorConfig::default(),
        );

        // Let the group run its first two syscalls (getuid, then time) so
        // that by the second synchronization point each variant has stored
        // its own representation into `server_uid`; then corrupt the value
        // identically in both variants, as an attacker-controlled overflow
        // would.
        assert!(monitor.step_group().is_none()); // getuid handled
        assert!(monitor.step_group().is_none()); // time handled (store done)
        for index in 0..2 {
            let addr = monitor
                .variant_process(VariantId::new(index))
                .global_addr("server_uid")
                .unwrap();
            monitor
                .variant_process_mut(VariantId::new(index))
                .write_word(addr, Word::ZERO)
                .unwrap();
        }
        let outcome = monitor.run_to_completion();
        assert!(outcome.detected_attack());
        let alarm = outcome.alarm.unwrap();
        assert!(alarm.from_detection_call(), "alarm was {alarm}");
    }

    #[test]
    fn unshared_files_give_each_variant_its_own_reexpressed_view() {
        // /etc/passwd is unshared; variant 1's copy has its UID column
        // re-expressed. The program parses the httpd UID out of the file and
        // calls setuid on it: the concrete values differ per variant but the
        // canonical value is 48 in both, so no alarm is raised and the group
        // credentials end up at uid 48.
        let source = r#"
            fn read_passwd_uid(name: ptr) -> uid_t {
                var fd: int;
                var text: buf[512];
                var n: int;
                var pos: int;
                var field: int;
                var value: int;
                fd = open("/etc/passwd", 0);
                if (fd < 0) { return 0 - 1; }
                n = read(fd, &text, 500);
                close(fd);
                text[n] = 0;
                pos = 0;
                while (text[pos] != 0) {
                    if (starts_with(text + pos, name)) {
                        // skip name:passwd: to reach the uid column
                        field = 0;
                        while (field < 2) {
                            while (text[pos] != ':') { pos = pos + 1; }
                            pos = pos + 1;
                            field = field + 1;
                        }
                        value = 0;
                        while (text[pos] >= '0' && text[pos] <= '9') {
                            value = value * 10 + (text[pos] - '0');
                            pos = pos + 1;
                        }
                        return value;
                    }
                    while (text[pos] != 0 && text[pos] != '\n') { pos = pos + 1; }
                    if (text[pos] == '\n') { pos = pos + 1; }
                }
                return 0 - 1;
            }
            fn main() -> int {
                var uid: uid_t;
                uid = read_passwd_uid("httpd");
                return setuid(uid);
            }
        "#;
        let program = parse_with_stdlib(source).unwrap();
        let compiled = compile_program(&program).unwrap();
        let specs = VariantSet::from_variation(&Variation::uid_diversity(), 2);
        let processes: Vec<Process> = (0..2)
            .map(|_| Process::new(&compiled, MemoryLayout::default()))
            .collect();
        let mut kernel = WorldBuilder::standard().build();
        // Provision per-variant passwd copies with re-expressed UID columns.
        let db = kernel.passwd().clone();
        for (index, spec) in specs.iter() {
            let transform: UidTransform = spec.uid;
            kernel.fs_mut().create(
                &format!("/etc/passwd-{}", index.index()),
                db.render_passwd_with(|uid| transform.apply(uid))
                    .into_bytes(),
            );
        }
        let config = MonitorConfig::default().with_unshared_file("/etc/passwd");
        let mut monitor = NVariantMonitor::new(kernel, processes, specs, Uid::ROOT, config);
        let outcome = monitor.run_to_completion();
        assert_eq!(outcome.exit_status, Some(0), "alarm: {:?}", outcome.alarm);
        assert!(outcome.metrics.unshared_bytes > 0);
        assert_eq!(
            monitor
                .kernel()
                .credentials(monitor.group_pid())
                .unwrap()
                .euid(),
            Uid::new(48)
        );
    }

    #[test]
    fn address_partitioning_detects_absolute_address_injection() {
        // The Figure 1 attack: the program dereferences an absolute address
        // (as injected attack data would make it do); the partitioned
        // variant faults and the monitor raises an alarm.
        let source = r"
            var target: int = 5;
            fn main() -> int {
                var p: ptr;
                p = 0x00100000;
                *p = 7;
                return 0;
            }
        ";
        let mut monitor = monitor_for(source, &Variation::address_partitioning(), Uid::ROOT);
        let outcome = monitor.run_to_completion();
        assert!(outcome.detected_attack());
        match outcome.alarm.unwrap().kind {
            DivergenceKind::VariantFault { variant, fault } => {
                assert_eq!(variant, VariantId::P1);
                assert!(matches!(fault, Fault::Segfault { .. }));
            }
            other => panic!("expected a variant fault, got {other}"),
        }
        // The same program under UID diversity is NOT detected (both
        // variants perform the same in-range write): class-specificity.
        let mut monitor = monitor_for(source, &Variation::uid_diversity(), Uid::ROOT);
        let outcome = monitor.run_to_completion();
        assert!(!outcome.detected_attack());
    }

    #[test]
    fn output_divergence_is_detected() {
        // A program that writes a variant-dependent value (its own UID
        // representation) to a shared descriptor: the un-sanitized logging
        // pitfall of §4.
        let source = r"
            fn main() -> int {
                var uid: uid_t;
                var line: buf[16];
                uid = getuid();
                utoa(uid, &line);
                write(1, &line, 4);
                return 0;
            }
        ";
        let mut monitor = monitor_for(source, &Variation::uid_diversity(), Uid::new(48));
        let outcome = monitor.run_to_completion();
        assert!(outcome.detected_attack());
        assert!(matches!(
            outcome.alarm.unwrap().kind,
            DivergenceKind::OutputMismatch { .. }
        ));
    }

    #[test]
    fn exit_status_divergence_is_detected() {
        // A program whose exit status depends on the raw UID representation
        // (comparing against a constant that was *not* re-expressed, i.e. an
        // untransformed program run under the UID variation).
        let source = r"
            fn main() -> int {
                var uid: uid_t;
                uid = getuid();
                if (uid == 48) { return 0; }
                return 7;
            }
        ";
        let mut monitor = monitor_for(source, &Variation::uid_diversity(), Uid::new(48));
        let outcome = monitor.run_to_completion();
        assert!(outcome.detected_attack());
        // Exit is itself a synchronized system call, so the divergence shows
        // up as non-equivalent exit-status arguments (or, if the branches had
        // made different calls first, as a syscall mismatch).
        assert!(matches!(
            outcome.alarm.unwrap().kind,
            DivergenceKind::ArgumentMismatch {
                sysno: Sysno::Exit,
                ..
            } | DivergenceKind::SyscallMismatch { .. }
                | DivergenceKind::ExitMismatch { .. }
        ));
    }

    #[test]
    fn report_and_continue_policy_records_but_does_not_stop() {
        let source = r"
            fn main() -> int {
                var uid: uid_t;
                var line: buf[16];
                uid = getuid();
                utoa(uid, &line);
                write(1, &line, 4);
                return 0;
            }
        ";
        let program = parse_with_stdlib(source).unwrap();
        let compiled = compile_program(&program).unwrap();
        let specs = VariantSet::from_variation(&Variation::uid_diversity(), 2);
        let processes: Vec<Process> = (0..2)
            .map(|_| Process::new(&compiled, MemoryLayout::default()))
            .collect();
        let kernel = WorldBuilder::standard().build();
        let config = MonitorConfig {
            policy: DivergencePolicy::ReportAndContinue,
            ..MonitorConfig::default()
        };
        let mut monitor = NVariantMonitor::new(kernel, processes, specs, Uid::new(48), config);
        let outcome = monitor.run_to_completion();
        assert_eq!(outcome.exit_status, Some(0));
        assert!(outcome.metrics.alarms >= 1);
        assert_eq!(monitor.alarms().len(), outcome.metrics.alarms as usize);
    }

    #[test]
    fn instruction_tag_mismatch_is_detected_when_code_is_injected() {
        // Simulate a code-injection outcome: redirect variant execution to
        // bytes the attacker placed in data memory. Under instruction-set
        // tagging the injected bytes carry the wrong tag for at least one
        // variant, so the group alarms.
        let source = r"
            var scratch: buf[64];
            fn main() -> int {
                var i: int = 0;
                while (i < 10) { i = i + 1; }
                return 0;
            }
        ";
        let program = parse_with_stdlib(source).unwrap();
        let compiled = compile_program(&program).unwrap();
        let specs = VariantSet::from_variation(&Variation::instruction_tagging(), 2);
        let processes: Vec<Process> = specs
            .iter()
            .map(|(_, spec)| Process::with_tag(&compiled, MemoryLayout::default(), spec.tag))
            .collect();
        let kernel = WorldBuilder::standard().build();
        let mut monitor = NVariantMonitor::new(
            kernel,
            processes,
            specs,
            Uid::ROOT,
            MonitorConfig::default(),
        );
        // Place "injected code" (tag 0 instructions) into the scratch buffer
        // of both variants and redirect both program counters there, exactly
        // what a successful return-address smash would achieve.
        for index in 0..2 {
            let variant = VariantId::new(index);
            let addr = monitor
                .variant_process(variant)
                .global_addr("scratch")
                .unwrap();
            let injected = nvariant_vm::bytecode::encode_all(&[
                nvariant_vm::Instr::new(nvariant_vm::Op::Push, 0),
                nvariant_vm::Instr::new(nvariant_vm::Op::Syscall, Sysno::Exit.as_u32() << 8 | 1),
            ]);
            let process = monitor.variant_process_mut(variant);
            process.write_bytes(addr, &injected).unwrap();
        }
        // Redirect execution.
        for index in 0..2 {
            let variant = VariantId::new(index);
            let addr = monitor
                .variant_process(variant)
                .global_addr("scratch")
                .unwrap();
            let process = monitor.variant_process_mut(variant);
            redirect_pc(process, addr);
        }
        let outcome = monitor.run_to_completion();
        assert!(outcome.detected_attack());
        match outcome.alarm.unwrap().kind {
            DivergenceKind::VariantFault { fault, .. } => {
                assert!(matches!(fault, Fault::TagMismatch { .. }));
            }
            other => panic!("expected tag mismatch fault, got {other}"),
        }
    }

    /// Test helper: forces a process to continue execution at `target` by
    /// smashing the return address the start stub's `Call main` pushed —
    /// i.e. exactly what a successful stack smash achieves.
    fn redirect_pc(process: &mut Process, target: VirtAddr) {
        // Execute the start stub's `Call main` so the return-address slot
        // exists at the top of the stack.
        assert!(matches!(process.step(), nvariant_vm::StepResult::Continue));
        let stack_top = process.layout().stack_top;
        process
            .write_word(VirtAddr::new(stack_top - 8), Word::from_addr(target))
            .unwrap();
        // Run the process to its natural `Ret`, which now jumps to the
        // injected code. `main` makes no syscalls before returning, so this
        // stays inside this variant.
        loop {
            match process.step() {
                nvariant_vm::StepResult::Continue => {
                    if process.pc() == target {
                        break;
                    }
                }
                other => panic!("unexpected trap while redirecting: {other:?}"),
            }
        }
    }

    #[test]
    fn composed_variation_detects_both_attack_classes() {
        let composed = Variation::composed(vec![
            Variation::uid_diversity(),
            Variation::address_partitioning(),
        ]);
        // Absolute-address attack: detected via the address class.
        let source = r"
            var target: int = 5;
            fn main() -> int {
                var p: ptr;
                p = 0x00100000;
                *p = 7;
                return 0;
            }
        ";
        let mut monitor = monitor_for(source, &composed, Uid::ROOT);
        assert!(monitor.run_to_completion().detected_attack());
        // Clean program (no raw UID constants, UID used only via syscalls):
        // still exits normally.
        let clean = r"
            fn main() -> int {
                var u: uid_t;
                u = getuid();
                return setuid(u);
            }
        ";
        let mut monitor = monitor_for(clean, &composed, Uid::ROOT);
        let outcome = monitor.run_to_completion();
        assert_eq!(outcome.exit_status, Some(0), "alarm: {:?}", outcome.alarm);
    }

    #[test]
    #[should_panic(expected = "at least one variant")]
    fn empty_variant_set_is_rejected() {
        let kernel = WorldBuilder::standard().build();
        let _ = NVariantMonitor::new(
            kernel,
            Vec::new(),
            VariantSet::new(vec![]),
            Uid::ROOT,
            MonitorConfig::default(),
        );
    }

    #[test]
    fn single_variant_monitor_behaves_like_a_plain_runner() {
        let source = "fn main() -> int { return geteuid(); }";
        let program = parse_with_stdlib(source).unwrap();
        let compiled = compile_program(&program).unwrap();
        let kernel = WorldBuilder::standard().build();
        let mut monitor = NVariantMonitor::new(
            kernel,
            vec![Process::new(&compiled, MemoryLayout::default())],
            VariantSet::new(vec![VariantSpec::identity()]),
            Uid::new(1000),
            MonitorConfig::default(),
        );
        let outcome = monitor.run_to_completion();
        assert_eq!(outcome.exit_status, Some(1000));
        assert_eq!(outcome.metrics.variants, 1);
    }
}
