//! Monitor configuration.

use serde::{Deserialize, Serialize};

/// What the monitor does when it detects divergence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DivergencePolicy {
    /// Terminate every variant and report the alarm (the paper's behaviour:
    /// any divergence is treated as an attack).
    #[default]
    KillAndReport,
    /// Report the alarm but keep note of it and continue executing — useful
    /// only for debugging benign-divergence issues such as un-sanitized log
    /// output; never appropriate in production.
    ReportAndContinue,
}

/// Configuration of an N-variant monitor instance.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Absolute paths treated as *unshared files*: each variant opens its
    /// own copy (`<path>-<variant index>`), which must have been provisioned
    /// in the filesystem beforehand (see
    /// [`provision_unshared_copies`](crate::provision_unshared_copies)).
    pub unshared_files: Vec<String>,
    /// Maximum bytecode instructions one variant may execute between two
    /// synchronization points before it is considered runaway.
    pub max_steps_per_slice: u64,
    /// Maximum number of synchronization points before the run is aborted.
    pub max_syscalls: u64,
    /// Divergence policy.
    pub policy: DivergencePolicy,
    /// Whether the per-argument canonicalization equivalence checks raise
    /// alarms. Disabling this deliberately *weakens* the monitor — corrupted
    /// but structurally identical syscalls sail through — and exists so the
    /// model checker can demonstrate the detection gap as a counterexample.
    pub detection_checks: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            unshared_files: Vec::new(),
            max_steps_per_slice: 20_000_000,
            max_syscalls: 1_000_000,
            policy: DivergencePolicy::KillAndReport,
            detection_checks: true,
        }
    }
}

impl MonitorConfig {
    /// Adds an unshared file path.
    #[must_use]
    pub fn with_unshared_file(mut self, path: &str) -> Self {
        self.unshared_files.push(path.to_string());
        self
    }

    /// Sets the divergence policy.
    #[must_use]
    pub fn with_policy(mut self, policy: DivergencePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Disables the canonicalization equivalence checks (see
    /// [`MonitorConfig::detection_checks`]). Only useful for demonstrating
    /// what the monitor would miss without them.
    #[must_use]
    pub fn without_detection_checks(mut self) -> Self {
        self.detection_checks = false;
        self
    }

    /// Returns `true` if `path` is configured as unshared.
    #[must_use]
    pub fn is_unshared(&self, path: &str) -> bool {
        self.unshared_files.iter().any(|p| p == path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let config = MonitorConfig::default();
        assert!(config.unshared_files.is_empty());
        assert_eq!(config.policy, DivergencePolicy::KillAndReport);
        assert!(config.max_steps_per_slice > 1_000_000);
    }

    #[test]
    fn builder_and_lookup() {
        let config = MonitorConfig::default()
            .with_unshared_file("/etc/passwd")
            .with_unshared_file("/etc/group")
            .with_policy(DivergencePolicy::ReportAndContinue);
        assert!(config.is_unshared("/etc/passwd"));
        assert!(config.is_unshared("/etc/group"));
        assert!(!config.is_unshared("/etc/httpd.conf"));
        assert_eq!(config.policy, DivergencePolicy::ReportAndContinue);
    }
}
