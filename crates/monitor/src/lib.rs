//! The N-variant execution monitor: the "modified kernel" of the paper.
//!
//! The monitor owns N variant processes and the simulated kernel, and runs
//! the variants in lockstep at system-call granularity (§3.1):
//!
//! * each variant executes until it traps (system call, exit, or fault);
//! * system calls are **synchronization points**: nothing proceeds until all
//!   variants have made the *same* call with equivalent (canonicalized)
//!   arguments;
//! * **input** system calls are performed once against the kernel and their
//!   results replicated to every variant (UID-returning calls are
//!   re-expressed per variant on the way back);
//! * **output** system calls are checked for byte-identical content across
//!   variants and performed once;
//! * **unshared files** (§3.4) are opened per variant (`/etc/passwd-0`,
//!   `/etc/passwd-1`) through a slot-synchronized descriptor table;
//! * the Table 2 **detection calls** (`uid_value`, `cond_chk`, `cc_*`) are
//!   checked across variants and answered without touching kernel state;
//! * any divergence — different calls, non-equivalent arguments, a fault in
//!   one variant, differing exits — raises an [`Alarm`] and terminates the
//!   group.
//!
//! # Example
//!
//! ```
//! use nvariant_diversity::{VariantSet, Variation};
//! use nvariant_monitor::{MonitorConfig, NVariantMonitor};
//! use nvariant_simos::WorldBuilder;
//! use nvariant_types::Uid;
//! use nvariant_vm::{compile_program, parse_program, MemoryLayout, Process};
//!
//! // A two-variant system running a trivially UID-clean program: the UID is
//! // obtained from the kernel and passed straight back to it, so each
//! // variant holds a different concrete value with the same canonical
//! // meaning.
//! let program = parse_program(
//!     "fn main() -> int { var u: uid_t; u = getuid(); return setuid(u); }",
//! )?;
//! let compiled = compile_program(&program)?;
//! let specs = VariantSet::from_variation(&Variation::uid_diversity(), 2);
//! let processes = vec![
//!     Process::new(&compiled, MemoryLayout::default()),
//!     Process::new(&compiled, MemoryLayout::default()),
//! ];
//! let kernel = WorldBuilder::standard().build();
//! let mut monitor = NVariantMonitor::new(kernel, processes, specs, Uid::ROOT, MonitorConfig::default());
//! let outcome = monitor.run_to_completion();
//! assert_eq!(outcome.exit_status, Some(0));
//! assert!(outcome.alarm.is_none());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alarm;
pub mod config;
pub mod fdtable;
pub mod metrics;
pub mod monitor;
pub mod provision;

pub use alarm::{Alarm, DivergenceKind};
pub use config::{DivergencePolicy, MonitorConfig};
pub use fdtable::{VirtualFd, VirtualFdTable};
pub use metrics::MonitorMetrics;
pub use monitor::{NVariantMonitor, NVariantOutcome, StepEvent, StepObservation};
pub use provision::provision_unshared_copies;
