//! Provisioning of per-variant copies of unshared files.

use nvariant_simos::OsKernel;

/// Creates the per-variant backing files for one unshared path.
///
/// For each variant `i` in `0..variants`, the file `<path>-<i>` is created
/// with contents produced by `transform(i, original_contents)`, preserving
/// the original file's owner, group and mode. The original file is left in
/// place (an unprotected single-process configuration still reads it).
///
/// Returns the number of copies created, or 0 if the original file does not
/// exist.
///
/// # Example
///
/// ```
/// use nvariant_monitor::provision_unshared_copies;
/// use nvariant_simos::WorldBuilder;
///
/// let mut kernel = WorldBuilder::standard().build();
/// let created = provision_unshared_copies(&mut kernel, "/etc/passwd", 2, |variant, data| {
///     if variant == 0 {
///         data.to_vec()
///     } else {
///         // A real deployment transforms the UID columns; this example
///         // just tags the copy.
///         let mut copy = data.to_vec();
///         copy.extend_from_slice(b"# variant 1\n");
///         copy
///     }
/// });
/// assert_eq!(created, 2);
/// assert!(kernel.fs().exists("/etc/passwd-0"));
/// assert!(kernel.fs().exists("/etc/passwd-1"));
/// ```
pub fn provision_unshared_copies(
    kernel: &mut OsKernel,
    path: &str,
    variants: usize,
    transform: impl Fn(usize, &[u8]) -> Vec<u8>,
) -> usize {
    let Some(original) = kernel.fs().get(path).cloned() else {
        return 0;
    };
    for variant in 0..variants {
        let copy_path = format!("{path}-{variant}");
        let contents = transform(variant, &original.data);
        kernel.fs_mut().create_with(
            &copy_path,
            contents,
            original.owner,
            original.group,
            original.mode,
        );
    }
    variants
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_simos::WorldBuilder;
    use nvariant_types::Uid;

    #[test]
    fn copies_preserve_ownership_and_mode() {
        let mut kernel = WorldBuilder::standard().build();
        let created =
            provision_unshared_copies(&mut kernel, "/etc/shadow", 2, |_, data| data.to_vec());
        assert_eq!(created, 2);
        let original = kernel.fs().get("/etc/shadow").unwrap().clone();
        for variant in 0..2 {
            let copy = kernel.fs().get(&format!("/etc/shadow-{variant}")).unwrap();
            assert_eq!(copy.owner, original.owner);
            assert_eq!(copy.mode, original.mode);
            assert_eq!(copy.data, original.data);
        }
    }

    #[test]
    fn transform_receives_variant_index() {
        let mut kernel = WorldBuilder::standard().build();
        provision_unshared_copies(&mut kernel, "/etc/passwd", 3, |variant, data| {
            let mut copy = data.to_vec();
            copy.push(b'0' + variant as u8);
            copy
        });
        for variant in 0..3u8 {
            let copy = kernel.fs().get(&format!("/etc/passwd-{variant}")).unwrap();
            assert_eq!(*copy.data.last().unwrap(), b'0' + variant);
        }
    }

    #[test]
    fn missing_original_creates_nothing() {
        let mut kernel = OsKernel::new();
        let created =
            provision_unshared_copies(&mut kernel, "/etc/passwd", 2, |_, data| data.to_vec());
        assert_eq!(created, 0);
        assert!(!kernel.fs().exists("/etc/passwd-0"));
        // Unrelated state untouched.
        assert_eq!(kernel.fs().len(), 0);
        let _ = Uid::ROOT;
    }
}
