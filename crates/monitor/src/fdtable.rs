//! The slot-synchronized virtual descriptor table.
//!
//! The paper (§3.4) keeps one file table per variant with corresponding
//! slots: the n-th slot of P0's table refers to the same logical file as the
//! n-th slot of P1's. Shared files occupy one kernel descriptor; unshared
//! files occupy one kernel descriptor *per variant* (each backed by that
//! variant's copy of the file). Variants only ever see the virtual slot
//! number.

use nvariant_types::{Errno, Fd, Fnv1a};
use serde::{Deserialize, Serialize};

/// A virtual descriptor as seen by the variants.
pub type VirtualFd = u32;

/// What one virtual descriptor slot refers to.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum VfdEntry {
    /// A shared kernel object: one kernel descriptor, I/O performed once.
    Shared(Fd),
    /// An unshared file: one kernel descriptor per variant.
    Unshared(Vec<Fd>),
}

/// The monitor's virtual descriptor table.
///
/// # Example
///
/// ```
/// use nvariant_monitor::VirtualFdTable;
/// use nvariant_types::Fd;
///
/// let mut table = VirtualFdTable::new(2);
/// let shared = table.insert_shared(Fd::new(7));
/// let unshared = table.insert_unshared(vec![Fd::new(8), Fd::new(9)]);
/// assert_ne!(shared, unshared);
/// assert_eq!(table.shared_fd(shared), Ok(Fd::new(7)));
/// assert_eq!(table.fd_for_variant(unshared, 1), Ok(Fd::new(9)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualFdTable {
    variants: usize,
    slots: Vec<Option<VfdEntry>>,
}

/// The first virtual descriptor handed out (0–2 are reserved so they line up
/// with the conventional stdin/stdout/stderr numbers inside the variants).
const FIRST_VFD: usize = 3;

impl VirtualFdTable {
    /// Creates a table for `variants` variants.
    #[must_use]
    pub fn new(variants: usize) -> Self {
        VirtualFdTable {
            variants,
            slots: vec![None; FIRST_VFD],
        }
    }

    fn allocate(&mut self, entry: VfdEntry) -> VirtualFd {
        for (index, slot) in self.slots.iter_mut().enumerate().skip(FIRST_VFD) {
            if slot.is_none() {
                *slot = Some(entry);
                return index as VirtualFd;
            }
        }
        self.slots.push(Some(entry));
        (self.slots.len() - 1) as VirtualFd
    }

    /// Inserts a shared kernel descriptor, returning its virtual number.
    pub fn insert_shared(&mut self, fd: Fd) -> VirtualFd {
        self.allocate(VfdEntry::Shared(fd))
    }

    /// Inserts an unshared per-variant descriptor set (one kernel descriptor
    /// per variant, in variant order), returning its virtual number.
    ///
    /// # Panics
    ///
    /// Panics if the number of descriptors does not equal the number of
    /// variants — the table's slot-synchronization invariant.
    pub fn insert_unshared(&mut self, fds: Vec<Fd>) -> VirtualFd {
        assert_eq!(
            fds.len(),
            self.variants,
            "unshared descriptor sets must have one descriptor per variant"
        );
        self.allocate(VfdEntry::Unshared(fds))
    }

    /// Looks up a slot.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Ebadf`] for reserved, unallocated or closed slots.
    pub fn entry(&self, vfd: VirtualFd) -> Result<&VfdEntry, Errno> {
        self.slots
            .get(vfd as usize)
            .and_then(Option::as_ref)
            .ok_or(Errno::Ebadf)
    }

    /// Returns `true` if the slot refers to an unshared file.
    #[must_use]
    pub fn is_unshared(&self, vfd: VirtualFd) -> bool {
        matches!(self.entry(vfd), Ok(VfdEntry::Unshared(_)))
    }

    /// The single kernel descriptor behind a shared slot.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Ebadf`] if the slot is not a shared descriptor.
    pub fn shared_fd(&self, vfd: VirtualFd) -> Result<Fd, Errno> {
        match self.entry(vfd)? {
            VfdEntry::Shared(fd) => Ok(*fd),
            VfdEntry::Unshared(_) => Err(Errno::Ebadf),
        }
    }

    /// The kernel descriptor a particular variant should use for a slot
    /// (identical for all variants when the slot is shared).
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Ebadf`] for invalid slots or variant indices.
    pub fn fd_for_variant(&self, vfd: VirtualFd, variant: usize) -> Result<Fd, Errno> {
        match self.entry(vfd)? {
            VfdEntry::Shared(fd) => Ok(*fd),
            VfdEntry::Unshared(fds) => fds.get(variant).copied().ok_or(Errno::Ebadf),
        }
    }

    /// Closes a slot, returning the kernel descriptors that must be closed.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Ebadf`] if the slot is not open.
    pub fn close(&mut self, vfd: VirtualFd) -> Result<Vec<Fd>, Errno> {
        let slot = self
            .slots
            .get_mut(vfd as usize)
            .ok_or(Errno::Ebadf)?
            .take()
            .ok_or(Errno::Ebadf)?;
        Ok(match slot {
            VfdEntry::Shared(fd) => vec![fd],
            VfdEntry::Unshared(fds) => fds,
        })
    }

    /// Number of currently open virtual descriptors.
    #[must_use]
    pub fn open_count(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Folds the table's full state into `digest` (used by the model
    /// checker's visited-state pruning).
    pub fn digest_into(&self, digest: &mut Fnv1a) {
        digest.write_usize(self.variants);
        digest.write_usize(self.slots.len());
        for slot in &self.slots {
            match slot {
                None => digest.write_u8(0),
                Some(VfdEntry::Shared(fd)) => {
                    digest.write_u8(1);
                    digest.write_u32(fd.as_u32());
                }
                Some(VfdEntry::Unshared(fds)) => {
                    digest.write_u8(2);
                    digest.write_usize(fds.len());
                    for fd in fds {
                        digest.write_u32(fd.as_u32());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_start_after_standard_descriptors() {
        let mut table = VirtualFdTable::new(2);
        assert_eq!(table.insert_shared(Fd::new(10)), 3);
        assert_eq!(table.insert_shared(Fd::new(11)), 4);
        assert_eq!(table.entry(0), Err(Errno::Ebadf));
        assert_eq!(table.entry(99), Err(Errno::Ebadf));
    }

    #[test]
    fn shared_and_unshared_lookup() {
        let mut table = VirtualFdTable::new(2);
        let shared = table.insert_shared(Fd::new(5));
        let unshared = table.insert_unshared(vec![Fd::new(6), Fd::new(7)]);
        assert!(!table.is_unshared(shared));
        assert!(table.is_unshared(unshared));
        assert_eq!(table.fd_for_variant(shared, 0), Ok(Fd::new(5)));
        assert_eq!(table.fd_for_variant(shared, 1), Ok(Fd::new(5)));
        assert_eq!(table.fd_for_variant(unshared, 0), Ok(Fd::new(6)));
        assert_eq!(table.fd_for_variant(unshared, 1), Ok(Fd::new(7)));
        assert_eq!(table.fd_for_variant(unshared, 2), Err(Errno::Ebadf));
        assert_eq!(table.shared_fd(unshared), Err(Errno::Ebadf));
    }

    #[test]
    fn close_frees_and_returns_descriptors() {
        let mut table = VirtualFdTable::new(2);
        let shared = table.insert_shared(Fd::new(5));
        let unshared = table.insert_unshared(vec![Fd::new(6), Fd::new(7)]);
        assert_eq!(table.open_count(), 2);
        assert_eq!(table.close(unshared).unwrap(), vec![Fd::new(6), Fd::new(7)]);
        assert_eq!(table.close(unshared), Err(Errno::Ebadf));
        assert_eq!(table.open_count(), 1);
        // Freed slots are reused.
        assert_eq!(table.insert_shared(Fd::new(9)), unshared);
        let _ = shared;
    }

    #[test]
    #[should_panic(expected = "one descriptor per variant")]
    fn unshared_sets_must_match_variant_count() {
        let mut table = VirtualFdTable::new(3);
        table.insert_unshared(vec![Fd::new(1)]);
    }
}
