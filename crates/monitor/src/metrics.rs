//! Execution metrics collected by the monitor.
//!
//! These counters feed the performance model behind the Table 3
//! reproduction: per-request CPU cost is derived from the instructions
//! executed by every variant plus the number of monitor checks, while I/O
//! bytes are charged once because the kernel performed them once.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Counters describing one monitored run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorMetrics {
    /// Number of variants in the group.
    pub variants: usize,
    /// Total bytecode instructions executed across all variants.
    pub total_instructions: u64,
    /// Number of synchronization points (system calls issued by the group).
    pub syscalls: u64,
    /// Number of argument/output equivalence comparisons performed.
    pub equivalence_checks: u64,
    /// Number of Table 2 detection calls (`uid_value`, `cond_chk`, `cc_*`)
    /// observed.
    pub detection_calls: u64,
    /// Bytes moved by input system calls (performed once).
    pub input_bytes: u64,
    /// Bytes moved by output system calls (performed once).
    pub output_bytes: u64,
    /// Bytes moved by per-variant unshared-file I/O (performed per variant).
    pub unshared_bytes: u64,
    /// Number of alarms raised.
    pub alarms: u64,
}

impl MonitorMetrics {
    /// Creates metrics for a group of `variants` variants.
    #[must_use]
    pub fn new(variants: usize) -> Self {
        MonitorMetrics {
            variants,
            ..MonitorMetrics::default()
        }
    }

    /// Total I/O bytes moved by the kernel on behalf of the group.
    #[must_use]
    pub fn io_bytes(&self) -> u64 {
        self.input_bytes + self.output_bytes + self.unshared_bytes
    }

    /// Merges the counters of another run into this one (used by workload
    /// drivers that run one monitored request at a time).
    pub fn absorb(&mut self, other: &MonitorMetrics) {
        self.variants = self.variants.max(other.variants);
        self.total_instructions += other.total_instructions;
        self.syscalls += other.syscalls;
        self.equivalence_checks += other.equivalence_checks;
        self.detection_calls += other.detection_calls;
        self.input_bytes += other.input_bytes;
        self.output_bytes += other.output_bytes;
        self.unshared_bytes += other.unshared_bytes;
        self.alarms += other.alarms;
    }
}

impl fmt::Display for MonitorMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} variants, {} instructions, {} syscalls, {} checks, {} detection calls, {} I/O bytes, {} alarms",
            self.variants,
            self.total_instructions,
            self.syscalls,
            self.equivalence_checks,
            self.detection_calls,
            self.io_bytes(),
            self.alarms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_bytes_sums_categories() {
        let metrics = MonitorMetrics {
            input_bytes: 10,
            output_bytes: 20,
            unshared_bytes: 5,
            ..MonitorMetrics::new(2)
        };
        assert_eq!(metrics.io_bytes(), 35);
        assert_eq!(metrics.variants, 2);
    }

    #[test]
    fn absorb_accumulates() {
        let mut total = MonitorMetrics::new(2);
        let per_request = MonitorMetrics {
            total_instructions: 1000,
            syscalls: 5,
            equivalence_checks: 9,
            detection_calls: 2,
            input_bytes: 100,
            output_bytes: 300,
            unshared_bytes: 0,
            alarms: 0,
            variants: 2,
        };
        total.absorb(&per_request);
        total.absorb(&per_request);
        assert_eq!(total.total_instructions, 2000);
        assert_eq!(total.syscalls, 10);
        assert_eq!(total.equivalence_checks, 18);
        assert_eq!(total.io_bytes(), 800);
    }

    #[test]
    fn display_mentions_key_counters() {
        let text = MonitorMetrics::new(2).to_string();
        assert!(text.contains("2 variants"));
        assert!(text.contains("alarms"));
    }
}
