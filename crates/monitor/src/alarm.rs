//! Alarms: how the monitor reports detected divergence.

use nvariant_simos::Sysno;
use nvariant_types::{VariantId, Word};
use nvariant_vm::Fault;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The specific way in which the variants diverged.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DivergenceKind {
    /// The variants issued different system calls at the same
    /// synchronization point.
    SyscallMismatch {
        /// The call each variant attempted (`None` if that variant exited).
        calls: Vec<Option<Sysno>>,
    },
    /// The variants issued the same call but with arguments whose canonical
    /// meanings differ.
    ArgumentMismatch {
        /// The system call in question.
        sysno: Sysno,
        /// Which argument position diverged.
        arg_index: usize,
        /// The canonicalized value each variant supplied.
        canonical_values: Vec<Word>,
    },
    /// Output system calls attempted to emit different bytes.
    OutputMismatch {
        /// The system call in question.
        sysno: Sysno,
    },
    /// A `uid_value`, `cc_*` or `cond_chk` detection call observed
    /// non-equivalent values.
    DetectionCheckFailed {
        /// The detection call.
        sysno: Sysno,
        /// The canonicalized value each variant supplied (first argument).
        canonical_values: Vec<Word>,
    },
    /// One or more variants faulted while the group was still running.
    VariantFault {
        /// Which variant faulted.
        variant: VariantId,
        /// The fault it suffered.
        fault: Fault,
    },
    /// The variants exited with different statuses.
    ExitMismatch {
        /// The status each variant exited with (`None` if it had not exited).
        statuses: Vec<Option<i32>>,
    },
}

impl fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceKind::SyscallMismatch { calls } => {
                write!(f, "variants issued different system calls: {calls:?}")
            }
            DivergenceKind::ArgumentMismatch {
                sysno,
                arg_index,
                canonical_values,
            } => write!(
                f,
                "argument {arg_index} of {sysno} has divergent canonical values: {canonical_values:?}"
            ),
            DivergenceKind::OutputMismatch { sysno } => {
                write!(f, "variants attempted to emit different output via {sysno}")
            }
            DivergenceKind::DetectionCheckFailed {
                sysno,
                canonical_values,
            } => write!(
                f,
                "detection call {sysno} observed divergent values: {canonical_values:?}"
            ),
            DivergenceKind::VariantFault { variant, fault } => {
                write!(f, "{variant} faulted: {fault}")
            }
            DivergenceKind::ExitMismatch { statuses } => {
                write!(f, "variants exited with different statuses: {statuses:?}")
            }
        }
    }
}

/// An alarm raised by the monitor: the divergence plus where it happened.
///
/// # Example
///
/// ```
/// use nvariant_monitor::{Alarm, DivergenceKind};
/// use nvariant_simos::Sysno;
/// use nvariant_types::Word;
///
/// let alarm = Alarm::new(
///     DivergenceKind::DetectionCheckFailed {
///         sysno: Sysno::UidValue,
///         canonical_values: vec![Word::from_u32(0), Word::from_u32(0x7FFF_FFFF)],
///     },
///     12,
/// );
/// assert!(alarm.to_string().contains("uid_value"));
/// assert_eq!(alarm.syscall_index, 12);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alarm {
    /// What diverged.
    pub kind: DivergenceKind,
    /// The index of the synchronization point (system call number within the
    /// run) at which the divergence was detected.
    pub syscall_index: u64,
}

impl Alarm {
    /// Creates an alarm.
    #[must_use]
    pub fn new(kind: DivergenceKind, syscall_index: u64) -> Self {
        Alarm {
            kind,
            syscall_index,
        }
    }

    /// Returns `true` if the alarm was raised by one of the Table 2
    /// detection calls (rather than a pre-existing syscall check or fault).
    #[must_use]
    pub fn from_detection_call(&self) -> bool {
        matches!(self.kind, DivergenceKind::DetectionCheckFailed { .. })
    }
}

impl fmt::Display for Alarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ALARM at synchronization point {}: {}",
            self.syscall_index, self.kind
        )
    }
}

impl std::error::Error for Alarm {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let alarm = Alarm::new(
            DivergenceKind::ArgumentMismatch {
                sysno: Sysno::SetEuid,
                arg_index: 0,
                canonical_values: vec![Word::from_u32(0), Word::from_u32(48)],
            },
            7,
        );
        let text = alarm.to_string();
        assert!(text.contains("seteuid"));
        assert!(text.contains("point 7"));
        assert!(!alarm.from_detection_call());
    }

    #[test]
    fn detection_call_classification() {
        let alarm = Alarm::new(
            DivergenceKind::DetectionCheckFailed {
                sysno: Sysno::CcEq,
                canonical_values: vec![],
            },
            0,
        );
        assert!(alarm.from_detection_call());
    }

    #[test]
    fn all_kinds_render() {
        let kinds = vec![
            DivergenceKind::SyscallMismatch {
                calls: vec![Some(Sysno::Read), Some(Sysno::Write)],
            },
            DivergenceKind::OutputMismatch { sysno: Sysno::Send },
            DivergenceKind::VariantFault {
                variant: VariantId::P1,
                fault: Fault::StackOverflow,
            },
            DivergenceKind::ExitMismatch {
                statuses: vec![Some(0), None],
            },
        ];
        for kind in kinds {
            assert!(!kind.to_string().is_empty());
        }
    }
}
