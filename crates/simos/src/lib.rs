//! Simulated operating-system substrate for the *Security through Redundant
//! Data Diversity* (DSN 2008) reproduction.
//!
//! The paper's prototype is a modified Linux kernel; the security argument,
//! however, only depends on a small set of kernel behaviours:
//!
//! * a **filesystem** with per-file owner/group/mode and permission checks
//!   against the calling process' effective UID ([`fs`]),
//! * **process credentials** with POSIX `setuid`/`seteuid` semantics
//!   ([`cred`]),
//! * the **`/etc/passwd` and `/etc/group` databases** that map user names to
//!   UIDs — the trusted external data the UID variation must diversify
//!   ([`passwd`]),
//! * a **network** that delivers untrusted client input to the service
//!   ([`net`]),
//! * a **system-call interface** connecting variant processes to all of the
//!   above ([`syscall`], [`kernel`]).
//!
//! This crate implements those behaviours as a deterministic, in-memory
//! kernel ([`OsKernel`]) that the single-process runner (Configurations 1–2
//! of the paper) and the N-variant monitor (Configurations 3–4) both execute
//! against. A [`CostModel`] assigns simulated time to CPU work and I/O so the
//! WebBench-style evaluation can distinguish I/O-bound from CPU-bound load.
//!
//! # Example
//!
//! ```
//! use nvariant_simos::{OsKernel, WorldBuilder, OpenFlags};
//! use nvariant_types::Uid;
//!
//! // Build the standard case-study world: users, passwd files, docroot.
//! let mut kernel = WorldBuilder::standard().build();
//! let pid = kernel.spawn_process(Uid::ROOT);
//!
//! // Root may read the shadow file ...
//! let fd = kernel.open(pid, "/etc/shadow", OpenFlags::RDONLY).unwrap();
//! let data = kernel.read(pid, fd, 4096).unwrap();
//! assert!(!data.is_empty());
//!
//! // ... but an unprivileged process may not.
//! let unpriv = kernel.spawn_process(Uid::new(48));
//! assert!(kernel.open(unpriv, "/etc/shadow", OpenFlags::RDONLY).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod cred;
pub mod fs;
pub mod kernel;
pub mod net;
pub mod passwd;
pub mod syscall;
pub mod world;

pub use costs::{CostModel, SimDuration, SimInstant};
pub use cred::Credentials;
pub use fs::{AccessMode, FileMode, FileSystem, Inode, OpenFlags};
pub use kernel::{FdEntry, OsKernel, ProcessMem};
pub use net::{Connection, Listener, SimNetwork};
pub use passwd::{GroupEntry, PasswdDb, PasswdEntry};
pub use syscall::{SyscallRequest, Sysno};
pub use world::{UserSpec, WorldBuilder, WorldTemplate};
