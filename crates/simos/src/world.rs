//! Construction of the standard case-study world: users, account files,
//! server configuration, document root, and sensitive targets.
//!
//! The layout mirrors the environment of the paper's Apache case study:
//! the server is configured (in `/etc/httpd.conf`) to run as the `httpd`
//! user, maps that name to a UID by reading `/etc/passwd`, serves static
//! pages from `/var/www/html`, appends to a root-owned log file, and the
//! attacker's prize is the root-only `/etc/shadow`.

use crate::fs::FileMode;
use crate::kernel::OsKernel;
use crate::passwd::{GroupEntry, PasswdDb, PasswdEntry};
use nvariant_types::{Gid, Uid};
use serde::{Deserialize, Serialize};

/// Description of one user account to create in the world.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserSpec {
    /// Login name.
    pub name: String,
    /// User ID.
    pub uid: Uid,
    /// Primary group ID.
    pub gid: Gid,
}

impl UserSpec {
    /// Creates a user specification.
    #[must_use]
    pub fn new(name: &str, uid: u32, gid: u32) -> Self {
        UserSpec {
            name: name.to_string(),
            uid: Uid::new(uid),
            gid: Gid::new(gid),
        }
    }
}

/// A file to create in the world.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct FileSpec {
    path: String,
    data: Vec<u8>,
    owner: Uid,
    group: Gid,
    mode: FileMode,
}

/// Builder for the simulated world used by the examples, tests and
/// benchmarks.
///
/// # Example
///
/// ```
/// use nvariant_simos::WorldBuilder;
///
/// let kernel = WorldBuilder::standard().build();
/// assert!(kernel.fs().exists("/etc/passwd"));
/// assert!(kernel.fs().exists("/var/www/html/index.html"));
/// assert_eq!(kernel.passwd().lookup_user("httpd").unwrap().uid.as_u32(), 48);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WorldBuilder {
    users: Vec<UserSpec>,
    files: Vec<FileSpec>,
    server_user: String,
    document_root: String,
    listen_port: u16,
    log_file: String,
}

/// The UID of the `httpd` service account in the standard world.
pub const HTTPD_UID: u32 = 48;

impl WorldBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        WorldBuilder {
            server_user: "httpd".to_string(),
            document_root: "/var/www/html".to_string(),
            listen_port: 80,
            log_file: "/var/log/httpd.log".to_string(),
            ..WorldBuilder::default()
        }
    }

    /// Creates the standard case-study world:
    ///
    /// * accounts `root` (0), `httpd` (48), `alice` (1000);
    /// * `/etc/passwd` and `/etc/group` rendered from those accounts;
    /// * `/etc/httpd.conf` configuring the server;
    /// * a document root with a static-page mix modelled on the WebBench
    ///   workload (small and medium HTML pages plus an image);
    /// * root-only `/etc/shadow` (the attacker's target) and a root-owned
    ///   log file the server must escalate to append to.
    #[must_use]
    pub fn standard() -> Self {
        WorldBuilder::new()
            .user(UserSpec::new("root", 0, 0))
            .user(UserSpec::new("httpd", HTTPD_UID, HTTPD_UID))
            .user(UserSpec::new("alice", 1000, 100))
            .standard_shadow()
            .standard_pages()
        // `/etc/httpd.conf` and the log file are materialized by `build()`,
        // so overrides applied after `standard()` still take effect.
    }

    /// Adds the standard root-only `/etc/shadow` whose hashes are the
    /// attacker's prize (attack judges grep the responses for its contents).
    #[must_use]
    pub fn standard_shadow(self) -> Self {
        self.file_with(
            "/etc/shadow",
            b"root:$6$rEdUnDaNt$EncryptedRootPasswordHash:19000:0:99999:7:::\nhttpd:!!:19000::::::\nalice:$6$aLiCe$AnotherHash:19000:0:99999:7:::\n".to_vec(),
            Uid::ROOT,
            Gid::ROOT,
            FileMode::PRIVATE,
        )
    }

    /// Adds the WebBench-style static page mix under the current document
    /// root (small and medium HTML pages plus an image and an admin page).
    #[must_use]
    pub fn standard_pages(self) -> Self {
        self.page("index.html", &WorldBuilder::html_page("Welcome", 16))
            .page("about.html", &WorldBuilder::html_page("About Us", 24))
            .page("products.html", &WorldBuilder::html_page("Products", 48))
            .page("contact.html", &WorldBuilder::html_page("Contact", 8))
            .page("news.html", &WorldBuilder::html_page("News Archive", 96))
            .page(
                "logo.png",
                &String::from_utf8(vec![b'P'; 4096]).expect("ascii fill is valid utf-8"),
            )
            .page(
                "admin/status.html",
                &WorldBuilder::html_page("Server Status", 12),
            )
    }

    fn html_page(title: &str, paragraphs: usize) -> String {
        let mut body = String::new();
        body.push_str("<html><head><title>");
        body.push_str(title);
        body.push_str("</title></head><body>\n");
        for i in 0..paragraphs {
            body.push_str(&format!(
                "<p>Paragraph {i} of the {title} page, served by the redundant \
                 data diversity case study server.</p>\n"
            ));
        }
        body.push_str("</body></html>\n");
        body
    }

    /// Adds a user account (and a matching single-member group).
    #[must_use]
    pub fn user(mut self, user: UserSpec) -> Self {
        self.users.push(user);
        self
    }

    /// Adds a world-readable, root-owned file.
    #[must_use]
    pub fn file(self, path: &str, data: Vec<u8>) -> Self {
        self.file_with(path, data, Uid::ROOT, Gid::ROOT, FileMode::PUBLIC)
    }

    /// Adds a file with explicit ownership and mode.
    #[must_use]
    pub fn file_with(
        mut self,
        path: &str,
        data: Vec<u8>,
        owner: Uid,
        group: Gid,
        mode: FileMode,
    ) -> Self {
        self.files.push(FileSpec {
            path: path.to_string(),
            data,
            owner,
            group,
            mode,
        });
        self
    }

    /// Adds a static page under the document root.
    #[must_use]
    pub fn page(self, relative_path: &str, contents: &str) -> Self {
        let path = format!("{}/{}", self.document_root, relative_path);
        self.file(&path, contents.as_bytes().to_vec())
    }

    /// Overrides the server's configured user name.
    #[must_use]
    pub fn server_user(mut self, name: &str) -> Self {
        self.server_user = name.to_string();
        self
    }

    /// Overrides the document root rendered into `/etc/httpd.conf`. Pages
    /// added via [`WorldBuilder::page`] *after* this call land under the new
    /// root (the path is resolved when the page is added).
    #[must_use]
    pub fn with_document_root(mut self, path: &str) -> Self {
        self.document_root = path.to_string();
        self
    }

    /// Overrides the port the server listens on.
    #[must_use]
    pub fn listen_port(mut self, port: u16) -> Self {
        self.listen_port = port;
        self
    }

    /// Overrides the server's log file path.
    #[must_use]
    pub fn log_file(mut self, path: &str) -> Self {
        self.log_file = path.to_string();
        self
    }

    /// Renders `/etc/httpd.conf` from the configured server settings.
    #[must_use]
    pub fn render_httpd_conf(&self) -> String {
        format!(
            "Listen {}\nUser {}\nDocumentRoot {}\nLogFile {}\n",
            self.listen_port, self.server_user, self.document_root, self.log_file
        )
    }

    /// The document root used for pages added via [`WorldBuilder::page`].
    #[must_use]
    pub fn document_root(&self) -> &str {
        &self.document_root
    }

    /// The account database implied by the configured users.
    #[must_use]
    pub fn passwd_db(&self) -> PasswdDb {
        let mut db = PasswdDb::new();
        for user in &self.users {
            db.add_user(PasswdEntry::new(&user.name, user.uid, user.gid));
            db.add_group(GroupEntry::new(&user.name, user.gid));
        }
        db
    }

    /// Builds the kernel: creates all accounts and files, including the
    /// rendered `/etc/passwd`, `/etc/group`, and — when a server user is
    /// configured — `/etc/httpd.conf` plus the (initially empty, root-only)
    /// log file, both reflecting the builder's current settings.
    #[must_use]
    pub fn build(&self) -> OsKernel {
        let mut kernel = OsKernel::new();
        let db = self.passwd_db();
        *kernel.passwd_mut() = db.clone();

        kernel.fs_mut().create_with(
            "/etc/passwd",
            db.render_passwd().into_bytes(),
            Uid::ROOT,
            Gid::ROOT,
            FileMode::PUBLIC,
        );
        kernel.fs_mut().create_with(
            "/etc/group",
            db.render_group().into_bytes(),
            Uid::ROOT,
            Gid::ROOT,
            FileMode::PUBLIC,
        );

        if !self.server_user.is_empty() {
            kernel.fs_mut().create_with(
                "/etc/httpd.conf",
                self.render_httpd_conf().into_bytes(),
                Uid::ROOT,
                Gid::ROOT,
                FileMode::PUBLIC,
            );
        }
        if !self.log_file.is_empty() {
            kernel.fs_mut().create_with(
                &self.log_file,
                Vec::new(),
                Uid::ROOT,
                Gid::ROOT,
                FileMode::PRIVATE,
            );
        }

        // Explicitly added files come last so callers can override any of
        // the rendered defaults above.
        for f in &self.files {
            kernel
                .fs_mut()
                .create_with(&f.path, f.data.clone(), f.owner, f.group, f.mode);
        }
        kernel
    }
}

/// A named, pre-built world a campaign can deploy compiled systems into:
/// the *environment axis* of the evaluation matrix.
///
/// The paper evaluates deployments against one fixed Apache environment;
/// related work on quantifying diversity effectiveness measures security as
/// a function of the environment as well as the variant set. A
/// `WorldTemplate` makes the environment an explicit, labelled coordinate:
/// the same compiled artifact can be provisioned into the standard world, a
/// world with a different account database, a different document root, or a
/// world with injected filesystem faults — and a campaign cell records which
/// one it ran in.
///
/// Templates are immutable once built; deployments clone the kernel, never
/// mutate the template.
///
/// # Example
///
/// ```
/// use nvariant_simos::WorldTemplate;
///
/// let world = WorldTemplate::alternate_accounts();
/// assert_eq!(world.name(), "alt-accounts");
/// // The service account exists, but under a different UID than the
/// // standard world's 48.
/// assert_eq!(world.kernel().passwd().lookup_user("httpd").unwrap().uid.as_u32(), 61);
/// ```
#[derive(Clone, Debug)]
pub struct WorldTemplate {
    name: String,
    kernel: OsKernel,
}

impl WorldTemplate {
    /// Wraps an already-built kernel as a named template.
    #[must_use]
    pub fn new(name: impl Into<String>, kernel: OsKernel) -> Self {
        WorldTemplate {
            name: name.into(),
            kernel,
        }
    }

    /// Builds a template from a [`WorldBuilder`].
    #[must_use]
    pub fn from_builder(name: impl Into<String>, builder: &WorldBuilder) -> Self {
        WorldTemplate::new(name, builder.build())
    }

    /// The standard case-study world ([`WorldBuilder::standard`]).
    #[must_use]
    pub fn standard() -> Self {
        WorldTemplate::from_builder("standard", &WorldBuilder::standard())
    }

    /// The standard world layout with a different account database: the
    /// service account keeps its name (`/etc/httpd.conf` still says
    /// `User httpd`) but maps to UID 61 instead of 48, the ordinary user
    /// moves to UID 1500, and an extra `backup` system account exists.
    /// Exercises every UID-carrying path — passwd parsing, privilege drops,
    /// unshared per-variant account files — with concrete values that never
    /// appear in the standard world.
    #[must_use]
    pub fn alternate_accounts() -> Self {
        let builder = WorldBuilder::new()
            .user(UserSpec::new("root", 0, 0))
            .user(UserSpec::new("httpd", 61, 61))
            .user(UserSpec::new("alice", 1500, 150))
            .user(UserSpec::new("backup", 34, 34))
            .standard_shadow()
            .standard_pages();
        WorldTemplate::from_builder("alt-accounts", &builder)
    }

    /// The standard world with the document tree rooted at `/srv/webroot`
    /// instead of `/var/www/html` (same accounts, same page names, so the
    /// same workload mix applies; `/etc/httpd.conf` points the server at the
    /// new root).
    #[must_use]
    pub fn alternate_docroot() -> Self {
        let builder = WorldBuilder::new()
            .with_document_root("/srv/webroot")
            .user(UserSpec::new("root", 0, 0))
            .user(UserSpec::new("httpd", HTTPD_UID, HTTPD_UID))
            .user(UserSpec::new("alice", 1000, 100))
            .standard_shadow()
            .standard_pages();
        WorldTemplate::from_builder("alt-docroot", &builder)
    }

    /// The standard world with a deterministic filesystem fault injected:
    /// `news.html` sits on a bad sector, so every attempt to serve it fails
    /// with `EIO` (the server answers 404). The fault is shared kernel
    /// state, identical for every variant of a deployment, so it degrades
    /// service without ever inducing cross-variant divergence.
    #[must_use]
    pub fn faulty_fs() -> Self {
        let mut kernel = WorldBuilder::standard().build();
        kernel.fs_mut().inject_read_fault("/var/www/html/news.html");
        WorldTemplate::new("faulty-fs", kernel)
    }

    /// Every built-in world template, standard first — the full environment
    /// axis the report binaries sweep.
    #[must_use]
    pub fn catalogue() -> Vec<WorldTemplate> {
        vec![
            WorldTemplate::standard(),
            WorldTemplate::alternate_accounts(),
            WorldTemplate::alternate_docroot(),
            WorldTemplate::faulty_fs(),
        ]
    }

    /// The template's name (the label campaign cells record).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pre-built kernel deployments clone from.
    #[must_use]
    pub fn kernel(&self) -> &OsKernel {
        &self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::Credentials;
    use crate::fs::{AccessMode, OpenFlags};

    #[test]
    fn standard_world_has_expected_accounts() {
        let b = WorldBuilder::standard();
        let db = b.passwd_db();
        assert_eq!(db.lookup_user("root").unwrap().uid, Uid::ROOT);
        assert_eq!(db.lookup_user("httpd").unwrap().uid, Uid::new(HTTPD_UID));
        assert_eq!(db.lookup_user("alice").unwrap().uid, Uid::new(1000));
        assert!(db.lookup_group("httpd").is_some());
    }

    #[test]
    fn server_settings_applied_after_standard_reach_the_rendered_conf() {
        let kernel = WorldBuilder::standard()
            .listen_port(8080)
            .log_file("/var/log/alt-httpd.log")
            .build();
        let conf = kernel.fs().get("/etc/httpd.conf").unwrap();
        let text = String::from_utf8(conf.data.to_vec()).unwrap();
        assert!(text.contains("Listen 8080"), "{text}");
        assert!(text.contains("LogFile /var/log/alt-httpd.log"), "{text}");
        assert!(kernel.fs().exists("/var/log/alt-httpd.log"));
        assert!(!kernel.fs().exists("/var/log/httpd.log"));
    }

    #[test]
    fn explicitly_added_files_override_the_rendered_defaults() {
        let kernel = WorldBuilder::standard()
            .file("/etc/httpd.conf", b"Listen 9999\n".to_vec())
            .build();
        let conf = kernel.fs().get("/etc/httpd.conf").unwrap();
        assert_eq!(conf.data, b"Listen 9999\n");
    }

    #[test]
    fn standard_world_files_exist_with_expected_protection() {
        let kernel = WorldBuilder::standard().build();
        assert!(kernel.fs().exists("/etc/passwd"));
        assert!(kernel.fs().exists("/etc/group"));
        assert!(kernel.fs().exists("/etc/httpd.conf"));
        assert!(kernel.fs().exists("/var/www/html/index.html"));
        assert!(kernel.fs().exists("/var/www/html/admin/status.html"));

        let www = Credentials::new(Uid::new(HTTPD_UID), Gid::new(HTTPD_UID));
        // Shadow and the log file are root-only.
        assert!(kernel
            .fs()
            .check_access("/etc/shadow", &www, AccessMode::Read)
            .is_err());
        assert!(kernel
            .fs()
            .check_access("/var/log/httpd.log", &www, AccessMode::Write)
            .is_err());
        // Pages and passwd are world readable.
        assert!(kernel
            .fs()
            .check_access("/var/www/html/index.html", &www, AccessMode::Read)
            .is_ok());
        assert!(kernel
            .fs()
            .check_access("/etc/passwd", &www, AccessMode::Read)
            .is_ok());
    }

    #[test]
    fn rendered_passwd_contains_httpd_line() {
        let kernel = WorldBuilder::standard().build();
        let passwd = kernel.fs().get("/etc/passwd").unwrap();
        let text = String::from_utf8(passwd.data.to_vec()).unwrap();
        assert!(text.contains("httpd:x:48:48:"));
        assert!(text.lines().count() >= 3);
    }

    #[test]
    fn custom_world_pages_and_users() {
        let kernel = WorldBuilder::new()
            .user(UserSpec::new("root", 0, 0))
            .user(UserSpec::new("svc", 200, 200))
            .page("custom.html", "<html>x</html>")
            .build();
        assert!(kernel.fs().exists("/var/www/html/custom.html"));
        assert_eq!(
            kernel.passwd().lookup_user("svc").unwrap().uid,
            Uid::new(200)
        );
    }

    #[test]
    fn built_kernel_supports_end_to_end_privileged_open() {
        let mut kernel = WorldBuilder::standard().build();
        let root = kernel.spawn_process(Uid::ROOT);
        assert!(kernel.open(root, "/etc/shadow", OpenFlags::RDONLY).is_ok());
        let www = kernel.spawn_process(Uid::new(HTTPD_UID));
        assert!(kernel.open(www, "/etc/shadow", OpenFlags::RDONLY).is_err());
    }

    #[test]
    fn world_template_catalogue_is_distinctly_labelled() {
        let catalogue = WorldTemplate::catalogue();
        assert_eq!(catalogue.len(), 4);
        let names: Vec<&str> = catalogue.iter().map(WorldTemplate::name).collect();
        assert_eq!(
            names,
            vec!["standard", "alt-accounts", "alt-docroot", "faulty-fs"]
        );
        // Every world serves the same page names and keeps the shadow prize.
        for world in &catalogue {
            let conf = world.kernel().fs().get("/etc/httpd.conf").unwrap();
            let text = String::from_utf8(conf.data.to_vec()).unwrap();
            let docroot = text
                .lines()
                .find_map(|l| l.strip_prefix("DocumentRoot "))
                .unwrap();
            assert!(
                world.kernel().fs().exists(&format!("{docroot}/index.html")),
                "{}",
                world.name()
            );
            assert!(
                world.kernel().fs().exists("/etc/shadow"),
                "{}",
                world.name()
            );
        }
    }

    #[test]
    fn alternate_docroot_moves_the_page_tree() {
        let world = WorldTemplate::alternate_docroot();
        assert!(world.kernel().fs().exists("/srv/webroot/index.html"));
        assert!(!world.kernel().fs().exists("/var/www/html/index.html"));
        let conf = world.kernel().fs().get("/etc/httpd.conf").unwrap();
        assert!(String::from_utf8_lossy(&conf.data).contains("DocumentRoot /srv/webroot"));
    }

    #[test]
    fn faulty_fs_world_injects_a_read_fault() {
        let world = WorldTemplate::faulty_fs();
        assert!(world
            .kernel()
            .fs()
            .is_read_faulty("/var/www/html/news.html"));
        // Only the faulted page is affected.
        assert!(!world
            .kernel()
            .fs()
            .is_read_faulty("/var/www/html/index.html"));
    }

    #[test]
    fn page_sizes_form_a_mix() {
        let kernel = WorldBuilder::standard().build();
        let small = kernel.fs().get("/var/www/html/contact.html").unwrap().len();
        let large = kernel.fs().get("/var/www/html/news.html").unwrap().len();
        assert!(large > 4 * small);
    }
}
