//! Construction of the standard case-study world: users, account files,
//! server configuration, document root, and sensitive targets.
//!
//! The layout mirrors the environment of the paper's Apache case study:
//! the server is configured (in `/etc/httpd.conf`) to run as the `httpd`
//! user, maps that name to a UID by reading `/etc/passwd`, serves static
//! pages from `/var/www/html`, appends to a root-owned log file, and the
//! attacker's prize is the root-only `/etc/shadow`.

use crate::fs::FileMode;
use crate::kernel::OsKernel;
use crate::passwd::{GroupEntry, PasswdDb, PasswdEntry};
use nvariant_types::{Gid, Uid};
use serde::{Deserialize, Serialize};

/// Description of one user account to create in the world.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserSpec {
    /// Login name.
    pub name: String,
    /// User ID.
    pub uid: Uid,
    /// Primary group ID.
    pub gid: Gid,
}

impl UserSpec {
    /// Creates a user specification.
    #[must_use]
    pub fn new(name: &str, uid: u32, gid: u32) -> Self {
        UserSpec {
            name: name.to_string(),
            uid: Uid::new(uid),
            gid: Gid::new(gid),
        }
    }
}

/// A file to create in the world.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct FileSpec {
    path: String,
    data: Vec<u8>,
    owner: Uid,
    group: Gid,
    mode: FileMode,
}

/// Builder for the simulated world used by the examples, tests and
/// benchmarks.
///
/// # Example
///
/// ```
/// use nvariant_simos::WorldBuilder;
///
/// let kernel = WorldBuilder::standard().build();
/// assert!(kernel.fs().exists("/etc/passwd"));
/// assert!(kernel.fs().exists("/var/www/html/index.html"));
/// assert_eq!(kernel.passwd().lookup_user("httpd").unwrap().uid.as_u32(), 48);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WorldBuilder {
    users: Vec<UserSpec>,
    files: Vec<FileSpec>,
    server_user: String,
    document_root: String,
    listen_port: u16,
    log_file: String,
}

/// The UID of the `httpd` service account in the standard world.
pub const HTTPD_UID: u32 = 48;

impl WorldBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        WorldBuilder {
            server_user: "httpd".to_string(),
            document_root: "/var/www/html".to_string(),
            listen_port: 80,
            log_file: "/var/log/httpd.log".to_string(),
            ..WorldBuilder::default()
        }
    }

    /// Creates the standard case-study world:
    ///
    /// * accounts `root` (0), `httpd` (48), `alice` (1000);
    /// * `/etc/passwd` and `/etc/group` rendered from those accounts;
    /// * `/etc/httpd.conf` configuring the server;
    /// * a document root with a static-page mix modelled on the WebBench
    ///   workload (small and medium HTML pages plus an image);
    /// * root-only `/etc/shadow` (the attacker's target) and a root-owned
    ///   log file the server must escalate to append to.
    #[must_use]
    pub fn standard() -> Self {
        let mut b = WorldBuilder::new();
        b = b
            .user(UserSpec::new("root", 0, 0))
            .user(UserSpec::new("httpd", HTTPD_UID, HTTPD_UID))
            .user(UserSpec::new("alice", 1000, 100));

        b = b.file_with(
            "/etc/shadow",
            b"root:$6$rEdUnDaNt$EncryptedRootPasswordHash:19000:0:99999:7:::\nhttpd:!!:19000::::::\nalice:$6$aLiCe$AnotherHash:19000:0:99999:7:::\n".to_vec(),
            Uid::ROOT,
            Gid::ROOT,
            FileMode::PRIVATE,
        );
        // `/etc/httpd.conf` and the log file are materialized by `build()`,
        // so overrides applied after `standard()` still take effect.

        // WebBench-style static page mix.
        b = b.page("index.html", &WorldBuilder::html_page("Welcome", 16));
        b = b.page("about.html", &WorldBuilder::html_page("About Us", 24));
        b = b.page("products.html", &WorldBuilder::html_page("Products", 48));
        b = b.page("contact.html", &WorldBuilder::html_page("Contact", 8));
        b = b.page("news.html", &WorldBuilder::html_page("News Archive", 96));
        b = b.page(
            "logo.png",
            &String::from_utf8(vec![b'P'; 4096]).expect("ascii fill is valid utf-8"),
        );
        b = b.page(
            "admin/status.html",
            &WorldBuilder::html_page("Server Status", 12),
        );
        b
    }

    fn html_page(title: &str, paragraphs: usize) -> String {
        let mut body = String::new();
        body.push_str("<html><head><title>");
        body.push_str(title);
        body.push_str("</title></head><body>\n");
        for i in 0..paragraphs {
            body.push_str(&format!(
                "<p>Paragraph {i} of the {title} page, served by the redundant \
                 data diversity case study server.</p>\n"
            ));
        }
        body.push_str("</body></html>\n");
        body
    }

    /// Adds a user account (and a matching single-member group).
    #[must_use]
    pub fn user(mut self, user: UserSpec) -> Self {
        self.users.push(user);
        self
    }

    /// Adds a world-readable, root-owned file.
    #[must_use]
    pub fn file(self, path: &str, data: Vec<u8>) -> Self {
        self.file_with(path, data, Uid::ROOT, Gid::ROOT, FileMode::PUBLIC)
    }

    /// Adds a file with explicit ownership and mode.
    #[must_use]
    pub fn file_with(
        mut self,
        path: &str,
        data: Vec<u8>,
        owner: Uid,
        group: Gid,
        mode: FileMode,
    ) -> Self {
        self.files.push(FileSpec {
            path: path.to_string(),
            data,
            owner,
            group,
            mode,
        });
        self
    }

    /// Adds a static page under the document root.
    #[must_use]
    pub fn page(self, relative_path: &str, contents: &str) -> Self {
        let path = format!("{}/{}", self.document_root, relative_path);
        self.file(&path, contents.as_bytes().to_vec())
    }

    /// Overrides the server's configured user name.
    #[must_use]
    pub fn server_user(mut self, name: &str) -> Self {
        self.server_user = name.to_string();
        self
    }

    /// Overrides the port the server listens on.
    #[must_use]
    pub fn listen_port(mut self, port: u16) -> Self {
        self.listen_port = port;
        self
    }

    /// Overrides the server's log file path.
    #[must_use]
    pub fn log_file(mut self, path: &str) -> Self {
        self.log_file = path.to_string();
        self
    }

    /// Renders `/etc/httpd.conf` from the configured server settings.
    #[must_use]
    pub fn render_httpd_conf(&self) -> String {
        format!(
            "Listen {}\nUser {}\nDocumentRoot {}\nLogFile {}\n",
            self.listen_port, self.server_user, self.document_root, self.log_file
        )
    }

    /// The document root used for pages added via [`WorldBuilder::page`].
    #[must_use]
    pub fn document_root(&self) -> &str {
        &self.document_root
    }

    /// The account database implied by the configured users.
    #[must_use]
    pub fn passwd_db(&self) -> PasswdDb {
        let mut db = PasswdDb::new();
        for user in &self.users {
            db.add_user(PasswdEntry::new(&user.name, user.uid, user.gid));
            db.add_group(GroupEntry::new(&user.name, user.gid));
        }
        db
    }

    /// Builds the kernel: creates all accounts and files, including the
    /// rendered `/etc/passwd`, `/etc/group`, and — when a server user is
    /// configured — `/etc/httpd.conf` plus the (initially empty, root-only)
    /// log file, both reflecting the builder's current settings.
    #[must_use]
    pub fn build(&self) -> OsKernel {
        let mut kernel = OsKernel::new();
        let db = self.passwd_db();
        *kernel.passwd_mut() = db.clone();

        kernel.fs_mut().create_with(
            "/etc/passwd",
            db.render_passwd().into_bytes(),
            Uid::ROOT,
            Gid::ROOT,
            FileMode::PUBLIC,
        );
        kernel.fs_mut().create_with(
            "/etc/group",
            db.render_group().into_bytes(),
            Uid::ROOT,
            Gid::ROOT,
            FileMode::PUBLIC,
        );

        if !self.server_user.is_empty() {
            kernel.fs_mut().create_with(
                "/etc/httpd.conf",
                self.render_httpd_conf().into_bytes(),
                Uid::ROOT,
                Gid::ROOT,
                FileMode::PUBLIC,
            );
        }
        if !self.log_file.is_empty() {
            kernel.fs_mut().create_with(
                &self.log_file,
                Vec::new(),
                Uid::ROOT,
                Gid::ROOT,
                FileMode::PRIVATE,
            );
        }

        // Explicitly added files come last so callers can override any of
        // the rendered defaults above.
        for f in &self.files {
            kernel
                .fs_mut()
                .create_with(&f.path, f.data.clone(), f.owner, f.group, f.mode);
        }
        kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::Credentials;
    use crate::fs::{AccessMode, OpenFlags};

    #[test]
    fn standard_world_has_expected_accounts() {
        let b = WorldBuilder::standard();
        let db = b.passwd_db();
        assert_eq!(db.lookup_user("root").unwrap().uid, Uid::ROOT);
        assert_eq!(db.lookup_user("httpd").unwrap().uid, Uid::new(HTTPD_UID));
        assert_eq!(db.lookup_user("alice").unwrap().uid, Uid::new(1000));
        assert!(db.lookup_group("httpd").is_some());
    }

    #[test]
    fn server_settings_applied_after_standard_reach_the_rendered_conf() {
        let kernel = WorldBuilder::standard()
            .listen_port(8080)
            .log_file("/var/log/alt-httpd.log")
            .build();
        let conf = kernel.fs().get("/etc/httpd.conf").unwrap();
        let text = String::from_utf8(conf.data.clone()).unwrap();
        assert!(text.contains("Listen 8080"), "{text}");
        assert!(text.contains("LogFile /var/log/alt-httpd.log"), "{text}");
        assert!(kernel.fs().exists("/var/log/alt-httpd.log"));
        assert!(!kernel.fs().exists("/var/log/httpd.log"));
    }

    #[test]
    fn explicitly_added_files_override_the_rendered_defaults() {
        let kernel = WorldBuilder::standard()
            .file("/etc/httpd.conf", b"Listen 9999\n".to_vec())
            .build();
        let conf = kernel.fs().get("/etc/httpd.conf").unwrap();
        assert_eq!(conf.data, b"Listen 9999\n");
    }

    #[test]
    fn standard_world_files_exist_with_expected_protection() {
        let kernel = WorldBuilder::standard().build();
        assert!(kernel.fs().exists("/etc/passwd"));
        assert!(kernel.fs().exists("/etc/group"));
        assert!(kernel.fs().exists("/etc/httpd.conf"));
        assert!(kernel.fs().exists("/var/www/html/index.html"));
        assert!(kernel.fs().exists("/var/www/html/admin/status.html"));

        let www = Credentials::new(Uid::new(HTTPD_UID), Gid::new(HTTPD_UID));
        // Shadow and the log file are root-only.
        assert!(kernel
            .fs()
            .check_access("/etc/shadow", &www, AccessMode::Read)
            .is_err());
        assert!(kernel
            .fs()
            .check_access("/var/log/httpd.log", &www, AccessMode::Write)
            .is_err());
        // Pages and passwd are world readable.
        assert!(kernel
            .fs()
            .check_access("/var/www/html/index.html", &www, AccessMode::Read)
            .is_ok());
        assert!(kernel
            .fs()
            .check_access("/etc/passwd", &www, AccessMode::Read)
            .is_ok());
    }

    #[test]
    fn rendered_passwd_contains_httpd_line() {
        let kernel = WorldBuilder::standard().build();
        let passwd = kernel.fs().get("/etc/passwd").unwrap();
        let text = String::from_utf8(passwd.data.clone()).unwrap();
        assert!(text.contains("httpd:x:48:48:"));
        assert!(text.lines().count() >= 3);
    }

    #[test]
    fn custom_world_pages_and_users() {
        let kernel = WorldBuilder::new()
            .user(UserSpec::new("root", 0, 0))
            .user(UserSpec::new("svc", 200, 200))
            .page("custom.html", "<html>x</html>")
            .build();
        assert!(kernel.fs().exists("/var/www/html/custom.html"));
        assert_eq!(
            kernel.passwd().lookup_user("svc").unwrap().uid,
            Uid::new(200)
        );
    }

    #[test]
    fn built_kernel_supports_end_to_end_privileged_open() {
        let mut kernel = WorldBuilder::standard().build();
        let root = kernel.spawn_process(Uid::ROOT);
        assert!(kernel.open(root, "/etc/shadow", OpenFlags::RDONLY).is_ok());
        let www = kernel.spawn_process(Uid::new(HTTPD_UID));
        assert!(kernel.open(www, "/etc/shadow", OpenFlags::RDONLY).is_err());
    }

    #[test]
    fn page_sizes_form_a_mix() {
        let kernel = WorldBuilder::standard().build();
        let small = kernel.fs().get("/var/www/html/contact.html").unwrap().len();
        let large = kernel.fs().get("/var/www/html/news.html").unwrap().len();
        assert!(large > 4 * small);
    }
}
