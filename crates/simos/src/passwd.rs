//! The `/etc/passwd` and `/etc/group` databases.
//!
//! These files are the *trusted external data* of the paper's UID variation
//! (§3.4): the server maps its configured user name (e.g. `User httpd`) to a
//! UID by parsing `/etc/passwd`. For the data variation to preserve normal
//! equivalence, each variant must see a copy of the file whose UID columns
//! have been transformed with that variant's reexpression function — the
//! *unshared files* mechanism. This module provides parsing, rendering, and
//! UID-mapping helpers used to generate those per-variant files.

use nvariant_types::{Gid, Uid};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One line of `/etc/passwd`.
///
/// # Example
///
/// ```
/// use nvariant_simos::PasswdEntry;
///
/// let entry = PasswdEntry::parse("httpd:x:48:48:Apache:/var/www:/sbin/nologin").unwrap();
/// assert_eq!(entry.name, "httpd");
/// assert_eq!(entry.uid.as_u32(), 48);
/// assert_eq!(entry.render(), "httpd:x:48:48:Apache:/var/www:/sbin/nologin");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PasswdEntry {
    /// Login name.
    pub name: String,
    /// Password field (always `"x"` in this simulation).
    pub password: String,
    /// User ID.
    pub uid: Uid,
    /// Primary group ID.
    pub gid: Gid,
    /// GECOS / comment field.
    pub gecos: String,
    /// Home directory.
    pub home: String,
    /// Login shell.
    pub shell: String,
}

impl PasswdEntry {
    /// Creates an entry with conventional defaults for the simulation.
    #[must_use]
    pub fn new(name: &str, uid: Uid, gid: Gid) -> Self {
        PasswdEntry {
            name: name.to_string(),
            password: "x".to_string(),
            uid,
            gid,
            gecos: String::new(),
            home: format!("/home/{name}"),
            shell: "/bin/sh".to_string(),
        }
    }

    /// Parses one `passwd(5)` line.
    ///
    /// Returns `None` if the line does not have seven `:`-separated fields or
    /// the UID/GID columns are not numeric.
    #[must_use]
    pub fn parse(line: &str) -> Option<Self> {
        let fields: Vec<&str> = line.split(':').collect();
        if fields.len() != 7 {
            return None;
        }
        Some(PasswdEntry {
            name: fields[0].to_string(),
            password: fields[1].to_string(),
            uid: Uid::new(fields[2].parse().ok()?),
            gid: Gid::new(fields[3].parse().ok()?),
            gecos: fields[4].to_string(),
            home: fields[5].to_string(),
            shell: fields[6].to_string(),
        })
    }

    /// Renders the entry back into `passwd(5)` format.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}:{}:{}",
            self.name,
            self.password,
            self.uid.as_u32(),
            self.gid.as_u32(),
            self.gecos,
            self.home,
            self.shell
        )
    }
}

impl fmt::Display for PasswdEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// One line of `/etc/group`.
///
/// # Example
///
/// ```
/// use nvariant_simos::GroupEntry;
///
/// let entry = GroupEntry::parse("wheel:x:10:alice,bob").unwrap();
/// assert_eq!(entry.members, vec!["alice", "bob"]);
/// assert_eq!(entry.render(), "wheel:x:10:alice,bob");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupEntry {
    /// Group name.
    pub name: String,
    /// Password field (always `"x"`).
    pub password: String,
    /// Group ID.
    pub gid: Gid,
    /// Member login names.
    pub members: Vec<String>,
}

impl GroupEntry {
    /// Creates a group entry with no members.
    #[must_use]
    pub fn new(name: &str, gid: Gid) -> Self {
        GroupEntry {
            name: name.to_string(),
            password: "x".to_string(),
            gid,
            members: Vec::new(),
        }
    }

    /// Parses one `group(5)` line.
    #[must_use]
    pub fn parse(line: &str) -> Option<Self> {
        let fields: Vec<&str> = line.split(':').collect();
        if fields.len() != 4 {
            return None;
        }
        Some(GroupEntry {
            name: fields[0].to_string(),
            password: fields[1].to_string(),
            gid: Gid::new(fields[2].parse().ok()?),
            members: if fields[3].is_empty() {
                Vec::new()
            } else {
                fields[3].split(',').map(str::to_string).collect()
            },
        })
    }

    /// Renders the entry back into `group(5)` format.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}:{}",
            self.name,
            self.password,
            self.gid.as_u32(),
            self.members.join(",")
        )
    }
}

impl fmt::Display for GroupEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The combined user/group account database.
///
/// # Example
///
/// ```
/// use nvariant_simos::{PasswdDb, PasswdEntry};
/// use nvariant_types::{Gid, Uid};
///
/// let mut db = PasswdDb::new();
/// db.add_user(PasswdEntry::new("httpd", Uid::new(48), Gid::new(48)));
/// assert_eq!(db.lookup_user("httpd").unwrap().uid, Uid::new(48));
///
/// // Generate the per-variant file for the UID variation (R1 = XOR mask).
/// let variant1 = db.render_passwd_with(|uid| Uid::new(uid.as_u32() ^ 0x7FFF_FFFF));
/// assert!(variant1.contains(&format!("{}", 48u32 ^ 0x7FFF_FFFF)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PasswdDb {
    users: Vec<PasswdEntry>,
    groups: Vec<GroupEntry>,
}

impl PasswdDb {
    /// Creates an empty database.
    #[must_use]
    pub fn new() -> Self {
        PasswdDb::default()
    }

    /// Adds a user entry.
    pub fn add_user(&mut self, entry: PasswdEntry) {
        self.users.push(entry);
    }

    /// Adds a group entry.
    pub fn add_group(&mut self, entry: GroupEntry) {
        self.groups.push(entry);
    }

    /// Looks up a user by login name.
    #[must_use]
    pub fn lookup_user(&self, name: &str) -> Option<&PasswdEntry> {
        self.users.iter().find(|u| u.name == name)
    }

    /// Looks up a user by UID.
    #[must_use]
    pub fn lookup_uid(&self, uid: Uid) -> Option<&PasswdEntry> {
        self.users.iter().find(|u| u.uid == uid)
    }

    /// Looks up a group by name.
    #[must_use]
    pub fn lookup_group(&self, name: &str) -> Option<&GroupEntry> {
        self.groups.iter().find(|g| g.name == name)
    }

    /// Iterates over all user entries.
    pub fn users(&self) -> impl Iterator<Item = &PasswdEntry> {
        self.users.iter()
    }

    /// Iterates over all group entries.
    pub fn groups(&self) -> impl Iterator<Item = &GroupEntry> {
        self.groups.iter()
    }

    /// Parses a full `/etc/passwd` file.
    #[must_use]
    pub fn parse_passwd(text: &str) -> Vec<PasswdEntry> {
        text.lines().filter_map(PasswdEntry::parse).collect()
    }

    /// Parses a full `/etc/group` file.
    #[must_use]
    pub fn parse_group(text: &str) -> Vec<GroupEntry> {
        text.lines().filter_map(GroupEntry::parse).collect()
    }

    /// Renders the canonical `/etc/passwd` contents.
    #[must_use]
    pub fn render_passwd(&self) -> String {
        self.render_passwd_with(|uid| uid)
    }

    /// Renders `/etc/passwd` with every UID **and GID** column transformed by
    /// `map` — the primitive used to generate the unshared per-variant files
    /// (`/etc/passwd-0`, `/etc/passwd-1`).
    ///
    /// The paper treats GID values as part of the UID data class (§3), so the
    /// same mapping is applied to both columns.
    #[must_use]
    pub fn render_passwd_with(&self, map: impl Fn(Uid) -> Uid) -> String {
        let mut out = String::new();
        for user in &self.users {
            let mut entry = user.clone();
            entry.uid = map(user.uid);
            entry.gid = Gid::new(map(Uid::new(user.gid.as_u32())).as_u32());
            out.push_str(&entry.render());
            out.push('\n');
        }
        out
    }

    /// Renders the canonical `/etc/group` contents.
    #[must_use]
    pub fn render_group(&self) -> String {
        self.render_group_with(|gid| gid)
    }

    /// Renders `/etc/group` with every GID column transformed by `map`.
    #[must_use]
    pub fn render_group_with(&self, map: impl Fn(Gid) -> Gid) -> String {
        let mut out = String::new();
        for group in &self.groups {
            let mut entry = group.clone();
            entry.gid = map(group.gid);
            out.push_str(&entry.render());
            out.push('\n');
        }
        out
    }

    /// Folds the complete account database into `digest` via the canonical
    /// `passwd(5)`/`group(5)` renderings (which cover every field of every
    /// entry, in insertion order).
    pub fn digest_into(&self, digest: &mut nvariant_types::Fnv1a) {
        digest.write_str(&self.render_passwd());
        digest.write_str(&self.render_group());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> PasswdDb {
        let mut db = PasswdDb::new();
        db.add_user(PasswdEntry::new("root", Uid::ROOT, Gid::ROOT));
        db.add_user(PasswdEntry::new("httpd", Uid::new(48), Gid::new(48)));
        db.add_user(PasswdEntry::new("alice", Uid::new(1000), Gid::new(100)));
        db.add_group(GroupEntry::new("root", Gid::ROOT));
        db.add_group(GroupEntry::new("httpd", Gid::new(48)));
        db
    }

    #[test]
    fn parse_render_round_trip() {
        let line = "httpd:x:48:48:Apache HTTP Server:/var/www:/sbin/nologin";
        let entry = PasswdEntry::parse(line).unwrap();
        assert_eq!(entry.render(), line);
        assert_eq!(entry.uid, Uid::new(48));
        assert_eq!(entry.gid, Gid::new(48));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(PasswdEntry::parse("too:few:fields").is_none());
        assert!(PasswdEntry::parse("name:x:notanumber:48:::").is_none());
        assert!(GroupEntry::parse("a:b:c").is_none());
        assert!(GroupEntry::parse("g:x:nan:").is_none());
    }

    #[test]
    fn group_members_parse_and_render() {
        let g = GroupEntry::parse("wheel:x:10:alice,bob").unwrap();
        assert_eq!(g.members, vec!["alice".to_string(), "bob".to_string()]);
        assert_eq!(g.render(), "wheel:x:10:alice,bob");
        let empty = GroupEntry::parse("nobody:x:99:").unwrap();
        assert!(empty.members.is_empty());
        assert_eq!(empty.render(), "nobody:x:99:");
    }

    #[test]
    fn lookups() {
        let db = sample_db();
        assert_eq!(db.lookup_user("httpd").unwrap().uid, Uid::new(48));
        assert_eq!(db.lookup_uid(Uid::new(1000)).unwrap().name, "alice");
        assert!(db.lookup_user("mallory").is_none());
        assert_eq!(db.lookup_group("httpd").unwrap().gid, Gid::new(48));
        assert_eq!(db.users().count(), 3);
        assert_eq!(db.groups().count(), 2);
    }

    #[test]
    fn render_passwd_identity_round_trips_through_parse() {
        let db = sample_db();
        let text = db.render_passwd();
        let parsed = PasswdDb::parse_passwd(&text);
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[1].name, "httpd");
        assert_eq!(parsed[1].uid, Uid::new(48));
    }

    #[test]
    fn render_passwd_with_mask_transforms_uid_and_gid() {
        let db = sample_db();
        let mask = 0x7FFF_FFFFu32;
        let text = db.render_passwd_with(|u| Uid::new(u.as_u32() ^ mask));
        let parsed = PasswdDb::parse_passwd(&text);
        let httpd = parsed.iter().find(|e| e.name == "httpd").unwrap();
        assert_eq!(httpd.uid.as_u32(), 48 ^ mask);
        assert_eq!(httpd.gid.as_u32(), 48 ^ mask);
        // root's transformed UID is the mask itself, matching §3.2 of the
        // paper: "0x7FFFFFFF represents root".
        let root = parsed.iter().find(|e| e.name == "root").unwrap();
        assert_eq!(root.uid.as_u32(), mask);
    }

    #[test]
    fn render_group_with_mask() {
        let db = sample_db();
        let text = db.render_group_with(|g| Gid::new(g.as_u32() ^ 0x7FFF_FFFF));
        let parsed = PasswdDb::parse_group(&text);
        assert_eq!(parsed[1].gid.as_u32(), 48 ^ 0x7FFF_FFFF);
    }

    #[test]
    fn display_matches_render() {
        let e = PasswdEntry::new("svc", Uid::new(7), Gid::new(7));
        assert_eq!(format!("{e}"), e.render());
        let g = GroupEntry::new("svc", Gid::new(7));
        assert_eq!(format!("{g}"), g.render());
    }
}
