//! An in-memory filesystem with Unix-style ownership and permission bits.
//!
//! The filesystem is the *target interpreter* for the path-based part of the
//! case study: whether an attacker who has corrupted the server's cached UID
//! actually gains anything is decided here, when `open("/etc/shadow")` is
//! checked against the effective UID of the calling process.

use crate::cred::Credentials;
use nvariant_types::{Errno, Fnv1a, Gid, Uid};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Unix-style permission bits (lower 9 bits of the classic mode word).
///
/// # Example
///
/// ```
/// use nvariant_simos::FileMode;
///
/// let mode = FileMode::new(0o640);
/// assert!(mode.allows_owner_read());
/// assert!(!mode.allows_other_read());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FileMode(u16);

impl FileMode {
    /// World-readable file, owner-writable (`0644`).
    pub const PUBLIC: FileMode = FileMode(0o644);
    /// Owner-only file (`0600`), e.g. `/etc/shadow`.
    pub const PRIVATE: FileMode = FileMode(0o600);

    /// Creates a mode from the classic octal representation.
    #[must_use]
    pub const fn new(bits: u16) -> Self {
        FileMode(bits & 0o777)
    }

    /// Returns the raw permission bits.
    #[must_use]
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Owner read permission.
    #[must_use]
    pub const fn allows_owner_read(self) -> bool {
        self.0 & 0o400 != 0
    }

    /// Owner write permission.
    #[must_use]
    pub const fn allows_owner_write(self) -> bool {
        self.0 & 0o200 != 0
    }

    /// Group read permission.
    #[must_use]
    pub const fn allows_group_read(self) -> bool {
        self.0 & 0o040 != 0
    }

    /// Group write permission.
    #[must_use]
    pub const fn allows_group_write(self) -> bool {
        self.0 & 0o020 != 0
    }

    /// Other (world) read permission.
    #[must_use]
    pub const fn allows_other_read(self) -> bool {
        self.0 & 0o004 != 0
    }

    /// Other (world) write permission.
    #[must_use]
    pub const fn allows_other_write(self) -> bool {
        self.0 & 0o002 != 0
    }
}

impl fmt::Debug for FileMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FileMode({:#o})", self.0)
    }
}

impl fmt::Display for FileMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:03o}", self.0)
    }
}

impl Default for FileMode {
    fn default() -> Self {
        FileMode::PUBLIC
    }
}

/// The kind of access being requested on a file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessMode {
    /// Read access.
    Read,
    /// Write access.
    Write,
}

/// Flags passed to `open(2)` in the simulated kernel.
///
/// # Example
///
/// ```
/// use nvariant_simos::OpenFlags;
///
/// assert!(OpenFlags::RDONLY.wants_read());
/// assert!(OpenFlags::WRONLY.wants_write());
/// assert!(OpenFlags::RDWR.wants_read() && OpenFlags::RDWR.wants_write());
/// assert!(OpenFlags::from_bits(OpenFlags::WRONLY.bits() | OpenFlags::CREAT.bits()).creates());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct OpenFlags(u32);

impl OpenFlags {
    /// Open for reading only.
    pub const RDONLY: OpenFlags = OpenFlags(0);
    /// Open for writing only.
    pub const WRONLY: OpenFlags = OpenFlags(1);
    /// Open for reading and writing.
    pub const RDWR: OpenFlags = OpenFlags(2);
    /// Create the file if it does not exist.
    pub const CREAT: OpenFlags = OpenFlags(0o100);
    /// Append on each write.
    pub const APPEND: OpenFlags = OpenFlags(0o2000);
    /// Truncate to zero length on open.
    pub const TRUNC: OpenFlags = OpenFlags(0o1000);

    /// Reconstructs flags from their numeric representation (as passed
    /// through a syscall argument register).
    #[must_use]
    pub const fn from_bits(bits: u32) -> Self {
        OpenFlags(bits)
    }

    /// Returns the numeric representation.
    #[must_use]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Returns `true` if the access mode includes reading.
    #[must_use]
    pub const fn wants_read(self) -> bool {
        matches!(self.0 & 0o3, 0 | 2)
    }

    /// Returns `true` if the access mode includes writing.
    #[must_use]
    pub const fn wants_write(self) -> bool {
        let mode = self.0 & 0o3;
        mode == 1 || mode == 2
    }

    /// Returns `true` if `O_CREAT` is set.
    #[must_use]
    pub const fn creates(self) -> bool {
        self.0 & 0o100 != 0
    }

    /// Returns `true` if `O_APPEND` is set.
    #[must_use]
    pub const fn appends(self) -> bool {
        self.0 & 0o2000 != 0
    }

    /// Returns `true` if `O_TRUNC` is set.
    #[must_use]
    pub const fn truncates(self) -> bool {
        self.0 & 0o1000 != 0
    }

    /// Combines two flag sets.
    #[must_use]
    pub const fn union(self, other: OpenFlags) -> OpenFlags {
        OpenFlags(self.0 | other.0)
    }
}

impl fmt::Debug for OpenFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OpenFlags({:#o})", self.0)
    }
}

/// Copy-on-write file contents.
///
/// Campaign cells each clone a provisioned world template, and most cells
/// never write most files. Backing the bytes with an [`Arc`] makes
/// `FileSystem::clone` copy only the directory map; the first write to a
/// still-shared file copies its bytes once (via [`Arc::make_mut`]) and
/// later writes mutate that private buffer in place.
///
/// Equality, ordering into digests, and indexing all go through
/// [`Deref`]`<Target = [u8]>`, so the type behaves like the `Vec<u8>` it
/// replaced everywhere except mutation, which is funneled through
/// [`FileData::clear`] and [`FileData::write_at`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FileData(Arc<Vec<u8>>);

impl FileData {
    /// Wraps a byte buffer as file contents.
    #[must_use]
    pub fn new(bytes: Vec<u8>) -> Self {
        FileData(Arc::new(bytes))
    }

    /// Copies the contents out into an owned buffer.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }

    /// Truncates the file to zero length (`O_TRUNC`), detaching from any
    /// sharing clones first.
    pub fn clear(&mut self) {
        Arc::make_mut(&mut self.0).clear();
    }

    /// Writes `bytes` at byte offset `pos`, zero-filling any gap and
    /// growing the file as needed. Detaches from sharing clones first.
    pub fn write_at(&mut self, pos: usize, bytes: &[u8]) {
        let buf = Arc::make_mut(&mut self.0);
        if buf.len() < pos + bytes.len() {
            buf.resize(pos + bytes.len(), 0);
        }
        buf[pos..pos + bytes.len()].copy_from_slice(bytes);
    }

    /// Returns `true` while the backing buffer is still shared with at
    /// least one other clone (i.e. no write has detached it yet).
    #[must_use]
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.0) > 1
    }
}

impl Deref for FileData {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for FileData {
    fn from(bytes: Vec<u8>) -> Self {
        FileData::new(bytes)
    }
}

impl PartialEq<[u8]> for FileData {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<Vec<u8>> for FileData {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == **other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for FileData {
    fn eq(&self, other: &[u8; N]) -> bool {
        **self == *other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for FileData {
    fn eq(&self, other: &&[u8; N]) -> bool {
        **self == **other
    }
}

impl Serialize for FileData {}
impl Deserialize<'_> for FileData {}

/// A regular file in the simulated filesystem.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inode {
    /// The file contents.
    pub data: FileData,
    /// Owning user.
    pub owner: Uid,
    /// Owning group.
    pub group: Gid,
    /// Permission bits.
    pub mode: FileMode,
}

impl Inode {
    /// Creates a new inode owned by root with public permissions.
    #[must_use]
    pub fn new(data: Vec<u8>) -> Self {
        Inode {
            data: data.into(),
            owner: Uid::ROOT,
            group: Gid::ROOT,
            mode: FileMode::PUBLIC,
        }
    }

    /// Size of the file in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the file is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A flat, in-memory filesystem keyed by absolute path.
///
/// Directories are implicit: any `/`-separated prefix of an existing path is
/// considered a directory. Paths are normalized before lookup so that the
/// classic `..` traversal in URL paths behaves like it would on a real
/// system (the case-study attack intentionally abuses this).
///
/// # Example
///
/// ```
/// use nvariant_simos::{AccessMode, Credentials, FileMode, FileSystem};
/// use nvariant_types::{Gid, Uid};
///
/// let mut fs = FileSystem::new();
/// fs.create_with("/etc/shadow", b"root:x:...".to_vec(), Uid::ROOT, Gid::ROOT, FileMode::PRIVATE);
///
/// let www = Credentials::new(Uid::new(48), Gid::new(48));
/// assert!(fs.check_access("/etc/shadow", &www, AccessMode::Read).is_err());
/// let root = Credentials::root();
/// assert!(fs.check_access("/etc/shadow", &root, AccessMode::Read).is_ok());
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FileSystem {
    files: BTreeMap<String, Inode>,
    /// Paths whose reads deterministically fail with `EIO` — the
    /// fault-injection hook behind the `faulty-fs` world template.
    read_faults: std::collections::BTreeSet<String>,
}

impl FileSystem {
    /// Creates an empty filesystem.
    #[must_use]
    pub fn new() -> Self {
        FileSystem::default()
    }

    /// Normalizes a path: collapses `//`, resolves `.` and `..` components,
    /// and ensures a leading slash.
    #[must_use]
    pub fn normalize(path: &str) -> String {
        let mut parts: Vec<&str> = Vec::new();
        for comp in path.split('/') {
            match comp {
                "" | "." => {}
                ".." => {
                    parts.pop();
                }
                other => parts.push(other),
            }
        }
        let mut out = String::from("/");
        out.push_str(&parts.join("/"));
        out
    }

    /// Creates (or replaces) a file owned by root with public permissions.
    pub fn create(&mut self, path: &str, data: Vec<u8>) {
        self.files.insert(Self::normalize(path), Inode::new(data));
    }

    /// Creates (or replaces) a file with explicit ownership and mode.
    pub fn create_with(
        &mut self,
        path: &str,
        data: Vec<u8>,
        owner: Uid,
        group: Gid,
        mode: FileMode,
    ) {
        self.files.insert(
            Self::normalize(path),
            Inode {
                data: data.into(),
                owner,
                group,
                mode,
            },
        );
    }

    /// Removes a file. Returns the removed inode if it existed.
    pub fn remove(&mut self, path: &str) -> Option<Inode> {
        self.files.remove(&Self::normalize(path))
    }

    /// Returns `true` if a file exists at `path`.
    #[must_use]
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(&Self::normalize(path))
    }

    /// Looks up a file.
    #[must_use]
    pub fn get(&self, path: &str) -> Option<&Inode> {
        self.files.get(&Self::normalize(path))
    }

    /// Looks up a file mutably.
    pub fn get_mut(&mut self, path: &str) -> Option<&mut Inode> {
        self.files.get_mut(&Self::normalize(path))
    }

    /// Iterates over all `(path, inode)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Inode)> {
        self.files.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of files in the filesystem.
    #[must_use]
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Returns `true` if the filesystem contains no files.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Checks whether the process described by `cred` may access `path` with
    /// the requested mode, using standard owner/group/other semantics with a
    /// root override.
    ///
    /// # Errors
    ///
    /// * [`Errno::Enoent`] if the file does not exist.
    /// * [`Errno::Eacces`] if the permission bits deny the access.
    pub fn check_access(
        &self,
        path: &str,
        cred: &Credentials,
        mode: AccessMode,
    ) -> Result<(), Errno> {
        let inode = self.get(path).ok_or(Errno::Enoent)?;
        if cred.euid().is_root() {
            return Ok(());
        }
        let allowed = if cred.euid() == inode.owner {
            match mode {
                AccessMode::Read => inode.mode.allows_owner_read(),
                AccessMode::Write => inode.mode.allows_owner_write(),
            }
        } else if cred.egid() == inode.group {
            match mode {
                AccessMode::Read => inode.mode.allows_group_read(),
                AccessMode::Write => inode.mode.allows_group_write(),
            }
        } else {
            match mode {
                AccessMode::Read => inode.mode.allows_other_read(),
                AccessMode::Write => inode.mode.allows_other_write(),
            }
        };
        if allowed {
            Ok(())
        } else {
            Err(Errno::Eacces)
        }
    }

    /// Marks `path` as read-faulty: every subsequent attempt to open it for
    /// reading fails with [`Errno::Eio`], as if the file sat on a bad disk
    /// sector. The fault is part of the filesystem state, so it survives
    /// cloning into provisioned world templates and is fully deterministic.
    pub fn inject_read_fault(&mut self, path: &str) {
        self.read_faults.insert(Self::normalize(path));
    }

    /// Clears a previously injected read fault. Returns `true` if one was
    /// present.
    pub fn clear_read_fault(&mut self, path: &str) -> bool {
        self.read_faults.remove(&Self::normalize(path))
    }

    /// Returns `true` if reads of `path` have been marked faulty.
    #[must_use]
    pub fn is_read_faulty(&self, path: &str) -> bool {
        self.read_faults.contains(&Self::normalize(path))
    }

    /// The paths currently marked read-faulty, in path order.
    pub fn read_faulty_paths(&self) -> impl Iterator<Item = &str> {
        self.read_faults.iter().map(String::as_str)
    }

    /// Folds the complete filesystem state — every inode's path, contents,
    /// ownership and mode, plus the injected read faults — into `digest`.
    /// `BTreeMap`/`BTreeSet` iteration order makes the digest canonical:
    /// two equal filesystems always fold identically, which is what the
    /// model checker's visited-state pruning relies on.
    pub fn digest_into(&self, digest: &mut Fnv1a) {
        digest.write_usize(self.files.len());
        for (path, inode) in &self.files {
            digest.write_str(path);
            digest.write_usize(inode.data.len());
            digest.write(&inode.data);
            digest.write_u32(inode.owner.as_u32());
            digest.write_u32(inode.group.as_u32());
            digest.write_u32(u32::from(inode.mode.bits()));
        }
        digest.write_usize(self.read_faults.len());
        for path in &self.read_faults {
            digest.write_str(path);
        }
    }

    /// Changes the ownership of a file.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Enoent`] if the file does not exist.
    pub fn chown(&mut self, path: &str, owner: Uid, group: Gid) -> Result<(), Errno> {
        let inode = self.get_mut(path).ok_or(Errno::Enoent)?;
        inode.owner = owner;
        inode.group = group;
        Ok(())
    }

    /// Changes the permission bits of a file.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Enoent`] if the file does not exist.
    pub fn chmod(&mut self, path: &str, mode: FileMode) -> Result<(), Errno> {
        let inode = self.get_mut(path).ok_or(Errno::Enoent)?;
        inode.mode = mode;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn www() -> Credentials {
        Credentials::new(Uid::new(48), Gid::new(48))
    }

    #[test]
    fn normalization() {
        assert_eq!(FileSystem::normalize("/a/b/c"), "/a/b/c");
        assert_eq!(FileSystem::normalize("a/b"), "/a/b");
        assert_eq!(FileSystem::normalize("/a//b/./c"), "/a/b/c");
        assert_eq!(FileSystem::normalize("/a/b/../c"), "/a/c");
        assert_eq!(
            FileSystem::normalize("/var/www/html/../../../etc/shadow"),
            "/etc/shadow"
        );
        assert_eq!(FileSystem::normalize("/../.."), "/");
        assert_eq!(FileSystem::normalize(""), "/");
    }

    #[test]
    fn create_and_read_back() {
        let mut fs = FileSystem::new();
        fs.create("/var/www/html/index.html", b"<html>".to_vec());
        assert!(fs.exists("/var/www/html/index.html"));
        assert!(fs.exists("/var/www//html/./index.html"));
        assert_eq!(fs.get("/var/www/html/index.html").unwrap().data, b"<html>");
        assert_eq!(fs.len(), 1);
    }

    #[test]
    fn permission_checks_owner_group_other() {
        let mut fs = FileSystem::new();
        fs.create_with(
            "/srv/data",
            b"x".to_vec(),
            Uid::new(48),
            Gid::new(100),
            FileMode::new(0o640),
        );
        // Owner may read and write.
        let owner = Credentials::new(Uid::new(48), Gid::new(48));
        assert!(fs
            .check_access("/srv/data", &owner, AccessMode::Read)
            .is_ok());
        assert!(fs
            .check_access("/srv/data", &owner, AccessMode::Write)
            .is_ok());
        // Group member may read, not write.
        let group = Credentials::new(Uid::new(1000), Gid::new(100));
        assert!(fs
            .check_access("/srv/data", &group, AccessMode::Read)
            .is_ok());
        assert_eq!(
            fs.check_access("/srv/data", &group, AccessMode::Write),
            Err(Errno::Eacces)
        );
        // Others get nothing.
        let other = Credentials::new(Uid::new(2000), Gid::new(2000));
        assert_eq!(
            fs.check_access("/srv/data", &other, AccessMode::Read),
            Err(Errno::Eacces)
        );
    }

    #[test]
    fn root_bypasses_permissions() {
        let mut fs = FileSystem::new();
        fs.create_with(
            "/etc/shadow",
            b"secret".to_vec(),
            Uid::ROOT,
            Gid::ROOT,
            FileMode::PRIVATE,
        );
        assert!(fs
            .check_access("/etc/shadow", &Credentials::root(), AccessMode::Read)
            .is_ok());
        assert_eq!(
            fs.check_access("/etc/shadow", &www(), AccessMode::Read),
            Err(Errno::Eacces)
        );
    }

    #[test]
    fn missing_file_is_enoent() {
        let fs = FileSystem::new();
        assert_eq!(
            fs.check_access("/nope", &Credentials::root(), AccessMode::Read),
            Err(Errno::Enoent)
        );
    }

    #[test]
    fn chown_and_chmod() {
        let mut fs = FileSystem::new();
        fs.create("/f", b"".to_vec());
        fs.chown("/f", Uid::new(48), Gid::new(48)).unwrap();
        fs.chmod("/f", FileMode::PRIVATE).unwrap();
        let inode = fs.get("/f").unwrap();
        assert_eq!(inode.owner, Uid::new(48));
        assert_eq!(inode.mode, FileMode::PRIVATE);
        assert_eq!(
            fs.chown("/missing", Uid::ROOT, Gid::ROOT),
            Err(Errno::Enoent)
        );
        assert_eq!(fs.chmod("/missing", FileMode::PUBLIC), Err(Errno::Enoent));
    }

    #[test]
    fn traversal_resolves_before_lookup() {
        let mut fs = FileSystem::new();
        fs.create_with(
            "/etc/shadow",
            b"secret".to_vec(),
            Uid::ROOT,
            Gid::ROOT,
            FileMode::PRIVATE,
        );
        // A docroot-relative traversal reaches the same inode.
        assert!(fs.exists("/var/www/html/../../../etc/shadow"));
    }

    #[test]
    fn open_flags_decoding() {
        let f = OpenFlags::from_bits(
            OpenFlags::WRONLY.bits() | OpenFlags::CREAT.bits() | OpenFlags::APPEND.bits(),
        );
        assert!(f.wants_write());
        assert!(!f.wants_read());
        assert!(f.creates());
        assert!(f.appends());
        assert!(!f.truncates());
    }

    #[test]
    fn injected_read_faults_are_tracked_and_clearable() {
        let mut fs = FileSystem::new();
        fs.create("/var/www/html/news.html", b"<html>".to_vec());
        assert!(!fs.is_read_faulty("/var/www/html/news.html"));
        fs.inject_read_fault("/var/www/html/news.html");
        // Normalized lookups hit the same fault entry.
        assert!(fs.is_read_faulty("/var/www//html/./news.html"));
        assert_eq!(
            fs.read_faulty_paths().collect::<Vec<_>>(),
            vec!["/var/www/html/news.html"]
        );
        // Faults survive cloning (the world-template path).
        assert!(fs.clone().is_read_faulty("/var/www/html/news.html"));
        assert!(fs.clear_read_fault("/var/www/html/news.html"));
        assert!(!fs.clear_read_fault("/var/www/html/news.html"));
        assert!(!fs.is_read_faulty("/var/www/html/news.html"));
    }

    #[test]
    fn cloned_filesystems_share_bytes_until_first_write() {
        let mut template = FileSystem::new();
        template.create("/var/log/httpd.log", b"seed\n".to_vec());
        let mut cell = template.clone();
        assert!(cell.get("/var/log/httpd.log").unwrap().data.is_shared());

        // Writing through one clone detaches it; the other is untouched.
        let inode = cell.get_mut("/var/log/httpd.log").unwrap();
        let pos = inode.data.len();
        inode.data.write_at(pos, b"GET /\n");
        assert_eq!(
            cell.get("/var/log/httpd.log").unwrap().data,
            b"seed\nGET /\n"
        );
        assert_eq!(template.get("/var/log/httpd.log").unwrap().data, b"seed\n");
        assert!(!cell.get("/var/log/httpd.log").unwrap().data.is_shared());

        // Truncation detaches too, and gap writes zero-fill.
        let inode = template.get_mut("/var/log/httpd.log").unwrap();
        inode.data.clear();
        inode.data.write_at(2, b"xy");
        assert_eq!(template.get("/var/log/httpd.log").unwrap().data, b"\0\0xy");
        assert_eq!(
            cell.get("/var/log/httpd.log").unwrap().data,
            b"seed\nGET /\n"
        );
    }

    #[test]
    fn remove_files() {
        let mut fs = FileSystem::new();
        fs.create("/f", b"x".to_vec());
        assert!(fs.remove("/f").is_some());
        assert!(fs.remove("/f").is_none());
        assert!(fs.is_empty());
    }
}
