//! The reference kernel: processes, file descriptors, and the typed system
//! call operations shared by the single-process runner and the N-variant
//! monitor.
//!
//! The monitor (in `nvariant-monitor`) performs the *N-variant specific*
//! work — synchronization, canonicalization, equivalence checks, unshared
//! files — and then invokes the operations here exactly once, which is how
//! the paper's "wrap input system calls so the actual input operation is
//! only performed once" behaviour is realized.

use crate::cred::Credentials;
use crate::fs::{AccessMode, FileMode, FileSystem, OpenFlags};
use crate::net::SimNetwork;
use crate::passwd::PasswdDb;
use nvariant_types::{ConnId, Errno, Fd, Fnv1a, Gid, Pid, Port, Uid};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Maximum number of open descriptors per process.
pub const MAX_FDS: usize = 64;

/// Access to a variant process' memory, implemented by the VM.
///
/// The kernel needs this to copy data to and from user space (`read`,
/// `write`, path strings for `open`). Keeping it a trait lets `nvariant-simos`
/// stay independent of the VM crate.
pub trait ProcessMem {
    /// Reads `len` bytes starting at virtual address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Efault`] if any byte of the range is unmapped.
    fn read_mem(&self, addr: u32, len: usize) -> Result<Vec<u8>, Errno>;

    /// Writes `data` starting at virtual address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Efault`] if any byte of the range is unmapped.
    fn write_mem(&mut self, addr: u32, data: &[u8]) -> Result<(), Errno>;

    /// Reads a NUL-terminated string of at most `max` bytes starting at
    /// `addr` (the terminator is not included in the result).
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Efault`] if the string runs off mapped memory before
    /// a NUL terminator is found within `max` bytes.
    fn read_cstr(&self, addr: u32, max: usize) -> Result<Vec<u8>, Errno> {
        let mut out = Vec::new();
        for i in 0..max {
            let byte = self.read_mem(addr.wrapping_add(i as u32), 1)?;
            if byte[0] == 0 {
                return Ok(out);
            }
            out.push(byte[0]);
        }
        Err(Errno::Efault)
    }
}

/// What a file descriptor refers to.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FdEntry {
    /// The process console (stdin/stdout/stderr).
    Console,
    /// An open regular file with a cursor.
    File {
        /// Normalized path of the file.
        path: String,
        /// Current read/write offset.
        offset: usize,
        /// Flags the file was opened with.
        flags: OpenFlags,
    },
    /// An unbound or bound (but unconnected) TCP socket.
    Socket {
        /// Port the socket is bound to, if any.
        bound: Option<Port>,
        /// Whether `listen` has been called.
        listening: bool,
    },
    /// An accepted client connection.
    Conn(ConnId),
}

/// Per-process kernel state.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Proc {
    cred: Credentials,
    fds: Vec<Option<FdEntry>>,
    console: Vec<u8>,
    exited: Option<i32>,
}

impl Proc {
    fn new(cred: Credentials) -> Self {
        let mut fds = vec![None; MAX_FDS];
        fds[0] = Some(FdEntry::Console);
        fds[1] = Some(FdEntry::Console);
        fds[2] = Some(FdEntry::Console);
        Proc {
            cred,
            fds,
            console: Vec::new(),
            exited: None,
        }
    }

    fn alloc_fd(&mut self, entry: FdEntry) -> Result<Fd, Errno> {
        for (i, slot) in self.fds.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(entry);
                return Ok(Fd::new(i as u32));
            }
        }
        Err(Errno::Emfile)
    }

    fn fd(&self, fd: Fd) -> Result<&FdEntry, Errno> {
        self.fds
            .get(fd.as_usize())
            .and_then(Option::as_ref)
            .ok_or(Errno::Ebadf)
    }

    fn fd_mut(&mut self, fd: Fd) -> Result<&mut FdEntry, Errno> {
        self.fds
            .get_mut(fd.as_usize())
            .and_then(Option::as_mut)
            .ok_or(Errno::Ebadf)
    }
}

/// The simulated operating system kernel: filesystem, network, account
/// database, and a process table with credentials and descriptor tables.
///
/// # Example
///
/// ```
/// use nvariant_simos::{OsKernel, OpenFlags};
/// use nvariant_types::Uid;
///
/// let mut kernel = OsKernel::new();
/// kernel.fs_mut().create("/greeting.txt", b"hello".to_vec());
/// let pid = kernel.spawn_process(Uid::new(1000));
/// let fd = kernel.open(pid, "/greeting.txt", OpenFlags::RDONLY)?;
/// assert_eq!(kernel.read(pid, fd, 16)?, b"hello");
/// # Ok::<(), nvariant_types::Errno>(())
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OsKernel {
    fs: FileSystem,
    net: SimNetwork,
    passwd: PasswdDb,
    procs: BTreeMap<u32, Proc>,
    next_pid: u32,
    sim_seconds: u64,
}

impl OsKernel {
    /// Creates an empty kernel with no processes or files.
    #[must_use]
    pub fn new() -> Self {
        OsKernel {
            next_pid: 1,
            ..OsKernel::default()
        }
    }

    // ----- world accessors -------------------------------------------------

    /// Shared view of the filesystem.
    #[must_use]
    pub fn fs(&self) -> &FileSystem {
        &self.fs
    }

    /// Mutable view of the filesystem (used by world setup and tests).
    pub fn fs_mut(&mut self) -> &mut FileSystem {
        &mut self.fs
    }

    /// Shared view of the network.
    #[must_use]
    pub fn net(&self) -> &SimNetwork {
        &self.net
    }

    /// Mutable view of the network (used by workload generators).
    pub fn net_mut(&mut self) -> &mut SimNetwork {
        &mut self.net
    }

    /// The account database.
    #[must_use]
    pub fn passwd(&self) -> &PasswdDb {
        &self.passwd
    }

    /// Mutable account database (used by world setup).
    pub fn passwd_mut(&mut self) -> &mut PasswdDb {
        &mut self.passwd
    }

    // ----- process management ----------------------------------------------

    /// Creates a new process whose real, effective and saved UID are `uid`
    /// (the GID mirrors the UID, as is conventional for service accounts).
    pub fn spawn_process(&mut self, uid: Uid) -> Pid {
        self.spawn_process_with(Credentials::new(uid, Gid::new(uid.as_u32())))
    }

    /// Creates a new process with explicit credentials.
    pub fn spawn_process_with(&mut self, cred: Credentials) -> Pid {
        let pid = Pid::new(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(pid.as_u32(), Proc::new(cred));
        pid
    }

    fn proc_ref(&self, pid: Pid) -> Result<&Proc, Errno> {
        self.procs.get(&pid.as_u32()).ok_or(Errno::Einval)
    }

    fn proc_mut(&mut self, pid: Pid) -> Result<&mut Proc, Errno> {
        self.procs.get_mut(&pid.as_u32()).ok_or(Errno::Einval)
    }

    /// Returns the credentials of a process.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Einval`] if the process does not exist.
    pub fn credentials(&self, pid: Pid) -> Result<Credentials, Errno> {
        Ok(self.proc_ref(pid)?.cred)
    }

    /// Marks a process as exited with the given status.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Einval`] if the process does not exist.
    pub fn exit(&mut self, pid: Pid, status: i32) -> Result<(), Errno> {
        self.proc_mut(pid)?.exited = Some(status);
        Ok(())
    }

    /// Returns the exit status of a process, if it has exited.
    #[must_use]
    pub fn exit_status(&self, pid: Pid) -> Option<i32> {
        self.procs.get(&pid.as_u32()).and_then(|p| p.exited)
    }

    /// Returns everything the process has written to stdout/stderr.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Einval`] if the process does not exist.
    pub fn console_output(&self, pid: Pid) -> Result<&[u8], Errno> {
        Ok(&self.proc_ref(pid)?.console)
    }

    // ----- identity syscalls -----------------------------------------------

    /// `getuid(2)`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Einval`] if the process does not exist.
    pub fn getuid(&self, pid: Pid) -> Result<Uid, Errno> {
        Ok(self.proc_ref(pid)?.cred.ruid())
    }

    /// `geteuid(2)`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Einval`] if the process does not exist.
    pub fn geteuid(&self, pid: Pid) -> Result<Uid, Errno> {
        Ok(self.proc_ref(pid)?.cred.euid())
    }

    /// `getgid(2)`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Einval`] if the process does not exist.
    pub fn getgid(&self, pid: Pid) -> Result<Gid, Errno> {
        Ok(self.proc_ref(pid)?.cred.rgid())
    }

    /// `setuid(2)`.
    ///
    /// # Errors
    ///
    /// Propagates [`Errno::Eperm`] from the credential rules, or
    /// [`Errno::Einval`] for an unknown process.
    pub fn setuid(&mut self, pid: Pid, uid: Uid) -> Result<(), Errno> {
        self.proc_mut(pid)?.cred.setuid(uid)
    }

    /// `seteuid(2)`.
    ///
    /// # Errors
    ///
    /// Propagates [`Errno::Eperm`] from the credential rules, or
    /// [`Errno::Einval`] for an unknown process.
    pub fn seteuid(&mut self, pid: Pid, uid: Uid) -> Result<(), Errno> {
        self.proc_mut(pid)?.cred.seteuid(uid)
    }

    /// `setgid(2)`.
    ///
    /// # Errors
    ///
    /// Propagates [`Errno::Eperm`] from the credential rules, or
    /// [`Errno::Einval`] for an unknown process.
    pub fn setgid(&mut self, pid: Pid, gid: Gid) -> Result<(), Errno> {
        self.proc_mut(pid)?.cred.setgid(gid)
    }

    /// `setreuid(2)`; `None` leaves the corresponding ID unchanged.
    ///
    /// # Errors
    ///
    /// Propagates [`Errno::Eperm`] from the credential rules, or
    /// [`Errno::Einval`] for an unknown process.
    pub fn setreuid(
        &mut self,
        pid: Pid,
        ruid: Option<Uid>,
        euid: Option<Uid>,
    ) -> Result<(), Errno> {
        self.proc_mut(pid)?.cred.setreuid(ruid, euid)
    }

    // ----- filesystem syscalls ----------------------------------------------

    /// `open(2)`: permission-checks `path` against the caller's effective
    /// UID and returns a new descriptor.
    ///
    /// # Errors
    ///
    /// * [`Errno::Enoent`] if the file is missing and `O_CREAT` is not set.
    /// * [`Errno::Eacces`] if the permission bits deny the requested access.
    /// * [`Errno::Eio`] if the file has an injected read fault
    ///   ([`FileSystem::inject_read_fault`]) and the flags request reading.
    /// * [`Errno::Emfile`] if the descriptor table is full.
    pub fn open(&mut self, pid: Pid, path: &str, flags: OpenFlags) -> Result<Fd, Errno> {
        let cred = self.proc_ref(pid)?.cred;
        let normalized = FileSystem::normalize(path);
        if self.fs.exists(&normalized) {
            if flags.wants_read() {
                self.fs.check_access(&normalized, &cred, AccessMode::Read)?;
                if self.fs.is_read_faulty(&normalized) {
                    return Err(Errno::Eio);
                }
            }
            if flags.wants_write() {
                self.fs
                    .check_access(&normalized, &cred, AccessMode::Write)?;
            }
            if flags.truncates() && flags.wants_write() {
                if let Some(inode) = self.fs.get_mut(&normalized) {
                    inode.data.clear();
                }
            }
        } else if flags.creates() {
            if flags.wants_write() {
                self.fs.create_with(
                    &normalized,
                    Vec::new(),
                    cred.euid(),
                    cred.egid(),
                    FileMode::new(0o644),
                );
            } else {
                return Err(Errno::Eacces);
            }
        } else {
            return Err(Errno::Enoent);
        }
        let offset = if flags.appends() {
            self.fs.get(&normalized).map_or(0, |i| i.data.len())
        } else {
            0
        };
        self.proc_mut(pid)?.alloc_fd(FdEntry::File {
            path: normalized,
            offset,
            flags,
        })
    }

    /// `read(2)` / `recv(2)` depending on what the descriptor refers to.
    ///
    /// # Errors
    ///
    /// * [`Errno::Ebadf`] if the descriptor is invalid.
    /// * [`Errno::Eacces`] if the file was not opened for reading.
    pub fn read(&mut self, pid: Pid, fd: Fd, max: usize) -> Result<Vec<u8>, Errno> {
        let entry = self.proc_ref(pid)?.fd(fd)?.clone();
        match entry {
            FdEntry::Console => Ok(Vec::new()),
            FdEntry::File {
                path,
                offset,
                flags,
            } => {
                if !flags.wants_read() {
                    return Err(Errno::Eacces);
                }
                let inode = self.fs.get(&path).ok_or(Errno::Enoent)?;
                let start = offset.min(inode.data.len());
                let end = (start + max).min(inode.data.len());
                let data = inode.data[start..end].to_vec();
                if let FdEntry::File { offset, .. } = self.proc_mut(pid)?.fd_mut(fd)? {
                    *offset = end;
                }
                Ok(data)
            }
            FdEntry::Conn(conn) => self.net.recv(conn, max),
            FdEntry::Socket { .. } => Err(Errno::Einval),
        }
    }

    /// `write(2)` / `send(2)` depending on what the descriptor refers to.
    ///
    /// # Errors
    ///
    /// * [`Errno::Ebadf`] if the descriptor is invalid.
    /// * [`Errno::Eacces`] if the file was not opened for writing.
    pub fn write(&mut self, pid: Pid, fd: Fd, data: &[u8]) -> Result<usize, Errno> {
        let entry = self.proc_ref(pid)?.fd(fd)?.clone();
        match entry {
            FdEntry::Console => {
                self.proc_mut(pid)?.console.extend_from_slice(data);
                Ok(data.len())
            }
            FdEntry::File {
                path,
                offset,
                flags,
            } => {
                if !flags.wants_write() {
                    return Err(Errno::Eacces);
                }
                let inode = self.fs.get_mut(&path).ok_or(Errno::Enoent)?;
                let pos = if flags.appends() {
                    inode.data.len()
                } else {
                    offset
                };
                inode.data.write_at(pos, data);
                let new_offset = pos + data.len();
                if let FdEntry::File { offset, .. } = self.proc_mut(pid)?.fd_mut(fd)? {
                    *offset = new_offset;
                }
                Ok(data.len())
            }
            FdEntry::Conn(conn) => self.net.send(conn, data),
            FdEntry::Socket { .. } => Err(Errno::Einval),
        }
    }

    /// `close(2)`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Ebadf`] if the descriptor is invalid.
    pub fn close(&mut self, pid: Pid, fd: Fd) -> Result<(), Errno> {
        let entry = self.proc_ref(pid)?.fd(fd)?.clone();
        if let FdEntry::Conn(conn) = entry {
            // Ignore errors from double closes of the underlying connection.
            let _ = self.net.close(conn);
        }
        let proc = self.proc_mut(pid)?;
        proc.fds[fd.as_usize()] = None;
        Ok(())
    }

    /// Returns the path behind a file descriptor, if it is a regular file.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Ebadf`] if the descriptor is invalid.
    pub fn fd_path(&self, pid: Pid, fd: Fd) -> Result<Option<String>, Errno> {
        match self.proc_ref(pid)?.fd(fd)? {
            FdEntry::File { path, .. } => Ok(Some(path.clone())),
            _ => Ok(None),
        }
    }

    // ----- network syscalls --------------------------------------------------

    /// `socket(2)`: allocates an unbound TCP socket.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Emfile`] if the descriptor table is full.
    pub fn socket(&mut self, pid: Pid) -> Result<Fd, Errno> {
        self.proc_mut(pid)?.alloc_fd(FdEntry::Socket {
            bound: None,
            listening: false,
        })
    }

    /// `bind(2)`: binds a socket to a port. Binding a privileged port
    /// (< 1024) requires an effective UID of root — this is the check the
    /// Apache-style server must start as root to pass.
    ///
    /// # Errors
    ///
    /// * [`Errno::Ebadf`] / [`Errno::Enotsock`] for bad descriptors.
    /// * [`Errno::Eacces`] if the port is privileged and the caller is not.
    /// * [`Errno::Eaddrinuse`] if the port is taken.
    pub fn bind(&mut self, pid: Pid, fd: Fd, port: Port) -> Result<(), Errno> {
        let cred = self.proc_ref(pid)?.cred;
        match self.proc_ref(pid)?.fd(fd)? {
            FdEntry::Socket { .. } => {}
            _ => return Err(Errno::Enotsock),
        }
        if port.is_privileged() && !cred.euid().is_root() {
            return Err(Errno::Eacces);
        }
        self.net.bind(port)?;
        if let FdEntry::Socket { bound, .. } = self.proc_mut(pid)?.fd_mut(fd)? {
            *bound = Some(port);
        }
        Ok(())
    }

    /// `listen(2)`.
    ///
    /// # Errors
    ///
    /// * [`Errno::Enotsock`] if the descriptor is not a socket.
    /// * [`Errno::Einval`] if the socket is not bound.
    pub fn listen(&mut self, pid: Pid, fd: Fd) -> Result<(), Errno> {
        let port = match self.proc_ref(pid)?.fd(fd)? {
            FdEntry::Socket { bound: Some(p), .. } => *p,
            FdEntry::Socket { bound: None, .. } => return Err(Errno::Einval),
            _ => return Err(Errno::Enotsock),
        };
        self.net.listen(port)?;
        if let FdEntry::Socket { listening, .. } = self.proc_mut(pid)?.fd_mut(fd)? {
            *listening = true;
        }
        Ok(())
    }

    /// `accept(2)`: dequeues a pending connection and returns a new
    /// descriptor for it.
    ///
    /// # Errors
    ///
    /// * [`Errno::Enotsock`] / [`Errno::Einval`] for bad descriptors.
    /// * [`Errno::Eagain`] if no connection is pending (used by the case
    ///   study as its shutdown signal).
    pub fn accept(&mut self, pid: Pid, fd: Fd) -> Result<Fd, Errno> {
        let port = match self.proc_ref(pid)?.fd(fd)? {
            FdEntry::Socket {
                bound: Some(p),
                listening: true,
            } => *p,
            FdEntry::Socket { .. } => return Err(Errno::Einval),
            _ => return Err(Errno::Enotsock),
        };
        let conn = self.net.accept(port)?;
        self.proc_mut(pid)?.alloc_fd(FdEntry::Conn(conn))
    }

    /// `recv(2)`; equivalent to [`OsKernel::read`] on a connection fd.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Enotsock`] if the descriptor is not a connection.
    pub fn recv(&mut self, pid: Pid, fd: Fd, max: usize) -> Result<Vec<u8>, Errno> {
        match self.proc_ref(pid)?.fd(fd)? {
            FdEntry::Conn(conn) => self.net.recv(*conn, max),
            _ => Err(Errno::Enotsock),
        }
    }

    /// `send(2)`; equivalent to [`OsKernel::write`] on a connection fd.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Enotsock`] if the descriptor is not a connection.
    pub fn send(&mut self, pid: Pid, fd: Fd, data: &[u8]) -> Result<usize, Errno> {
        match self.proc_ref(pid)?.fd(fd)? {
            FdEntry::Conn(conn) => self.net.send(*conn, data),
            _ => Err(Errno::Enotsock),
        }
    }

    // ----- state digest -------------------------------------------------------

    /// Folds the complete kernel state — clock, account database,
    /// filesystem, network, and every process' credentials, descriptor
    /// table, console buffer and exit status — into `digest`, in canonical
    /// order. Two equal kernels always fold identically, which is what the
    /// model checker's visited-state pruning relies on.
    pub fn digest_into(&self, digest: &mut Fnv1a) {
        digest.write_u64(self.sim_seconds);
        self.passwd.digest_into(digest);
        self.fs.digest_into(digest);
        self.net.digest_into(digest);
        digest.write_u32(self.next_pid);
        digest.write_usize(self.procs.len());
        for (pid, proc) in &self.procs {
            digest.write_u32(*pid);
            for id in [
                proc.cred.ruid().as_u32(),
                proc.cred.euid().as_u32(),
                proc.cred.suid().as_u32(),
                proc.cred.rgid().as_u32(),
                proc.cred.egid().as_u32(),
                proc.cred.sgid().as_u32(),
            ] {
                digest.write_u32(id);
            }
            digest.write_usize(proc.fds.len());
            for entry in &proc.fds {
                match entry {
                    None => digest.write_u8(0),
                    Some(FdEntry::Console) => digest.write_u8(1),
                    Some(FdEntry::File {
                        path,
                        offset,
                        flags,
                    }) => {
                        digest.write_u8(2);
                        digest.write_str(path);
                        digest.write_usize(*offset);
                        digest.write_u32(flags.bits());
                    }
                    Some(FdEntry::Socket { bound, listening }) => {
                        digest.write_u8(3);
                        match bound {
                            None => digest.write_u8(0),
                            Some(port) => {
                                digest.write_u8(1);
                                digest.write_u32(u32::from(port.as_u16()));
                            }
                        }
                        digest.write_u8(u8::from(*listening));
                    }
                    Some(FdEntry::Conn(conn)) => {
                        digest.write_u8(4);
                        digest.write_u64(conn.as_u64());
                    }
                }
            }
            digest.write_usize(proc.console.len());
            digest.write(&proc.console);
            match proc.exited {
                None => digest.write_u8(0),
                Some(status) => {
                    digest.write_u8(1);
                    digest.write(&status.to_le_bytes());
                }
            }
        }
    }

    // ----- clock --------------------------------------------------------------

    /// `time(2)`: seconds since simulation start.
    #[must_use]
    pub fn time(&self) -> u64 {
        self.sim_seconds
    }

    /// Advances the simulated wall clock (driven by the workload harness).
    pub fn advance_time(&mut self, seconds: u64) {
        self.sim_seconds += seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_with_file(path: &str, data: &[u8], mode: FileMode, owner: Uid) -> OsKernel {
        let mut k = OsKernel::new();
        k.fs_mut()
            .create_with(path, data.to_vec(), owner, Gid::new(owner.as_u32()), mode);
        k
    }

    #[test]
    fn spawn_and_identity_calls() {
        let mut k = OsKernel::new();
        let pid = k.spawn_process(Uid::new(48));
        assert_eq!(k.getuid(pid).unwrap(), Uid::new(48));
        assert_eq!(k.geteuid(pid).unwrap(), Uid::new(48));
        assert_eq!(k.getgid(pid).unwrap(), Gid::new(48));
    }

    #[test]
    fn open_read_write_round_trip() {
        let mut k = kernel_with_file("/data.txt", b"hello world", FileMode::PUBLIC, Uid::ROOT);
        let pid = k.spawn_process(Uid::new(1000));
        let fd = k.open(pid, "/data.txt", OpenFlags::RDONLY).unwrap();
        assert_eq!(k.read(pid, fd, 5).unwrap(), b"hello");
        assert_eq!(k.read(pid, fd, 100).unwrap(), b" world");
        assert_eq!(k.read(pid, fd, 100).unwrap(), b"");
        // Not opened for writing.
        assert_eq!(k.write(pid, fd, b"x"), Err(Errno::Eacces));
        k.close(pid, fd).unwrap();
        assert_eq!(k.read(pid, fd, 1), Err(Errno::Ebadf));
    }

    #[test]
    fn open_respects_permissions() {
        let mut k = kernel_with_file("/etc/shadow", b"secret", FileMode::PRIVATE, Uid::ROOT);
        let www = k.spawn_process(Uid::new(48));
        assert_eq!(
            k.open(www, "/etc/shadow", OpenFlags::RDONLY),
            Err(Errno::Eacces)
        );
        let root = k.spawn_process(Uid::ROOT);
        assert!(k.open(root, "/etc/shadow", OpenFlags::RDONLY).is_ok());
    }

    #[test]
    fn open_reports_injected_read_faults_as_eio() {
        let mut k = kernel_with_file(
            "/var/www/html/news.html",
            b"<html>",
            FileMode::PUBLIC,
            Uid::ROOT,
        );
        let pid = k.spawn_process(Uid::ROOT);
        assert!(k
            .open(pid, "/var/www/html/news.html", OpenFlags::RDONLY)
            .is_ok());
        k.fs_mut().inject_read_fault("/var/www/html/news.html");
        assert_eq!(
            k.open(pid, "/var/www/html/news.html", OpenFlags::RDONLY),
            Err(Errno::Eio)
        );
        // Even root hits the bad sector: faults are not permission checks.
        assert_eq!(
            k.open(pid, "/var/www/html/../html/news.html", OpenFlags::RDONLY),
            Err(Errno::Eio)
        );
        k.fs_mut().clear_read_fault("/var/www/html/news.html");
        assert!(k
            .open(pid, "/var/www/html/news.html", OpenFlags::RDONLY)
            .is_ok());
    }

    #[test]
    fn privilege_drop_changes_access_decisions() {
        let mut k = kernel_with_file("/etc/shadow", b"secret", FileMode::PRIVATE, Uid::ROOT);
        let pid = k.spawn_process(Uid::ROOT);
        assert!(k.open(pid, "/etc/shadow", OpenFlags::RDONLY).is_ok());
        k.setuid(pid, Uid::new(48)).unwrap();
        assert_eq!(
            k.open(pid, "/etc/shadow", OpenFlags::RDONLY),
            Err(Errno::Eacces)
        );
        // And the drop is irreversible.
        assert_eq!(k.seteuid(pid, Uid::ROOT), Err(Errno::Eperm));
    }

    #[test]
    fn seteuid_toggle_preserves_saved_root() {
        let mut k = kernel_with_file("/etc/shadow", b"secret", FileMode::PRIVATE, Uid::ROOT);
        let pid = k.spawn_process(Uid::ROOT);
        k.seteuid(pid, Uid::new(48)).unwrap();
        assert_eq!(
            k.open(pid, "/etc/shadow", OpenFlags::RDONLY),
            Err(Errno::Eacces)
        );
        k.seteuid(pid, Uid::ROOT).unwrap();
        assert!(k.open(pid, "/etc/shadow", OpenFlags::RDONLY).is_ok());
    }

    #[test]
    fn create_append_and_truncate() {
        let mut k = OsKernel::new();
        let pid = k.spawn_process(Uid::new(48));
        let flags = OpenFlags::WRONLY.union(OpenFlags::CREAT);
        let fd = k.open(pid, "/tmp/log", flags).unwrap();
        k.write(pid, fd, b"line1\n").unwrap();
        k.close(pid, fd).unwrap();

        let fd = k
            .open(pid, "/tmp/log", OpenFlags::WRONLY.union(OpenFlags::APPEND))
            .unwrap();
        k.write(pid, fd, b"line2\n").unwrap();
        k.close(pid, fd).unwrap();
        assert_eq!(k.fs().get("/tmp/log").unwrap().data, b"line1\nline2\n");

        let fd = k
            .open(pid, "/tmp/log", OpenFlags::WRONLY.union(OpenFlags::TRUNC))
            .unwrap();
        k.write(pid, fd, b"fresh").unwrap();
        k.close(pid, fd).unwrap();
        assert_eq!(k.fs().get("/tmp/log").unwrap().data, b"fresh");
        // New file is owned by the creator.
        assert_eq!(k.fs().get("/tmp/log").unwrap().owner, Uid::new(48));
    }

    #[test]
    fn missing_file_without_creat_is_enoent() {
        let mut k = OsKernel::new();
        let pid = k.spawn_process(Uid::ROOT);
        assert_eq!(
            k.open(pid, "/missing", OpenFlags::RDONLY),
            Err(Errno::Enoent)
        );
    }

    #[test]
    fn console_collects_stdout() {
        let mut k = OsKernel::new();
        let pid = k.spawn_process(Uid::new(1000));
        k.write(pid, Fd::STDOUT, b"hello ").unwrap();
        k.write(pid, Fd::STDERR, b"world").unwrap();
        assert_eq!(k.console_output(pid).unwrap(), b"hello world");
        assert_eq!(k.read(pid, Fd::STDIN, 10).unwrap(), b"");
    }

    #[test]
    fn socket_lifecycle_and_privileged_bind() {
        let mut k = OsKernel::new();
        let root = k.spawn_process(Uid::ROOT);
        let sock = k.socket(root).unwrap();
        assert_eq!(k.listen(root, sock), Err(Errno::Einval));
        k.bind(root, sock, Port::HTTP).unwrap();
        k.listen(root, sock).unwrap();

        // Unprivileged process cannot bind a low port.
        let www = k.spawn_process(Uid::new(48));
        let sock2 = k.socket(www).unwrap();
        assert_eq!(k.bind(www, sock2, Port::new(443)), Err(Errno::Eacces));
        assert!(k.bind(www, sock2, Port::new(8080)).is_ok());

        // Serve one request end to end.
        k.net_mut()
            .enqueue_request(Port::HTTP, b"GET / HTTP/1.0\r\n\r\n".to_vec())
            .unwrap();
        let conn = k.accept(root, sock).unwrap();
        let req = k.recv(root, conn, 1024).unwrap();
        assert!(req.starts_with(b"GET /"));
        k.send(root, conn, b"HTTP/1.0 200 OK\r\n\r\nhi").unwrap();
        k.close(root, conn).unwrap();
        assert_eq!(k.net().total_response_bytes(), 21);

        // Backlog drained: next accept would block.
        assert_eq!(k.accept(root, sock), Err(Errno::Eagain));
    }

    #[test]
    fn accept_on_non_listening_socket_fails() {
        let mut k = OsKernel::new();
        let pid = k.spawn_process(Uid::ROOT);
        let sock = k.socket(pid).unwrap();
        assert_eq!(k.accept(pid, sock), Err(Errno::Einval));
        let fd_file = {
            k.fs_mut().create("/f", vec![]);
            k.open(pid, "/f", OpenFlags::RDONLY).unwrap()
        };
        assert_eq!(k.accept(pid, fd_file), Err(Errno::Enotsock));
        assert_eq!(k.recv(pid, fd_file, 1), Err(Errno::Enotsock));
        assert_eq!(k.send(pid, fd_file, b"x"), Err(Errno::Enotsock));
    }

    #[test]
    fn exit_status_tracking() {
        let mut k = OsKernel::new();
        let pid = k.spawn_process(Uid::ROOT);
        assert_eq!(k.exit_status(pid), None);
        k.exit(pid, 3).unwrap();
        assert_eq!(k.exit_status(pid), Some(3));
    }

    #[test]
    fn time_advances_only_when_driven() {
        let mut k = OsKernel::new();
        assert_eq!(k.time(), 0);
        k.advance_time(5);
        assert_eq!(k.time(), 5);
    }

    #[test]
    fn fd_exhaustion() {
        let mut k = OsKernel::new();
        k.fs_mut().create("/f", vec![]);
        let pid = k.spawn_process(Uid::ROOT);
        let mut opened = Vec::new();
        loop {
            match k.open(pid, "/f", OpenFlags::RDONLY) {
                Ok(fd) => opened.push(fd),
                Err(e) => {
                    assert_eq!(e, Errno::Emfile);
                    break;
                }
            }
        }
        assert_eq!(opened.len(), MAX_FDS - 3);
    }

    #[test]
    fn fd_path_reports_backing_file() {
        let mut k = OsKernel::new();
        k.fs_mut()
            .create("/etc/passwd", b"root:x:0:0:::\n".to_vec());
        let pid = k.spawn_process(Uid::ROOT);
        let fd = k.open(pid, "/etc/passwd", OpenFlags::RDONLY).unwrap();
        assert_eq!(k.fd_path(pid, fd).unwrap().as_deref(), Some("/etc/passwd"));
        assert_eq!(k.fd_path(pid, Fd::STDOUT).unwrap(), None);
    }
}
