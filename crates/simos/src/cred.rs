//! Process credentials and the POSIX privilege-change rules.
//!
//! The UID data variation exists to protect exactly the values stored here:
//! a server that calls `setuid`/`seteuid` with a corrupted UID keeps (or
//! regains) root privileges, which is the non-control-data attack of
//! Chen et al. that the paper's case study defends against.

use nvariant_types::{Errno, Gid, Uid};
use serde::{Deserialize, Serialize};

/// The real, effective and saved user and group identifiers of a process.
///
/// The transition rules implemented by [`Credentials::setuid`],
/// [`Credentials::seteuid`] and friends follow the POSIX/Linux model the
/// paper's Apache case study relies on:
///
/// * a process whose *effective* UID is root may change its IDs arbitrarily;
/// * an unprivileged process may only switch between its real, effective and
///   saved IDs.
///
/// # Example
///
/// ```
/// use nvariant_simos::Credentials;
/// use nvariant_types::Uid;
///
/// let mut cred = Credentials::root();
/// // Apache-style privilege drop: from root down to the configured user.
/// cred.setuid(Uid::new(48)).unwrap();
/// assert_eq!(cred.euid(), Uid::new(48));
/// // A full setuid() as root clears the saved UID, so re-escalation fails.
/// assert!(cred.seteuid(Uid::ROOT).is_err());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Credentials {
    ruid: Uid,
    euid: Uid,
    suid: Uid,
    rgid: Gid,
    egid: Gid,
    sgid: Gid,
}

impl Credentials {
    /// Creates credentials for a process running as root.
    #[must_use]
    pub fn root() -> Self {
        Credentials::new(Uid::ROOT, Gid::ROOT)
    }

    /// Creates credentials with all three UIDs (and GIDs) set to the given
    /// identities.
    #[must_use]
    pub fn new(uid: Uid, gid: Gid) -> Self {
        Credentials {
            ruid: uid,
            euid: uid,
            suid: uid,
            rgid: gid,
            egid: gid,
            sgid: gid,
        }
    }

    /// The real user ID.
    #[must_use]
    pub fn ruid(&self) -> Uid {
        self.ruid
    }

    /// The effective user ID (the one used for permission checks).
    #[must_use]
    pub fn euid(&self) -> Uid {
        self.euid
    }

    /// The saved user ID.
    #[must_use]
    pub fn suid(&self) -> Uid {
        self.suid
    }

    /// The real group ID.
    #[must_use]
    pub fn rgid(&self) -> Gid {
        self.rgid
    }

    /// The effective group ID.
    #[must_use]
    pub fn egid(&self) -> Gid {
        self.egid
    }

    /// The saved group ID.
    #[must_use]
    pub fn sgid(&self) -> Gid {
        self.sgid
    }

    /// Returns `true` if the process currently has superuser privileges.
    #[must_use]
    pub fn is_privileged(&self) -> bool {
        self.euid.is_root()
    }

    /// POSIX `setuid(2)`.
    ///
    /// If the effective UID is root, all three UIDs are set to `uid`
    /// (an irreversible privilege drop). Otherwise the call succeeds only if
    /// `uid` equals the real or saved UID, and sets just the effective UID.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Eperm`] if the process is unprivileged and `uid` is
    /// neither its real nor its saved UID.
    pub fn setuid(&mut self, uid: Uid) -> Result<(), Errno> {
        if self.euid.is_root() {
            self.ruid = uid;
            self.euid = uid;
            self.suid = uid;
            Ok(())
        } else if uid == self.ruid || uid == self.suid {
            self.euid = uid;
            Ok(())
        } else {
            Err(Errno::Eperm)
        }
    }

    /// POSIX `seteuid(2)`.
    ///
    /// A privileged process may set the effective UID to any value; an
    /// unprivileged process only to its real or saved UID. Unlike
    /// [`Credentials::setuid`], the saved UID is left unchanged, which is
    /// what allows servers to toggle privileges back and forth — and what
    /// makes a corrupted cached UID so valuable to an attacker.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Eperm`] if the process is unprivileged and `uid` is
    /// neither its real nor its saved UID.
    pub fn seteuid(&mut self, uid: Uid) -> Result<(), Errno> {
        if self.euid.is_root() || uid == self.ruid || uid == self.suid {
            self.euid = uid;
            Ok(())
        } else {
            Err(Errno::Eperm)
        }
    }

    /// POSIX `setreuid(2)` with `-1` (represented as `None`) meaning "leave
    /// unchanged".
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Eperm`] if the process is unprivileged and either
    /// requested ID is not one of its current real/effective/saved UIDs.
    pub fn setreuid(&mut self, ruid: Option<Uid>, euid: Option<Uid>) -> Result<(), Errno> {
        let privileged = self.euid.is_root();
        if let Some(r) = ruid {
            if !privileged && r != self.ruid && r != self.euid {
                return Err(Errno::Eperm);
            }
        }
        if let Some(e) = euid {
            if !privileged && e != self.ruid && e != self.euid && e != self.suid {
                return Err(Errno::Eperm);
            }
        }
        if let Some(r) = ruid {
            self.ruid = r;
        }
        if let Some(e) = euid {
            self.euid = e;
            // Linux: if the real UID is set or the effective UID differs from
            // the (new) real UID, the saved UID is set to the effective UID.
            if ruid.is_some() || e != self.ruid {
                self.suid = e;
            }
        }
        Ok(())
    }

    /// POSIX `setgid(2)`, mirroring [`Credentials::setuid`] for groups.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Eperm`] if the process is unprivileged and `gid` is
    /// neither its real nor its saved GID.
    pub fn setgid(&mut self, gid: Gid) -> Result<(), Errno> {
        if self.euid.is_root() {
            self.rgid = gid;
            self.egid = gid;
            self.sgid = gid;
            Ok(())
        } else if gid == self.rgid || gid == self.sgid {
            self.egid = gid;
            Ok(())
        } else {
            Err(Errno::Eperm)
        }
    }

    /// POSIX `setegid(2)`, mirroring [`Credentials::seteuid`] for groups.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Eperm`] if the process is unprivileged and `gid` is
    /// neither its real nor its saved GID.
    pub fn setegid(&mut self, gid: Gid) -> Result<(), Errno> {
        if self.euid.is_root() || gid == self.rgid || gid == self.sgid {
            self.egid = gid;
            Ok(())
        } else {
            Err(Errno::Eperm)
        }
    }
}

impl Default for Credentials {
    fn default() -> Self {
        Credentials::root()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_full_drop_is_irreversible() {
        let mut cred = Credentials::root();
        cred.setuid(Uid::new(48)).unwrap();
        assert_eq!(cred.ruid(), Uid::new(48));
        assert_eq!(cred.euid(), Uid::new(48));
        assert_eq!(cred.suid(), Uid::new(48));
        assert!(cred.setuid(Uid::ROOT).is_err());
        assert!(cred.seteuid(Uid::ROOT).is_err());
        assert!(!cred.is_privileged());
    }

    #[test]
    fn seteuid_toggle_keeps_saved_uid() {
        // The wu-ftpd / Apache pattern: temporarily drop the effective UID
        // but keep root in the saved UID so privileges can be regained.
        let mut cred = Credentials::root();
        cred.seteuid(Uid::new(48)).unwrap();
        assert_eq!(cred.euid(), Uid::new(48));
        assert_eq!(cred.suid(), Uid::ROOT);
        cred.seteuid(Uid::ROOT).unwrap();
        assert!(cred.is_privileged());
    }

    #[test]
    fn unprivileged_cannot_become_root() {
        let mut cred = Credentials::new(Uid::new(1000), Gid::new(100));
        assert_eq!(cred.setuid(Uid::ROOT), Err(Errno::Eperm));
        assert_eq!(cred.seteuid(Uid::ROOT), Err(Errno::Eperm));
        assert_eq!(cred.setgid(Gid::ROOT), Err(Errno::Eperm));
    }

    #[test]
    fn unprivileged_can_switch_between_own_ids() {
        let mut cred = Credentials::root();
        cred.seteuid(Uid::new(48)).unwrap();
        // Real=0? No: real is still 0 (root), saved is 0. euid is 48.
        assert_eq!(cred.ruid(), Uid::ROOT);
        // A process with euid 48 but ruid/suid 0 can return to root.
        cred.seteuid(Uid::ROOT).unwrap();
        assert!(cred.is_privileged());
    }

    #[test]
    fn setreuid_none_leaves_unchanged() {
        let mut cred = Credentials::new(Uid::new(1000), Gid::new(100));
        cred.setreuid(None, None).unwrap();
        assert_eq!(cred.ruid(), Uid::new(1000));
        assert_eq!(cred.euid(), Uid::new(1000));
    }

    #[test]
    fn setreuid_privileged_swaps_ids() {
        let mut cred = Credentials::root();
        cred.setreuid(Some(Uid::new(48)), Some(Uid::new(48)))
            .unwrap();
        assert_eq!(cred.ruid(), Uid::new(48));
        assert_eq!(cred.euid(), Uid::new(48));
        assert_eq!(cred.suid(), Uid::new(48));
    }

    #[test]
    fn setreuid_unprivileged_rejects_foreign_ids() {
        let mut cred = Credentials::new(Uid::new(1000), Gid::new(100));
        assert_eq!(cred.setreuid(Some(Uid::ROOT), None), Err(Errno::Eperm));
        assert_eq!(cred.setreuid(None, Some(Uid::new(48))), Err(Errno::Eperm));
    }

    #[test]
    fn group_transitions() {
        let mut cred = Credentials::root();
        cred.setgid(Gid::new(48)).unwrap();
        assert_eq!(cred.egid(), Gid::new(48));
        assert_eq!(cred.sgid(), Gid::new(48));
        // Still euid root, so may change again.
        cred.setegid(Gid::new(100)).unwrap();
        assert_eq!(cred.egid(), Gid::new(100));
    }

    #[test]
    fn default_is_root() {
        assert!(Credentials::default().is_privileged());
    }
}
