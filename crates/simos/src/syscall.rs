//! The system-call interface between variant programs and the kernel.
//!
//! System calls are the *synchronization and monitoring points* of the
//! N-variant framework (§3.1 of the paper): once one variant makes a system
//! call it is not allowed to proceed until all other variants make the same
//! call, the monitor checks that the (canonicalized) arguments are
//! equivalent, and input/output is performed exactly once.
//!
//! The enumeration includes the paper's new *detection system calls*
//! (Table 2): `uid_value`, `cond_chk`, and the `cc_*` comparison family.

use nvariant_types::Word;
use serde::{Deserialize, Serialize};
use std::fmt;

/// System call numbers understood by the simulated kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Sysno {
    /// `exit(status)` — terminate the process.
    Exit,
    /// `getuid() -> uid_t` — real UID of the caller.
    GetUid,
    /// `geteuid() -> uid_t` — effective UID of the caller.
    GetEuid,
    /// `setuid(uid_t) -> int` — set all three UIDs (privilege drop).
    SetUid,
    /// `seteuid(uid_t) -> int` — set the effective UID only.
    SetEuid,
    /// `getgid() -> gid_t` — real GID of the caller.
    GetGid,
    /// `setgid(gid_t) -> int` — set all three GIDs.
    SetGid,
    /// `setreuid(uid_t, uid_t) -> int` — set real and effective UIDs.
    SetReUid,
    /// `open(const char *path, int flags) -> int` — open a file.
    Open,
    /// `read(int fd, void *buf, size_t count) -> ssize_t`.
    Read,
    /// `write(int fd, const void *buf, size_t count) -> ssize_t`.
    Write,
    /// `close(int fd) -> int`.
    Close,
    /// `socket() -> int` — create a TCP socket.
    Socket,
    /// `bind(int fd, int port) -> int`.
    Bind,
    /// `listen(int fd) -> int`.
    Listen,
    /// `accept(int fd) -> int` — accept a pending connection.
    Accept,
    /// `recv(int fd, void *buf, size_t count) -> ssize_t`.
    Recv,
    /// `send(int fd, const void *buf, size_t count) -> ssize_t`.
    Send,
    /// `time() -> int` — seconds since simulation start.
    Time,
    /// `uid_value(uid_t) -> uid_t` — detection call: expose a UID value to
    /// the monitor and return it unchanged (Table 2).
    UidValue,
    /// `cond_chk(bool) -> bool` — detection call: check that a UID-dependent
    /// condition evaluated identically in all variants (Table 2).
    CondChk,
    /// `cc_eq(uid_t, uid_t) -> bool` — checked UID equality (Table 2).
    CcEq,
    /// `cc_neq(uid_t, uid_t) -> bool` — checked UID inequality (Table 2).
    CcNeq,
    /// `cc_lt(uid_t, uid_t) -> bool` — checked UID less-than (Table 2).
    CcLt,
    /// `cc_leq(uid_t, uid_t) -> bool` — checked UID less-or-equal (Table 2).
    CcLeq,
    /// `cc_gt(uid_t, uid_t) -> bool` — checked UID greater-than (Table 2).
    CcGt,
    /// `cc_geq(uid_t, uid_t) -> bool` — checked UID greater-or-equal (Table 2).
    CcGeq,
}

impl Sysno {
    /// All system calls, in numbering order.
    pub const ALL: &'static [Sysno] = &[
        Sysno::Exit,
        Sysno::GetUid,
        Sysno::GetEuid,
        Sysno::SetUid,
        Sysno::SetEuid,
        Sysno::GetGid,
        Sysno::SetGid,
        Sysno::SetReUid,
        Sysno::Open,
        Sysno::Read,
        Sysno::Write,
        Sysno::Close,
        Sysno::Socket,
        Sysno::Bind,
        Sysno::Listen,
        Sysno::Accept,
        Sysno::Recv,
        Sysno::Send,
        Sysno::Time,
        Sysno::UidValue,
        Sysno::CondChk,
        Sysno::CcEq,
        Sysno::CcNeq,
        Sysno::CcLt,
        Sysno::CcLeq,
        Sysno::CcGt,
        Sysno::CcGeq,
    ];

    /// Returns the numeric system-call number used in bytecode.
    #[must_use]
    pub fn as_u32(self) -> u32 {
        match self {
            Sysno::Exit => 0,
            Sysno::GetUid => 1,
            Sysno::GetEuid => 2,
            Sysno::SetUid => 3,
            Sysno::SetEuid => 4,
            Sysno::GetGid => 5,
            Sysno::SetGid => 6,
            Sysno::SetReUid => 7,
            Sysno::Open => 8,
            Sysno::Read => 9,
            Sysno::Write => 10,
            Sysno::Close => 11,
            Sysno::Socket => 12,
            Sysno::Bind => 13,
            Sysno::Listen => 14,
            Sysno::Accept => 15,
            Sysno::Recv => 16,
            Sysno::Send => 17,
            Sysno::Time => 18,
            Sysno::UidValue => 32,
            Sysno::CondChk => 33,
            Sysno::CcEq => 34,
            Sysno::CcNeq => 35,
            Sysno::CcLt => 36,
            Sysno::CcLeq => 37,
            Sysno::CcGt => 38,
            Sysno::CcGeq => 39,
        }
    }

    /// Looks up a system call from its number.
    #[must_use]
    pub fn from_u32(n: u32) -> Option<Self> {
        Sysno::ALL.iter().copied().find(|s| s.as_u32() == n)
    }

    /// Returns the C-style name of the call (as it appears in SimC source).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Sysno::Exit => "exit",
            Sysno::GetUid => "getuid",
            Sysno::GetEuid => "geteuid",
            Sysno::SetUid => "setuid",
            Sysno::SetEuid => "seteuid",
            Sysno::GetGid => "getgid",
            Sysno::SetGid => "setgid",
            Sysno::SetReUid => "setreuid",
            Sysno::Open => "open",
            Sysno::Read => "read",
            Sysno::Write => "write",
            Sysno::Close => "close",
            Sysno::Socket => "socket",
            Sysno::Bind => "bind",
            Sysno::Listen => "listen",
            Sysno::Accept => "accept",
            Sysno::Recv => "recv",
            Sysno::Send => "send",
            Sysno::Time => "time",
            Sysno::UidValue => "uid_value",
            Sysno::CondChk => "cond_chk",
            Sysno::CcEq => "cc_eq",
            Sysno::CcNeq => "cc_neq",
            Sysno::CcLt => "cc_lt",
            Sysno::CcLeq => "cc_leq",
            Sysno::CcGt => "cc_gt",
            Sysno::CcGeq => "cc_geq",
        }
    }

    /// Looks up a system call by its SimC name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Sysno::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// The number of arguments the call takes.
    #[must_use]
    pub fn arg_count(self) -> usize {
        match self {
            Sysno::GetUid | Sysno::GetEuid | Sysno::GetGid | Sysno::Socket | Sysno::Time => 0,
            Sysno::Exit
            | Sysno::SetUid
            | Sysno::SetEuid
            | Sysno::SetGid
            | Sysno::Close
            | Sysno::Listen
            | Sysno::Accept
            | Sysno::UidValue
            | Sysno::CondChk => 1,
            Sysno::SetReUid
            | Sysno::Open
            | Sysno::Bind
            | Sysno::CcEq
            | Sysno::CcNeq
            | Sysno::CcLt
            | Sysno::CcLeq
            | Sysno::CcGt
            | Sysno::CcGeq => 2,
            Sysno::Read | Sysno::Write | Sysno::Recv | Sysno::Send => 3,
        }
    }

    /// Argument positions (0-based) that carry UID/GID values and therefore
    /// must be run through the inverse reexpression function before the
    /// monitor compares them or passes them to the kernel.
    #[must_use]
    pub fn uid_arg_positions(self) -> &'static [usize] {
        match self {
            Sysno::SetUid | Sysno::SetEuid | Sysno::SetGid | Sysno::UidValue => &[0],
            Sysno::SetReUid
            | Sysno::CcEq
            | Sysno::CcNeq
            | Sysno::CcLt
            | Sysno::CcLeq
            | Sysno::CcGt
            | Sysno::CcGeq => &[0, 1],
            _ => &[],
        }
    }

    /// Returns `true` if the call's return value is a UID/GID that must be
    /// re-expressed per variant before being handed back to the program.
    #[must_use]
    pub fn returns_uid(self) -> bool {
        matches!(
            self,
            Sysno::GetUid | Sysno::GetEuid | Sysno::GetGid | Sysno::UidValue
        )
    }

    /// Returns `true` if this is one of the detection calls added by the
    /// paper (Table 2) rather than a pre-existing kernel interface.
    #[must_use]
    pub fn is_detection_call(self) -> bool {
        matches!(
            self,
            Sysno::UidValue
                | Sysno::CondChk
                | Sysno::CcEq
                | Sysno::CcNeq
                | Sysno::CcLt
                | Sysno::CcLeq
                | Sysno::CcGt
                | Sysno::CcGeq
        )
    }

    /// Returns `true` if the call reads data into the process (its result
    /// must be replicated to all variants).
    #[must_use]
    pub fn is_input(self) -> bool {
        matches!(
            self,
            Sysno::Read | Sysno::Recv | Sysno::Accept | Sysno::Time | Sysno::Open
        )
    }

    /// Returns `true` if the call emits data out of the process (the monitor
    /// must check all variants attempt equivalent output and perform it
    /// exactly once).
    #[must_use]
    pub fn is_output(self) -> bool {
        matches!(self, Sysno::Write | Sysno::Send)
    }

    /// Argument positions that are pointers into process memory (and thus
    /// must be canonicalized under address-space partitioning and must have
    /// their *pointed-to contents* compared rather than the raw pointer).
    #[must_use]
    pub fn pointer_arg_positions(self) -> &'static [usize] {
        match self {
            Sysno::Open => &[0],
            Sysno::Read | Sysno::Write | Sysno::Recv | Sysno::Send => &[1],
            _ => &[],
        }
    }
}

impl fmt::Display for Sysno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A raw system-call request as trapped from a variant process: the call
/// number plus its untyped word arguments.
///
/// # Example
///
/// ```
/// use nvariant_simos::{SyscallRequest, Sysno};
/// use nvariant_types::Word;
///
/// let req = SyscallRequest::new(Sysno::SetUid, vec![Word::from_u32(48)]);
/// assert_eq!(req.sysno, Sysno::SetUid);
/// assert_eq!(req.args.len(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyscallRequest {
    /// Which call was made.
    pub sysno: Sysno,
    /// The raw word arguments, in order.
    pub args: Vec<Word>,
}

impl SyscallRequest {
    /// Creates a request.
    #[must_use]
    pub fn new(sysno: Sysno, args: Vec<Word>) -> Self {
        SyscallRequest { sysno, args }
    }

    /// Returns argument `i`, or zero if the caller supplied too few
    /// arguments (matching the forgiving behaviour of real syscall ABIs).
    #[must_use]
    pub fn arg(&self, i: usize) -> Word {
        self.args.get(i).copied().unwrap_or(Word::ZERO)
    }
}

impl fmt::Display for SyscallRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.sysno)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:#x}", a)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbering_round_trips() {
        for &s in Sysno::ALL {
            assert_eq!(Sysno::from_u32(s.as_u32()), Some(s));
            assert_eq!(Sysno::from_name(s.name()), Some(s));
        }
        assert_eq!(Sysno::from_u32(999), None);
        assert_eq!(Sysno::from_name("fork"), None);
    }

    #[test]
    fn numbers_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for &s in Sysno::ALL {
            assert!(seen.insert(s.as_u32()), "duplicate number for {s}");
        }
    }

    #[test]
    fn table2_detection_calls_are_classified() {
        for s in [
            Sysno::UidValue,
            Sysno::CondChk,
            Sysno::CcEq,
            Sysno::CcNeq,
            Sysno::CcLt,
            Sysno::CcLeq,
            Sysno::CcGt,
            Sysno::CcGeq,
        ] {
            assert!(s.is_detection_call(), "{s} should be a detection call");
        }
        assert!(!Sysno::SetUid.is_detection_call());
    }

    #[test]
    fn uid_argument_positions() {
        assert_eq!(Sysno::SetUid.uid_arg_positions(), &[0]);
        assert_eq!(Sysno::SetReUid.uid_arg_positions(), &[0, 1]);
        assert_eq!(Sysno::CcGeq.uid_arg_positions(), &[0, 1]);
        assert!(Sysno::Write.uid_arg_positions().is_empty());
    }

    #[test]
    fn uid_returning_calls() {
        assert!(Sysno::GetUid.returns_uid());
        assert!(Sysno::GetEuid.returns_uid());
        assert!(Sysno::UidValue.returns_uid());
        assert!(!Sysno::SetUid.returns_uid());
        assert!(!Sysno::CcEq.returns_uid());
    }

    #[test]
    fn io_classification() {
        assert!(Sysno::Read.is_input());
        assert!(Sysno::Recv.is_input());
        assert!(Sysno::Write.is_output());
        assert!(Sysno::Send.is_output());
        assert!(!Sysno::SetUid.is_input());
        assert!(!Sysno::SetUid.is_output());
    }

    #[test]
    fn pointer_argument_positions() {
        assert_eq!(Sysno::Open.pointer_arg_positions(), &[0]);
        assert_eq!(Sysno::Write.pointer_arg_positions(), &[1]);
        assert!(Sysno::SetUid.pointer_arg_positions().is_empty());
    }

    #[test]
    fn arg_counts_match_signatures() {
        assert_eq!(Sysno::GetUid.arg_count(), 0);
        assert_eq!(Sysno::SetUid.arg_count(), 1);
        assert_eq!(Sysno::Open.arg_count(), 2);
        assert_eq!(Sysno::Read.arg_count(), 3);
        assert_eq!(Sysno::CcEq.arg_count(), 2);
        assert_eq!(Sysno::CondChk.arg_count(), 1);
    }

    #[test]
    fn request_accessors_and_display() {
        let req = SyscallRequest::new(
            Sysno::Read,
            vec![
                Word::from_u32(3),
                Word::from_u32(0x1000),
                Word::from_u32(64),
            ],
        );
        assert_eq!(req.arg(0).as_u32(), 3);
        assert_eq!(req.arg(5), Word::ZERO);
        let text = format!("{req}");
        assert!(text.starts_with("read("));
        assert!(text.contains("0x1000"));
    }
}
