//! A simulated TCP network: listeners, client connections, request/response
//! buffers.
//!
//! The network is the channel through which *untrusted input* reaches the
//! service (Figure 2 of the paper: "External Input"). The workload generator
//! and the attack library both enqueue [`Connection`]s here; the server pulls
//! them off with `accept`/`recv` and answers with `send`.

use bytes::Bytes;
use nvariant_types::{ConnId, Errno, Fnv1a, Port};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// A pending or established client connection.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Connection {
    /// Unique identifier of the connection.
    pub id: ConnId,
    /// The full client request payload (drained by `recv`).
    pub request: Vec<u8>,
    /// How many request bytes have been consumed so far.
    pub read_pos: usize,
    /// Everything the server has sent back so far.
    pub response: Vec<u8>,
    /// Whether the server has closed the connection.
    pub closed: bool,
}

impl Connection {
    /// Creates a connection carrying the given request payload.
    #[must_use]
    pub fn new(id: ConnId, request: Vec<u8>) -> Self {
        Connection {
            id,
            request,
            read_pos: 0,
            response: Vec::new(),
            closed: false,
        }
    }

    /// Returns the unread portion of the request.
    #[must_use]
    pub fn remaining_request(&self) -> &[u8] {
        &self.request[self.read_pos.min(self.request.len())..]
    }

    /// Returns the accumulated response bytes.
    #[must_use]
    pub fn response_bytes(&self) -> Bytes {
        Bytes::from(self.response.clone())
    }
}

/// A listening socket bound to a port.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Listener {
    /// Connections waiting to be accepted, in arrival order.
    pub backlog: VecDeque<ConnId>,
    /// Whether `listen` has been called.
    pub listening: bool,
}

/// The simulated network fabric shared by all processes in a world.
///
/// # Example
///
/// ```
/// use nvariant_simos::SimNetwork;
/// use nvariant_types::Port;
///
/// let mut net = SimNetwork::new();
/// net.bind(Port::HTTP).unwrap();
/// net.listen(Port::HTTP).unwrap();
/// let conn = net.enqueue_request(Port::HTTP, b"GET / HTTP/1.0\r\n\r\n".to_vec()).unwrap();
/// let accepted = net.accept(Port::HTTP).unwrap();
/// assert_eq!(accepted, conn);
/// let data = net.recv(conn, 1024).unwrap();
/// assert!(data.starts_with(b"GET /"));
/// net.send(conn, b"HTTP/1.0 200 OK\r\n").unwrap();
/// assert!(net.connection(conn).unwrap().response.starts_with(b"HTTP/1.0 200"));
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SimNetwork {
    listeners: BTreeMap<u16, Listener>,
    connections: BTreeMap<u64, Connection>,
    next_conn: u64,
    preloaded: BTreeMap<u16, VecDeque<Vec<u8>>>,
    /// Deterministic schedule injection: when set, every `recv` delivers at
    /// most this many bytes even if the caller asked for more, modelling a
    /// network that fragments request payloads at a chosen boundary. The
    /// model checker enumerates different caps to explore the delivery
    /// schedules a real TCP stack could produce.
    recv_cap: Option<usize>,
}

impl SimNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        SimNetwork::default()
    }

    /// Binds a listener to `port`.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Eaddrinuse`] if the port is already bound.
    /// (Privilege checks for low ports are performed by the kernel layer,
    /// which knows the caller's credentials.)
    pub fn bind(&mut self, port: Port) -> Result<(), Errno> {
        if self.listeners.contains_key(&port.as_u16()) {
            return Err(Errno::Eaddrinuse);
        }
        self.listeners.insert(port.as_u16(), Listener::default());
        Ok(())
    }

    /// Marks a bound port as listening.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Einval`] if the port was never bound.
    pub fn listen(&mut self, port: Port) -> Result<(), Errno> {
        let listener = self
            .listeners
            .get_mut(&port.as_u16())
            .ok_or(Errno::Einval)?;
        listener.listening = true;
        // Clients that were waiting for the service to come up connect now.
        if let Some(waiting) = self.preloaded.remove(&port.as_u16()) {
            for request in waiting {
                let _ = self.enqueue_request(port, request);
            }
        }
        Ok(())
    }

    /// Registers a client request that will connect as soon as something
    /// starts listening on `port`.
    ///
    /// This is how workload generators and attack payloads are staged before
    /// the (synchronously executed) server program has had a chance to call
    /// `bind`/`listen`.
    pub fn preload_request(&mut self, port: Port, request: Vec<u8>) {
        self.preloaded
            .entry(port.as_u16())
            .or_default()
            .push_back(request);
        if self.is_listening(port) {
            let waiting = self.preloaded.remove(&port.as_u16()).unwrap_or_default();
            for request in waiting {
                let _ = self.enqueue_request(port, request);
            }
        }
    }

    /// Returns `true` if the port has a listening socket.
    #[must_use]
    pub fn is_listening(&self, port: Port) -> bool {
        self.listeners
            .get(&port.as_u16())
            .is_some_and(|l| l.listening)
    }

    /// Enqueues a client connection carrying `request` on `port`, returning
    /// its id.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Econnreset`] if nothing is listening on the port.
    pub fn enqueue_request(&mut self, port: Port, request: Vec<u8>) -> Result<ConnId, Errno> {
        if !self.is_listening(port) {
            return Err(Errno::Econnreset);
        }
        let id = ConnId::new(self.next_conn);
        self.next_conn += 1;
        self.connections
            .insert(id.as_u64(), Connection::new(id, request));
        self.listeners
            .get_mut(&port.as_u16())
            .expect("listener checked above")
            .backlog
            .push_back(id);
        Ok(id)
    }

    /// Accepts the next pending connection on `port`.
    ///
    /// # Errors
    ///
    /// * [`Errno::Einval`] if the port is not listening.
    /// * [`Errno::Eagain`] if the backlog is empty (the case-study server
    ///   uses this as its shutdown signal).
    pub fn accept(&mut self, port: Port) -> Result<ConnId, Errno> {
        let listener = self
            .listeners
            .get_mut(&port.as_u16())
            .ok_or(Errno::Einval)?;
        if !listener.listening {
            return Err(Errno::Einval);
        }
        listener.backlog.pop_front().ok_or(Errno::Eagain)
    }

    /// Reads up to `max` bytes of the request payload from a connection.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Ebadf`] if the connection does not exist or has been
    /// closed.
    pub fn recv(&mut self, conn: ConnId, max: usize) -> Result<Vec<u8>, Errno> {
        let c = self
            .connections
            .get_mut(&conn.as_u64())
            .ok_or(Errno::Ebadf)?;
        if c.closed {
            return Err(Errno::Ebadf);
        }
        // A cap of 0 would starve the reader forever; deliver at least one
        // byte per call so capped schedules always make progress.
        let max = match self.recv_cap {
            Some(cap) => max.min(cap.max(1)),
            None => max,
        };
        let start = c.read_pos.min(c.request.len());
        let end = (start + max).min(c.request.len());
        c.read_pos = end;
        Ok(c.request[start..end].to_vec())
    }

    /// Appends bytes to a connection's response buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Ebadf`] if the connection does not exist or has been
    /// closed.
    pub fn send(&mut self, conn: ConnId, data: &[u8]) -> Result<usize, Errno> {
        let c = self
            .connections
            .get_mut(&conn.as_u64())
            .ok_or(Errno::Ebadf)?;
        if c.closed {
            return Err(Errno::Ebadf);
        }
        c.response.extend_from_slice(data);
        Ok(data.len())
    }

    /// Closes a connection (the response stays available for inspection).
    ///
    /// # Errors
    ///
    /// Returns [`Errno::Ebadf`] if the connection does not exist.
    pub fn close(&mut self, conn: ConnId) -> Result<(), Errno> {
        let c = self
            .connections
            .get_mut(&conn.as_u64())
            .ok_or(Errno::Ebadf)?;
        c.closed = true;
        Ok(())
    }

    /// Looks up a connection by id.
    #[must_use]
    pub fn connection(&self, conn: ConnId) -> Option<&Connection> {
        self.connections.get(&conn.as_u64())
    }

    /// Iterates over all connections ever created, in creation order.
    pub fn connections(&self) -> impl Iterator<Item = &Connection> {
        self.connections.values()
    }

    /// Number of connections still waiting in the backlog of `port`.
    #[must_use]
    pub fn backlog_len(&self, port: Port) -> usize {
        self.listeners
            .get(&port.as_u16())
            .map_or(0, |l| l.backlog.len())
    }

    /// Total number of response bytes produced across all connections.
    #[must_use]
    pub fn total_response_bytes(&self) -> usize {
        self.connections.values().map(|c| c.response.len()).sum()
    }

    /// Caps (or, with `None`, uncaps) the number of bytes a single `recv`
    /// may deliver. A cap of 0 is treated as 1 so capped readers still make
    /// progress. See the `recv_cap` field documentation.
    pub fn set_recv_cap(&mut self, cap: Option<usize>) {
        self.recv_cap = cap;
    }

    /// The current per-`recv` delivery cap, if any.
    #[must_use]
    pub fn recv_cap(&self) -> Option<usize> {
        self.recv_cap
    }

    /// Folds the complete network state — listeners with their backlogs,
    /// every connection's buffers and cursors, the preloaded request queues
    /// and the delivery cap — into `digest`, in canonical `BTreeMap` order.
    pub fn digest_into(&self, digest: &mut Fnv1a) {
        digest.write_usize(self.listeners.len());
        for (port, listener) in &self.listeners {
            digest.write_u32(u32::from(*port));
            digest.write_u8(u8::from(listener.listening));
            digest.write_usize(listener.backlog.len());
            for conn in &listener.backlog {
                digest.write_u64(conn.as_u64());
            }
        }
        digest.write_usize(self.connections.len());
        for (id, conn) in &self.connections {
            digest.write_u64(*id);
            digest.write_usize(conn.request.len());
            digest.write(&conn.request);
            digest.write_usize(conn.read_pos);
            digest.write_usize(conn.response.len());
            digest.write(&conn.response);
            digest.write_u8(u8::from(conn.closed));
        }
        digest.write_u64(self.next_conn);
        digest.write_usize(self.preloaded.len());
        for (port, queue) in &self.preloaded {
            digest.write_u32(u32::from(*port));
            digest.write_usize(queue.len());
            for request in queue {
                digest.write_usize(request.len());
                digest.write(request);
            }
        }
        match self.recv_cap {
            None => digest.write_u8(0),
            Some(cap) => {
                digest.write_u8(1);
                digest.write_usize(cap);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready_network() -> SimNetwork {
        let mut net = SimNetwork::new();
        net.bind(Port::HTTP).unwrap();
        net.listen(Port::HTTP).unwrap();
        net
    }

    #[test]
    fn bind_twice_fails() {
        let mut net = SimNetwork::new();
        net.bind(Port::HTTP).unwrap();
        assert_eq!(net.bind(Port::HTTP), Err(Errno::Eaddrinuse));
    }

    #[test]
    fn listen_requires_bind() {
        let mut net = SimNetwork::new();
        assert_eq!(net.listen(Port::new(8080)), Err(Errno::Einval));
        assert!(!net.is_listening(Port::new(8080)));
    }

    #[test]
    fn enqueue_requires_listener() {
        let mut net = SimNetwork::new();
        assert_eq!(
            net.enqueue_request(Port::HTTP, b"GET /".to_vec()),
            Err(Errno::Econnreset)
        );
    }

    #[test]
    fn accept_in_fifo_order_and_eagain_when_empty() {
        let mut net = ready_network();
        let a = net.enqueue_request(Port::HTTP, b"a".to_vec()).unwrap();
        let b = net.enqueue_request(Port::HTTP, b"b".to_vec()).unwrap();
        assert_eq!(net.backlog_len(Port::HTTP), 2);
        assert_eq!(net.accept(Port::HTTP), Ok(a));
        assert_eq!(net.accept(Port::HTTP), Ok(b));
        assert_eq!(net.accept(Port::HTTP), Err(Errno::Eagain));
    }

    #[test]
    fn recv_drains_request_incrementally() {
        let mut net = ready_network();
        let c = net
            .enqueue_request(Port::HTTP, b"hello world".to_vec())
            .unwrap();
        assert_eq!(net.recv(c, 5).unwrap(), b"hello");
        assert_eq!(net.recv(c, 100).unwrap(), b" world");
        assert_eq!(net.recv(c, 100).unwrap(), b"");
    }

    #[test]
    fn send_accumulates_response() {
        let mut net = ready_network();
        let c = net.enqueue_request(Port::HTTP, b"req".to_vec()).unwrap();
        net.send(c, b"part1 ").unwrap();
        net.send(c, b"part2").unwrap();
        assert_eq!(net.connection(c).unwrap().response, b"part1 part2");
        assert_eq!(net.total_response_bytes(), 11);
    }

    #[test]
    fn closed_connection_rejects_io() {
        let mut net = ready_network();
        let c = net.enqueue_request(Port::HTTP, b"req".to_vec()).unwrap();
        net.close(c).unwrap();
        assert_eq!(net.recv(c, 10), Err(Errno::Ebadf));
        assert_eq!(net.send(c, b"x"), Err(Errno::Ebadf));
        // Response remains inspectable after close.
        assert!(net.connection(c).is_some());
    }

    #[test]
    fn unknown_connection_is_ebadf() {
        let mut net = ready_network();
        assert_eq!(net.recv(ConnId::new(99), 1), Err(Errno::Ebadf));
        assert_eq!(net.send(ConnId::new(99), b"x"), Err(Errno::Ebadf));
        assert_eq!(net.close(ConnId::new(99)), Err(Errno::Ebadf));
    }

    #[test]
    fn preloaded_requests_connect_on_listen() {
        let mut net = SimNetwork::new();
        net.preload_request(Port::HTTP, b"GET /early HTTP/1.0\r\n\r\n".to_vec());
        net.preload_request(Port::HTTP, b"GET /second HTTP/1.0\r\n\r\n".to_vec());
        assert_eq!(net.backlog_len(Port::HTTP), 0);
        net.bind(Port::HTTP).unwrap();
        net.listen(Port::HTTP).unwrap();
        assert_eq!(net.backlog_len(Port::HTTP), 2);
        let first = net.accept(Port::HTTP).unwrap();
        assert!(net.recv(first, 64).unwrap().starts_with(b"GET /early"));
    }

    #[test]
    fn preloaded_requests_connect_immediately_if_already_listening() {
        let mut net = ready_network();
        net.preload_request(Port::HTTP, b"GET / HTTP/1.0\r\n\r\n".to_vec());
        assert_eq!(net.backlog_len(Port::HTTP), 1);
    }

    #[test]
    fn remaining_request_view() {
        let mut net = ready_network();
        let c = net.enqueue_request(Port::HTTP, b"abcdef".to_vec()).unwrap();
        net.recv(c, 2).unwrap();
        assert_eq!(net.connection(c).unwrap().remaining_request(), b"cdef");
    }
}
