//! Simulated time and the cost model used by the performance evaluation.
//!
//! The paper's Table 3 distinguishes an *unsaturated* (I/O-bound) regime,
//! where running two variants costs little because I/O is performed once,
//! from a *saturated* (CPU-bound) regime, where throughput roughly halves
//! because all computation is duplicated. To reproduce that shape we charge
//! CPU time per executed instruction and per monitor check, and I/O time per
//! kernel operation — the CPU charges are multiplied by the number of
//! variants by virtue of being measured per variant, while I/O charges are
//! incurred once.

use crate::syscall::Sysno;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration in simulated nanoseconds.
///
/// # Example
///
/// ```
/// use nvariant_simos::SimDuration;
///
/// let d = SimDuration::from_micros(5) + SimDuration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 5_500);
/// assert!((d.as_millis_f64() - 0.0055).abs() < 1e-12);
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// The duration in nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in (fractional) milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in (fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor.
    #[must_use]
    pub fn times(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// An instant on the simulated clock (nanoseconds since simulation start).
///
/// # Example
///
/// ```
/// use nvariant_simos::{SimDuration, SimInstant};
///
/// let t0 = SimInstant::ZERO;
/// let t1 = t0 + SimDuration::from_millis(3);
/// assert_eq!(t1.duration_since(t0), SimDuration::from_millis(3));
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The start of the simulation.
    pub const ZERO: SimInstant = SimInstant(0);

    /// Creates an instant from nanoseconds since simulation start.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimInstant(nanos)
    }

    /// Nanoseconds since simulation start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Elapsed time since an earlier instant (saturating at zero).
    #[must_use]
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    #[must_use]
    pub fn max(self, other: SimInstant) -> SimInstant {
        SimInstant(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;

    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.as_nanos())
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.0 as f64 / 1e6)
    }
}

/// Cost parameters that translate executed work into simulated time.
///
/// The defaults are loosely calibrated to the paper's 1.4 GHz Pentium 4 /
/// 100 Mbit LAN testbed; absolute values are not expected to match the
/// paper, but the CPU-vs-I/O balance they induce reproduces the Table 3
/// shape.
///
/// # Example
///
/// ```
/// use nvariant_simos::{CostModel, Sysno};
///
/// let costs = CostModel::default();
/// let cpu = costs.cpu_cost(10_000, 5);
/// assert!(cpu.as_nanos() > 0);
/// let io = costs.io_cost(Sysno::Send, 2048);
/// assert!(io > costs.io_cost(Sysno::Send, 0));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Nanoseconds of CPU time per executed bytecode instruction.
    pub ns_per_instruction: f64,
    /// Fixed CPU cost of entering/leaving the kernel for one system call.
    pub ns_per_syscall: f64,
    /// Extra CPU cost of one monitor equivalence check (per variant-pair
    /// comparison performed at a synchronization point).
    pub ns_per_monitor_check: f64,
    /// One-way network latency charged per request and per response.
    pub network_latency_ns: u64,
    /// Network transfer cost per byte sent or received.
    pub ns_per_network_byte: f64,
    /// Latency of a filesystem read that misses the cache.
    pub disk_read_ns: u64,
    /// Transfer cost per byte read from the filesystem.
    pub ns_per_disk_byte: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            // ~1.4 GHz, CPI ≈ 3 for an interpreter-era workload.
            ns_per_instruction: 2.1,
            ns_per_syscall: 650.0,
            ns_per_monitor_check: 380.0,
            // Switched 100 Mbit LAN.
            network_latency_ns: 120_000,
            ns_per_network_byte: 80.0,
            // The WebBench working set is small and fully cached after the
            // first touch, so per-request "disk" cost is a buffer-cache copy
            // rather than a seek — which is what makes the saturated regime
            // CPU-bound, as in the paper.
            disk_read_ns: 25_000,
            ns_per_disk_byte: 4.0,
        }
    }
}

impl CostModel {
    /// CPU time for executing `instructions` bytecode instructions plus
    /// `syscalls` kernel crossings.
    #[must_use]
    pub fn cpu_cost(&self, instructions: u64, syscalls: u64) -> SimDuration {
        let ns =
            instructions as f64 * self.ns_per_instruction + syscalls as f64 * self.ns_per_syscall;
        SimDuration::from_nanos(ns.round() as u64)
    }

    /// CPU time for `checks` monitor equivalence checks.
    #[must_use]
    pub fn monitor_cost(&self, checks: u64) -> SimDuration {
        SimDuration::from_nanos((checks as f64 * self.ns_per_monitor_check).round() as u64)
    }

    /// I/O time for one kernel operation that moved `bytes` bytes.
    ///
    /// Network operations pay the link latency plus per-byte transfer cost;
    /// filesystem reads pay the disk latency plus per-byte cost; everything
    /// else is considered CPU-only and costs nothing here.
    #[must_use]
    pub fn io_cost(&self, sysno: Sysno, bytes: usize) -> SimDuration {
        match sysno {
            Sysno::Accept => SimDuration::from_nanos(self.network_latency_ns),
            Sysno::Recv | Sysno::Send => SimDuration::from_nanos(
                self.network_latency_ns / 4
                    + (bytes as f64 * self.ns_per_network_byte).round() as u64,
            ),
            Sysno::Open => SimDuration::from_nanos(self.disk_read_ns / 4),
            Sysno::Read => SimDuration::from_nanos(
                self.disk_read_ns + (bytes as f64 * self.ns_per_disk_byte).round() as u64,
            ),
            Sysno::Write => SimDuration::from_nanos(
                self.disk_read_ns / 2 + (bytes as f64 * self.ns_per_disk_byte).round() as u64,
            ),
            _ => SimDuration::ZERO,
        }
    }

    /// Network time to move `bytes` bytes between a client and the server,
    /// including one link latency.
    #[must_use]
    pub fn network_transfer(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(
            self.network_latency_ns + (bytes as f64 * self.ns_per_network_byte).round() as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_micros(2);
        let b = SimDuration::from_nanos(500);
        assert_eq!((a + b).as_nanos(), 2_500);
        assert_eq!((a - b).as_nanos(), 1_500);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.times(3).as_nanos(), 6_000);
        let mut c = SimDuration::ZERO;
        c += a;
        assert_eq!(c, a);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimInstant::from_nanos(1_000);
        let t1 = t0 + SimDuration::from_nanos(500);
        assert_eq!(t1.as_nanos(), 1_500);
        assert_eq!(t1.duration_since(t0).as_nanos(), 500);
        assert_eq!(t0.duration_since(t1), SimDuration::ZERO);
        assert_eq!(t0.max(t1), t1);
    }

    #[test]
    fn cpu_cost_scales_with_instructions() {
        let m = CostModel::default();
        let small = m.cpu_cost(1_000, 1);
        let large = m.cpu_cost(100_000, 1);
        assert!(large > small);
        assert!(large.as_nanos() >= 99 * small.as_nanos() / 2);
    }

    #[test]
    fn io_cost_scales_with_bytes_for_network_and_disk() {
        let m = CostModel::default();
        assert!(m.io_cost(Sysno::Send, 10_000) > m.io_cost(Sysno::Send, 10));
        assert!(m.io_cost(Sysno::Read, 10_000) > m.io_cost(Sysno::Read, 10));
        assert_eq!(m.io_cost(Sysno::SetUid, 0), SimDuration::ZERO);
        assert_eq!(m.io_cost(Sysno::CcEq, 0), SimDuration::ZERO);
    }

    #[test]
    fn io_dominates_small_requests_cpu_dominates_large_computation() {
        // Sanity check of the regime the Table 3 reproduction relies on:
        // a request that executes ~50k instructions is CPU-cheaper than its
        // network+disk I/O, while one that executes ~5M instructions is not.
        let m = CostModel::default();
        let io = m.io_cost(Sysno::Recv, 512)
            + m.io_cost(Sysno::Read, 8192)
            + m.io_cost(Sysno::Send, 8192);
        assert!(m.cpu_cost(50_000, 10) < io);
        assert!(m.cpu_cost(5_000_000, 10) > io);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert!(format!("{}", SimInstant::from_nanos(1_500_000)).contains("1.500ms"));
    }
}
