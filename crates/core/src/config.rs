//! Deployment configurations, mirroring the paper's Table 3.

use nvariant_diversity::Variation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a program is deployed: which variation, how many variants, and
/// whether the UID source transformation is applied.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DeploymentConfig {
    /// Paper Configuration 1: the unmodified program running as a single
    /// process on the (modified) kernel.
    Unmodified,
    /// Paper Configuration 2: the UID-transformed program (instrumented with
    /// detection calls, identity reexpression) running as a single process.
    TransformedSingle,
    /// Paper Configuration 3: a 2-variant system whose variants differ in
    /// their address spaces; the program text is not transformed.
    TwoVariantAddress,
    /// Paper Configuration 4: a 2-variant system running the UID variation —
    /// transformed program text, per-variant reexpressed constants, unshared
    /// account files.
    TwoVariantUid,
    /// Any other deployment: an arbitrary variation, variant count, and
    /// choice of whether to apply the UID transformation.
    Custom {
        /// The variation to deploy.
        variation: Variation,
        /// Number of variants.
        variants: usize,
        /// Whether to run the UID source transformation (instrumentation
        /// plus per-variant constant reexpression).
        transform_uids: bool,
    },
}

impl DeploymentConfig {
    /// The composed UID + address variation the paper proposes as future
    /// work (§5/§7), as a ready-made custom configuration.
    #[must_use]
    pub fn composed_uid_and_address() -> Self {
        DeploymentConfig::Custom {
            variation: Variation::composed(vec![
                Variation::uid_diversity(),
                Variation::address_partitioning(),
            ]),
            variants: 2,
            transform_uids: true,
        }
    }

    /// A 2-variant instruction-set tagging deployment.
    #[must_use]
    pub fn two_variant_instruction_tagging() -> Self {
        DeploymentConfig::Custom {
            variation: Variation::instruction_tagging(),
            variants: 2,
            transform_uids: false,
        }
    }

    /// The configuration number used in the paper's Table 3, if this is one
    /// of the four configurations evaluated there.
    #[must_use]
    pub fn paper_number(&self) -> Option<u8> {
        match self {
            DeploymentConfig::Unmodified => Some(1),
            DeploymentConfig::TransformedSingle => Some(2),
            DeploymentConfig::TwoVariantAddress => Some(3),
            DeploymentConfig::TwoVariantUid => Some(4),
            DeploymentConfig::Custom { .. } => None,
        }
    }

    /// Short human-readable label (matches the paper's Table 3 wording for
    /// the four paper configurations).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            DeploymentConfig::Unmodified => "Unmodified".to_string(),
            DeploymentConfig::TransformedSingle => "Transformed".to_string(),
            DeploymentConfig::TwoVariantAddress => "2-Variant Address Space".to_string(),
            DeploymentConfig::TwoVariantUid => "2-Variant UID".to_string(),
            DeploymentConfig::Custom {
                variation,
                variants,
                ..
            } => format!("{variants}-Variant {}", variation.name()),
        }
    }

    /// The number of variant processes this deployment runs.
    #[must_use]
    pub fn variant_count(&self) -> usize {
        match self {
            DeploymentConfig::Unmodified | DeploymentConfig::TransformedSingle => 1,
            DeploymentConfig::TwoVariantAddress | DeploymentConfig::TwoVariantUid => 2,
            DeploymentConfig::Custom { variants, .. } => (*variants).max(1),
        }
    }

    /// The variation deployed across the variants, if any (single-process
    /// configurations have none).
    #[must_use]
    pub fn variation(&self) -> Option<Variation> {
        match self {
            DeploymentConfig::Unmodified | DeploymentConfig::TransformedSingle => None,
            DeploymentConfig::TwoVariantAddress => Some(Variation::address_partitioning()),
            DeploymentConfig::TwoVariantUid => Some(Variation::uid_diversity()),
            DeploymentConfig::Custom { variation, .. } => Some(variation.clone()),
        }
    }

    /// Whether the UID source transformation is applied to the program.
    #[must_use]
    pub fn transforms_uids(&self) -> bool {
        match self {
            DeploymentConfig::Unmodified | DeploymentConfig::TwoVariantAddress => false,
            DeploymentConfig::TransformedSingle | DeploymentConfig::TwoVariantUid => true,
            DeploymentConfig::Custom { transform_uids, .. } => *transform_uids,
        }
    }

    /// Whether the deployment needs per-variant unshared copies of the
    /// account files (`/etc/passwd`, `/etc/group`).
    #[must_use]
    pub fn uses_unshared_account_files(&self) -> bool {
        self.transforms_uids() && self.variant_count() > 1
    }

    /// The four configurations of the paper's Table 3, in order.
    #[must_use]
    pub fn paper_configurations() -> Vec<DeploymentConfig> {
        vec![
            DeploymentConfig::Unmodified,
            DeploymentConfig::TransformedSingle,
            DeploymentConfig::TwoVariantAddress,
            DeploymentConfig::TwoVariantUid,
        ]
    }
}

impl fmt::Display for DeploymentConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.paper_number() {
            Some(n) => write!(f, "Configuration {n} ({})", self.label()),
            None => write!(f, "{}", self.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations_match_table_3() {
        let configs = DeploymentConfig::paper_configurations();
        assert_eq!(configs.len(), 4);
        assert_eq!(configs[0].paper_number(), Some(1));
        assert_eq!(configs[3].paper_number(), Some(4));
        assert_eq!(configs[0].variant_count(), 1);
        assert_eq!(configs[2].variant_count(), 2);
        assert_eq!(configs[1].label(), "Transformed");
        assert!(configs[3].transforms_uids());
        assert!(!configs[2].transforms_uids());
        assert!(configs[3].uses_unshared_account_files());
        assert!(!configs[1].uses_unshared_account_files());
        assert!(configs[2].variation().is_some());
        assert!(configs[0].variation().is_none());
    }

    #[test]
    fn custom_configurations() {
        let composed = DeploymentConfig::composed_uid_and_address();
        assert_eq!(composed.paper_number(), None);
        assert_eq!(composed.variant_count(), 2);
        assert!(composed.transforms_uids());
        assert!(composed.label().contains("Composed"));

        let tagging = DeploymentConfig::two_variant_instruction_tagging();
        assert!(!tagging.transforms_uids());
        assert_eq!(tagging.variant_count(), 2);

        let degenerate = DeploymentConfig::Custom {
            variation: Variation::uid_diversity(),
            variants: 0,
            transform_uids: true,
        };
        assert_eq!(degenerate.variant_count(), 1);
    }

    #[test]
    fn display_includes_paper_number() {
        assert_eq!(
            DeploymentConfig::Unmodified.to_string(),
            "Configuration 1 (Unmodified)"
        );
        assert!(DeploymentConfig::composed_uid_and_address()
            .to_string()
            .contains("2-Variant"));
    }
}
