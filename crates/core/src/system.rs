//! The system builder: from SimC source to a runnable deployment.

use crate::config::DeploymentConfig;
use crate::outcome::SystemOutcome;
use nvariant_analyze::{analyze_pair, combined_verdict, AnalysisReport, VariantArtifact};
use nvariant_diversity::{AddressTransform, UidTransform, VariantSet, VariantSpec};
use nvariant_monitor::{provision_unshared_copies, MonitorConfig, NVariantMonitor};
use nvariant_simos::{OsKernel, WorldBuilder};
use nvariant_transform::{
    TransformError, TransformOptions, TransformStats, UidContext, UidTransformer,
};
use nvariant_types::{Pid, Uid};
use nvariant_vm::{
    compile_program, CompileError, CompiledProgram, MemoryLayout, ParseError, Process, Program,
    RunLimits, Runner,
};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Errors raised while building a deployable system.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// The SimC source failed to parse.
    Parse(ParseError),
    /// The program failed to compile.
    Compile(CompileError),
    /// The UID transformation failed.
    Transform(TransformError),
    /// The requested variation cannot be instantiated (e.g. a conflicting
    /// composition, or a multi-variant deployment with no variation).
    Variation(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Parse(e) => write!(f, "{e}"),
            BuildError::Compile(e) => write!(f, "{e}"),
            BuildError::Transform(e) => write!(f, "{e}"),
            BuildError::Variation(msg) => write!(f, "invalid variation: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ParseError> for BuildError {
    fn from(e: ParseError) -> Self {
        BuildError::Parse(e)
    }
}

impl From<CompileError> for BuildError {
    fn from(e: CompileError) -> Self {
        BuildError::Compile(e)
    }
}

impl From<TransformError> for BuildError {
    fn from(e: TransformError) -> Self {
        BuildError::Transform(e)
    }
}

/// Builder for a deployed system.
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Clone, Debug)]
pub struct NVariantSystemBuilder {
    program: Program,
    pub(crate) world: Option<OsKernel>,
    initial_uid: Uid,
    config: DeploymentConfig,
    monitor_config: MonitorConfig,
    transform_options: TransformOptions,
    base_layout: MemoryLayout,
    run_limits: RunLimits,
    extra_unshared: Vec<String>,
    verify_diversity: bool,
    /// Lazily computed [`fingerprint`](Self::fingerprint), invalidated by
    /// every setter that shapes the compiled artifact. Deriving the
    /// fingerprint walks the canonical pretty-printed source, so store
    /// lookups that probe it repeatedly should not pay that per probe.
    fingerprint_cache: OnceLock<u64>,
}

impl NVariantSystemBuilder {
    /// Starts a builder from SimC source text; the standard library is
    /// linked in automatically.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Parse`] if the source does not parse.
    pub fn from_source(source: &str) -> Result<Self, BuildError> {
        Ok(Self::from_program(nvariant_vm::parse_with_stdlib(source)?))
    }

    /// Starts a builder from an already-parsed program (no standard library
    /// is added).
    #[must_use]
    pub fn from_program(program: Program) -> Self {
        NVariantSystemBuilder {
            program,
            world: None,
            initial_uid: Uid::ROOT,
            config: DeploymentConfig::TwoVariantUid,
            monitor_config: MonitorConfig::default(),
            transform_options: TransformOptions::default(),
            base_layout: MemoryLayout::default(),
            run_limits: RunLimits::default(),
            extra_unshared: Vec::new(),
            verify_diversity: false,
            fingerprint_cache: OnceLock::new(),
        }
    }

    /// Sets the simulated world (defaults to [`WorldBuilder::standard`]).
    #[must_use]
    pub fn world(mut self, kernel: OsKernel) -> Self {
        self.world = Some(kernel);
        self
    }

    /// Sets the UID the program starts with (defaults to root, as the
    /// case-study server must bind a privileged port before dropping).
    #[must_use]
    pub fn initial_uid(mut self, uid: Uid) -> Self {
        self.initial_uid = uid;
        self.fingerprint_cache = OnceLock::new();
        self
    }

    /// Selects the deployment configuration (defaults to
    /// [`DeploymentConfig::TwoVariantUid`]).
    #[must_use]
    pub fn config(mut self, config: DeploymentConfig) -> Self {
        self.config = config;
        self.fingerprint_cache = OnceLock::new();
        self
    }

    /// Overrides the monitor configuration.
    #[must_use]
    pub fn monitor_config(mut self, config: MonitorConfig) -> Self {
        self.monitor_config = config;
        self.fingerprint_cache = OnceLock::new();
        self
    }

    /// Overrides the UID transformation options.
    #[must_use]
    pub fn transform_options(mut self, options: TransformOptions) -> Self {
        self.transform_options = options;
        self.fingerprint_cache = OnceLock::new();
        self
    }

    /// Overrides the base memory layout used for variant 0.
    #[must_use]
    pub fn base_layout(mut self, layout: MemoryLayout) -> Self {
        self.base_layout = layout;
        self.fingerprint_cache = OnceLock::new();
        self
    }

    /// Overrides the execution limits.
    #[must_use]
    pub fn run_limits(mut self, limits: RunLimits) -> Self {
        self.run_limits = limits;
        self.fingerprint_cache = OnceLock::new();
        self
    }

    /// Marks an additional file as unshared (each variant receives a
    /// verbatim copy unless the caller provisions diversified copies
    /// beforehand).
    #[must_use]
    pub fn unshared_file(mut self, path: &str) -> Self {
        self.extra_unshared.push(path.to_string());
        self.fingerprint_cache = OnceLock::new();
        self
    }

    /// Enables the static diversity verifier: [`compile`](Self::compile)
    /// runs [`nvariant_analyze::analyze_pair`] over every variant pair of a
    /// multi-variant plan and records the combined verdict in the artifact
    /// ([`CompiledSystem::analysis`]). Off by default — verification adds
    /// compile-time cost, and its verdict participates in the artifact
    /// fingerprint, so verified and unverified builds cache separately.
    #[must_use]
    pub fn verify_diversity(mut self, verify: bool) -> Self {
        self.verify_diversity = verify;
        self.fingerprint_cache = OnceLock::new();
        self
    }

    fn layout_for(&self, addr: AddressTransform) -> MemoryLayout {
        match addr {
            AddressTransform::Identity => self.base_layout,
            AddressTransform::PartitionHigh => self.base_layout.with_partition_bit(),
            AddressTransform::PartitionHighWithOffset(offset) => {
                self.base_layout.with_partition_bit().with_offset(offset)
            }
        }
    }

    /// The canonical content fingerprint of the artifact this builder would
    /// [`compile`](Self::compile): FNV-1a 64 over the program source (in its
    /// canonical pretty-printed form) plus every builder knob that shapes
    /// the compiled images — deployment configuration, transformation
    /// options, initial UID, monitor configuration, base memory layout,
    /// execution limits and the extra unshared files.
    ///
    /// The builder's *world* is deliberately excluded: compiled artifacts
    /// are world-independent (worlds are re-provisioned from any base via
    /// [`CompiledSystem::provision_world`]), so the same fingerprint is
    /// valid across every world an artifact deploys into. Two builders with
    /// equal fingerprints compile byte-identical variant images, which is
    /// what lets the [`ArtifactStore`](crate::ArtifactStore) reuse compiled
    /// artifacts across processes.
    ///
    /// The value is computed once per builder state and cached; every
    /// setter that shapes the artifact resets the cache, so repeated store
    /// lookups do not re-render the canonical source each time.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        *self
            .fingerprint_cache
            .get_or_init(|| self.compute_fingerprint())
    }

    /// The uncached fingerprint derivation behind
    /// [`fingerprint`](Self::fingerprint).
    fn compute_fingerprint(&self) -> u64 {
        let mut descriptor = String::from("nvariant-artifact-fingerprint v1\n");
        descriptor.push_str(&format!("config {:?}\n", self.config));
        descriptor.push_str(&format!("transform_options {:?}\n", self.transform_options));
        descriptor.push_str(&format!("initial_uid {}\n", self.initial_uid.as_u32()));
        descriptor.push_str(&format!("monitor_config {:?}\n", self.monitor_config));
        descriptor.push_str(&format!("base_layout {:?}\n", self.base_layout));
        descriptor.push_str(&format!("run_limits {:?}\n", self.run_limits));
        descriptor.push_str(&format!("extra_unshared {:?}\n", self.extra_unshared));
        descriptor.push_str(&format!("verify_diversity {}\n", self.verify_diversity));
        descriptor.push_str("source\n");
        descriptor.push_str(&nvariant_vm::pretty_print(&self.program));
        crate::store::fnv1a_64(descriptor.as_bytes())
    }

    /// Runs the expensive half of deployment — parsing already happened,
    /// so this transforms, compiles and provisions — and returns a
    /// [`CompiledSystem`] artifact that can be cheaply
    /// [instantiated](CompiledSystem::instantiate) many times.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if the program fails to transform or
    /// compile, or the variation cannot be instantiated.
    pub fn compile(self) -> Result<CompiledSystem, BuildError> {
        let fingerprint = self.fingerprint();
        let kernel = self
            .world
            .clone()
            .unwrap_or_else(|| WorldBuilder::standard().build());
        let n = self.config.variant_count();
        let transformer = UidTransformer::new(self.transform_options.clone());

        if n == 1 {
            let (program, stats) = if self.config.transforms_uids() {
                let variant =
                    transformer.transform_for_variant(&self.program, &UidTransform::Identity)?;
                (variant.program, variant.stats)
            } else {
                (self.program.clone(), TransformStats::default())
            };
            let compiled = compile_program(&program)?;
            return Ok(CompiledSystem {
                fingerprint,
                config: self.config,
                transform_stats: stats,
                kernel_template: kernel,
                initial_uid: self.initial_uid,
                run_limits: self.run_limits,
                extra_unshared: self.extra_unshared,
                // A single process has no pair to verify; the verdict of an
                // empty pair set is vacuously clean.
                analysis: self.verify_diversity.then(|| combined_verdict(&[])),
                plan: CompiledPlan::Single {
                    program: compiled,
                    layout: self.base_layout,
                },
            });
        }

        let multi = self
            .compile_multi_variants()?
            .expect("variant_count > 1 implies a multi-variant plan");
        let MultiVariants {
            variants,
            specs,
            programs: variant_programs,
            stats,
        } = multi;
        let analysis = if self.verify_diversity {
            Some(combined_verdict(&Self::analysis_reports(
                &variant_programs[0],
                &variants,
                &specs,
            )?))
        } else {
            None
        };

        // Register the unshared paths with the monitor (the *set* of paths
        // is a property of the configuration; the per-world file contents
        // are provisioned below, and re-provisioned for every alternative
        // world via `CompiledSystem::provision_world`).
        let mut monitor_config = self.monitor_config.clone();
        if self.config.uses_unshared_account_files() {
            for path in ["/etc/passwd", "/etc/group"] {
                if !monitor_config.is_unshared(path) {
                    monitor_config = monitor_config.with_unshared_file(path);
                }
            }
        }
        for path in &self.extra_unshared {
            if !monitor_config.is_unshared(path) {
                monitor_config = monitor_config.with_unshared_file(path);
            }
        }

        let mut system = CompiledSystem {
            fingerprint,
            config: self.config,
            transform_stats: stats,
            kernel_template: kernel,
            initial_uid: self.initial_uid,
            run_limits: self.run_limits,
            extra_unshared: self.extra_unshared,
            analysis,
            plan: CompiledPlan::Multi {
                variants,
                specs: VariantSet::new(specs),
                monitor_config,
            },
        };
        system.kernel_template = system.provision_world(&system.kernel_template);
        Ok(system)
    }

    /// Transforms and compiles the per-variant programs of a multi-variant
    /// plan; `None` for single-process configurations.
    fn compile_multi_variants(&self) -> Result<Option<MultiVariants>, BuildError> {
        let n = self.config.variant_count();
        if n == 1 {
            return Ok(None);
        }
        let variation = self.config.variation().ok_or_else(|| {
            BuildError::Variation("a multi-variant deployment requires a variation".to_string())
        })?;
        let specs = variation
            .try_variant_specs(n)
            .map_err(BuildError::Variation)?;

        // Per-variant program text.
        let transformer = UidTransformer::new(self.transform_options.clone());
        let (programs, stats) = if self.config.transforms_uids() {
            let uid_transforms: Vec<UidTransform> = specs.iter().map(|s| s.uid).collect();
            let variants = transformer.transform_for_variants(&self.program, &uid_transforms)?;
            let stats = variants.last().map(|v| v.stats).unwrap_or_default();
            (
                variants.into_iter().map(|v| v.program).collect::<Vec<_>>(),
                stats,
            )
        } else {
            (vec![self.program.clone(); n], TransformStats::default())
        };

        // Compile each variant.
        let mut variants = Vec::with_capacity(n);
        for (spec, program) in specs.iter().zip(&programs) {
            let compiled = compile_program(program)?;
            variants.push(CompiledVariant::new(
                compiled,
                self.layout_for(spec.addr),
                spec.tag,
            ));
        }
        Ok(Some(MultiVariants {
            variants,
            specs,
            programs,
            stats,
        }))
    }

    /// Runs the static diversity verifier over this builder's configuration
    /// and returns the **full** per-pair reports (variant 0 paired with
    /// each of the others) — what the `nvariant_analyze` CLI renders.
    /// Single-process configurations have no pairs and return an empty
    /// vector; [`nvariant_analyze::combined_verdict`] collapses either
    /// result into the verdict line [`compile`](Self::compile) stores.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if the program fails to transform or
    /// compile.
    pub fn analyze_diversity(&self) -> Result<Vec<AnalysisReport>, BuildError> {
        match self.compile_multi_variants()? {
            None => Ok(Vec::new()),
            Some(multi) => {
                Self::analysis_reports(&multi.programs[0], &multi.variants, &multi.specs)
            }
        }
    }

    /// Verifies variant 0 against each sibling. The UID context is derived
    /// from variant 0's transformed AST — available only here at compile
    /// time, which is why the artifact store persists the verdict rather
    /// than recomputing it on warm hits.
    fn analysis_reports(
        canonical: &Program,
        variants: &[CompiledVariant],
        specs: &[VariantSpec],
    ) -> Result<Vec<AnalysisReport>, BuildError> {
        let ctx = UidContext::analyze(canonical)
            .map_err(|e| BuildError::Transform(TransformError::Type(e)))?;
        let artifacts: Vec<VariantArtifact<'_>> = variants
            .iter()
            .zip(specs)
            .map(|(variant, spec)| VariantArtifact {
                program: &variant.program,
                image: Arc::clone(&variant.image),
                layout: variant.layout,
                spec: *spec,
            })
            .collect();
        Ok(artifacts[1..]
            .iter()
            .map(|other| analyze_pair(&artifacts[0], other, &ctx))
            .collect())
    }

    /// Builds the runnable system (equivalent to
    /// [`compile`](Self::compile) followed by
    /// [`instantiate`](CompiledSystem::instantiate); callers that deploy the
    /// same configuration more than once should hold on to the
    /// [`CompiledSystem`] instead).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if the program fails to transform or
    /// compile, or the variation cannot be instantiated.
    pub fn build(self) -> Result<RunnableSystem, BuildError> {
        Ok(self.compile()?.instantiate())
    }
}

/// The intermediate products of compiling a multi-variant plan, shared by
/// [`NVariantSystemBuilder::compile`] and
/// [`NVariantSystemBuilder::analyze_diversity`].
struct MultiVariants {
    variants: Vec<CompiledVariant>,
    specs: Vec<VariantSpec>,
    /// The transformed per-variant ASTs (index-aligned with `variants`);
    /// variant 0's program seeds the verifier's UID context.
    programs: Vec<Program>,
    stats: TransformStats,
}

/// The per-variant output of compilation: bytecode plus the memory layout
/// and instruction tag the variant runs under.
#[derive(Clone, Debug)]
pub(crate) struct CompiledVariant {
    pub(crate) program: CompiledProgram,
    pub(crate) layout: MemoryLayout,
    pub(crate) tag: u8,
    /// The code image restamped with `tag`, computed once at compile time
    /// and shared by every process this variant instantiates — per-cell
    /// instantiation copies no code bytes.
    pub(crate) image: Arc<[u8]>,
}

impl CompiledVariant {
    pub(crate) fn new(program: CompiledProgram, layout: MemoryLayout, tag: u8) -> Self {
        let image = program.retagged_image(tag);
        CompiledVariant {
            program,
            layout,
            tag,
            image,
        }
    }
}

#[derive(Clone, Debug)]
pub(crate) enum CompiledPlan {
    Single {
        program: CompiledProgram,
        layout: MemoryLayout,
    },
    Multi {
        variants: Vec<CompiledVariant>,
        specs: VariantSet,
        monitor_config: MonitorConfig,
    },
}

/// A build-once artifact: the transformed and compiled variant programs
/// plus the provisioned world template, for one [`DeploymentConfig`].
///
/// Producing a `CompiledSystem` (via [`NVariantSystemBuilder::compile`])
/// pays the full parse → transform → compile → provision pipeline once;
/// [`instantiate`](Self::instantiate) then stamps out independent
/// [`RunnableSystem`]s by cloning memory images only, which is an order of
/// magnitude cheaper. The artifact is immutable, `Send + Sync`, and is what
/// campaign engines share across worker threads.
#[derive(Clone, Debug)]
pub struct CompiledSystem {
    pub(crate) fingerprint: u64,
    pub(crate) config: DeploymentConfig,
    pub(crate) transform_stats: TransformStats,
    pub(crate) kernel_template: OsKernel,
    pub(crate) initial_uid: Uid,
    pub(crate) run_limits: RunLimits,
    pub(crate) extra_unshared: Vec<String>,
    /// The static diversity verifier's combined verdict line, present when
    /// the artifact was compiled with
    /// [`NVariantSystemBuilder::verify_diversity`] (or loaded from a store
    /// entry that recorded one).
    pub(crate) analysis: Option<String>,
    pub(crate) plan: CompiledPlan,
}

impl CompiledSystem {
    /// The deployment configuration this artifact was compiled for.
    #[must_use]
    pub fn config(&self) -> &DeploymentConfig {
        &self.config
    }

    /// The canonical content fingerprint the builder computed for this
    /// artifact ([`NVariantSystemBuilder::fingerprint`]): FNV-1a 64 over the
    /// canonical source text and every builder knob that shapes the compiled
    /// images. Stable across processes and machines, and the key under which
    /// the [`ArtifactStore`](crate::ArtifactStore) caches the artifact.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The change counts of the UID transformation applied at compile time
    /// (all zeros for untransformed configurations).
    #[must_use]
    pub fn transform_stats(&self) -> &TransformStats {
        &self.transform_stats
    }

    /// The static diversity verifier's combined verdict line, when the
    /// artifact was compiled with
    /// [`NVariantSystemBuilder::verify_diversity`] — `None` for unverified
    /// builds. Clean verdicts satisfy
    /// [`nvariant_analyze::verdict_is_clean`]; anything else names the
    /// first finding (property, pc, function). The verdict is persisted in
    /// the artifact store, so warm cache hits carry it without re-running
    /// the analysis.
    #[must_use]
    pub fn analysis(&self) -> Option<&str> {
        self.analysis.as_deref()
    }

    /// Number of variant processes an instantiation will run.
    #[must_use]
    pub fn variant_count(&self) -> usize {
        match &self.plan {
            CompiledPlan::Single { .. } => 1,
            CompiledPlan::Multi { variants, .. } => variants.len(),
        }
    }

    /// The provisioned world template instantiations start from.
    #[must_use]
    pub fn kernel_template(&self) -> &OsKernel {
        &self.kernel_template
    }

    /// Provisions an alternative world for this artifact: clones `base` and
    /// re-derives every per-variant unshared file from *that world's* state
    /// (the `/etc/passwd-N` / `/etc/group-N` copies are rendered from the
    /// base world's account database through each variant's reexpression
    /// function, and any extra unshared files are copied per variant).
    ///
    /// The returned kernel is what [`instantiate_in`](Self::instantiate_in)
    /// expects: provision once per (artifact, world) pair, then instantiate
    /// per run. The artifact's own [`kernel_template`](Self::kernel_template)
    /// is exactly `provision_world` applied to the builder's world at
    /// compile time.
    #[must_use]
    pub fn provision_world(&self, base: &OsKernel) -> OsKernel {
        let mut kernel = base.clone();
        let CompiledPlan::Multi { specs, .. } = &self.plan else {
            return kernel;
        };
        if self.config.uses_unshared_account_files() {
            let db = kernel.passwd().clone();
            for (variant, spec) in specs.iter() {
                let index = variant.index();
                let uid_transform = spec.uid;
                kernel.fs_mut().create(
                    &format!("/etc/passwd-{index}"),
                    db.render_passwd_with(|uid| uid_transform.apply(uid))
                        .into_bytes(),
                );
                kernel.fs_mut().create(
                    &format!("/etc/group-{index}"),
                    db.render_group_with(|gid| {
                        nvariant_types::Gid::new(
                            uid_transform.apply(Uid::new(gid.as_u32())).as_u32(),
                        )
                    })
                    .into_bytes(),
                );
            }
        }
        for path in &self.extra_unshared {
            provision_unshared_copies(&mut kernel, path, specs.len(), |_, data| data.to_vec());
        }
        kernel
    }

    /// Stamps out a fresh, independent [`RunnableSystem`].
    ///
    /// This performs *no* parsing, transformation or compilation: it clones
    /// the provisioned world template and the variant memory images, and
    /// wires up a monitor. Every instantiation starts from identical state,
    /// so two instantiations fed the same inputs run identically.
    #[must_use]
    pub fn instantiate(&self) -> RunnableSystem {
        self.instantiate_in(&self.kernel_template)
    }

    /// Stamps out a fresh [`RunnableSystem`] deployed into `world` instead
    /// of the artifact's own compile-time template — the world axis of a
    /// campaign matrix.
    ///
    /// `world` must be a kernel provisioned for this artifact (the
    /// artifact's [`kernel_template`](Self::kernel_template), or the result
    /// of [`provision_world`](Self::provision_world) on an alternative base
    /// world); deployments that rely on unshared per-variant files read them
    /// from the world they are instantiated into.
    #[must_use]
    pub fn instantiate_in(&self, world: &OsKernel) -> RunnableSystem {
        let mut kernel = world.clone();
        match &self.plan {
            CompiledPlan::Single { program, layout } => {
                let process = Process::new(program, *layout);
                let pid = kernel.spawn_process(self.initial_uid);
                RunnableSystem {
                    config: self.config.clone(),
                    transform_stats: self.transform_stats,
                    inner: Deployment::Single {
                        kernel: Box::new(kernel),
                        pid,
                        process: Box::new(process),
                        limits: self.run_limits,
                        finished: None,
                    },
                }
            }
            CompiledPlan::Multi {
                variants,
                specs,
                monitor_config,
            } => {
                let processes = variants
                    .iter()
                    .map(|v| Process::with_image(&v.program, v.layout, v.tag, Arc::clone(&v.image)))
                    .collect();
                let monitor = NVariantMonitor::new(
                    kernel,
                    processes,
                    specs.clone(),
                    self.initial_uid,
                    monitor_config.clone(),
                );
                RunnableSystem {
                    config: self.config.clone(),
                    transform_stats: self.transform_stats,
                    inner: Deployment::Multi {
                        monitor: Box::new(monitor),
                    },
                }
            }
        }
    }

    /// Stamps out a bare [`NVariantMonitor`] deployed into `world`, for
    /// callers that need step-wise control over the group (the model
    /// checker). Single-plan systems are wrapped in a one-variant identity
    /// monitor, which behaves exactly like a plain runner.
    #[must_use]
    pub fn instantiate_monitor_in(&self, world: &OsKernel) -> NVariantMonitor {
        let kernel = world.clone();
        match &self.plan {
            CompiledPlan::Single { program, layout } => NVariantMonitor::new(
                kernel,
                vec![Process::new(program, *layout)],
                VariantSet::new(vec![nvariant_diversity::VariantSpec::identity()]),
                self.initial_uid,
                MonitorConfig::default(),
            ),
            CompiledPlan::Multi {
                variants,
                specs,
                monitor_config,
            } => NVariantMonitor::new(
                kernel,
                variants
                    .iter()
                    .map(|v| Process::with_image(&v.program, v.layout, v.tag, Arc::clone(&v.image)))
                    .collect(),
                specs.clone(),
                self.initial_uid,
                monitor_config.clone(),
            ),
        }
    }
}

enum Deployment {
    Single {
        kernel: Box<OsKernel>,
        pid: Pid,
        process: Box<Process>,
        limits: RunLimits,
        finished: Option<SystemOutcome>,
    },
    Multi {
        monitor: Box<NVariantMonitor>,
    },
}

/// A deployed system, ready to run.
pub struct RunnableSystem {
    config: DeploymentConfig,
    transform_stats: TransformStats,
    inner: Deployment,
}

impl RunnableSystem {
    /// The deployment configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> &DeploymentConfig {
        &self.config
    }

    /// The change counts of the UID transformation applied at build time
    /// (all zeros for untransformed configurations).
    #[must_use]
    pub fn transform_stats(&self) -> &TransformStats {
        &self.transform_stats
    }

    /// Number of variant processes.
    #[must_use]
    pub fn variant_count(&self) -> usize {
        match &self.inner {
            Deployment::Single { .. } => 1,
            Deployment::Multi { monitor } => monitor.variant_count(),
        }
    }

    /// Read access to the simulated kernel (files, network, credentials).
    #[must_use]
    pub fn kernel(&self) -> &OsKernel {
        match &self.inner {
            Deployment::Single { kernel, .. } => kernel,
            Deployment::Multi { monitor } => monitor.kernel(),
        }
    }

    /// Mutable access to the simulated kernel, used to stage client
    /// requests before calling [`RunnableSystem::run`].
    pub fn kernel_mut(&mut self) -> &mut OsKernel {
        match &mut self.inner {
            Deployment::Single { kernel, .. } => kernel,
            Deployment::Multi { monitor } => monitor.kernel_mut(),
        }
    }

    /// The underlying monitor, for N-variant deployments.
    #[must_use]
    pub fn monitor(&self) -> Option<&NVariantMonitor> {
        match &self.inner {
            Deployment::Single { .. } => None,
            Deployment::Multi { monitor } => Some(monitor),
        }
    }

    /// Mutable access to the underlying monitor, for N-variant deployments.
    pub fn monitor_mut(&mut self) -> Option<&mut NVariantMonitor> {
        match &mut self.inner {
            Deployment::Single { .. } => None,
            Deployment::Multi { monitor } => Some(monitor),
        }
    }

    /// The virtual address of a named global variable in variant 0's
    /// address space, if it exists. Attack payload generators use this the
    /// way a real attacker uses a leaked or guessed address.
    #[must_use]
    pub fn global_addr(&self, name: &str) -> Option<nvariant_types::VirtAddr> {
        match &self.inner {
            Deployment::Single { process, .. } => process.global_addr(name),
            Deployment::Multi { monitor } => monitor
                .variant_process(nvariant_types::VariantId::P0)
                .global_addr(name),
        }
    }

    /// Runs the system to completion and returns the outcome. Calling `run`
    /// again returns the same outcome (the processes have terminated).
    pub fn run(&mut self) -> SystemOutcome {
        match &mut self.inner {
            Deployment::Single {
                kernel,
                pid,
                process,
                limits,
                finished,
            } => {
                if let Some(outcome) = finished {
                    return outcome.clone();
                }
                let run = Runner::new(*limits).run(kernel, *pid, process);
                let outcome = SystemOutcome::from_single(&run);
                *finished = Some(outcome.clone());
                outcome
            }
            Deployment::Multi { monitor } => {
                SystemOutcome::from_nvariant(&monitor.run_to_completion())
            }
        }
    }
}

impl fmt::Debug for RunnableSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunnableSystem")
            .field("config", &self.config)
            .field("transform_stats", &self.transform_stats)
            .field("variants", &self.variant_count())
            // `inner` holds live interpreter state with no useful rendering.
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_diversity::Variation;
    use nvariant_types::Port;

    /// A minimal privilege-dropping server fragment exercising UID syscalls,
    /// file I/O and the account database.
    const DROP_PRIVILEGES: &str = r"
        var server_uid: uid_t;
        fn main() -> int {
            var rc: int;
            server_uid = getuid();
            if (server_uid == 0) {
                rc = setuid(48);
                if (rc != 0) { return 2; }
            }
            if (geteuid() == 0) { return 3; }
            return 0;
        }
    ";

    fn outcome_for(config: DeploymentConfig) -> SystemOutcome {
        let mut system = NVariantSystemBuilder::from_source(DROP_PRIVILEGES)
            .unwrap()
            .config(config)
            .initial_uid(Uid::ROOT)
            .build()
            .unwrap();
        system.run()
    }

    #[test]
    fn all_four_paper_configurations_run_the_clean_program_identically() {
        for config in DeploymentConfig::paper_configurations() {
            let label = config.to_string();
            let outcome = outcome_for(config);
            assert_eq!(outcome.exit_status, Some(0), "{label}: {outcome}");
            assert!(!outcome.detected_attack(), "{label}");
        }
    }

    #[test]
    fn paper_configurations_verify_diversity_clean() {
        for config in DeploymentConfig::paper_configurations() {
            let label = config.to_string();
            let compiled = NVariantSystemBuilder::from_source(DROP_PRIVILEGES)
                .unwrap()
                .config(config)
                .verify_diversity(true)
                .compile()
                .unwrap();
            let verdict = compiled.analysis().expect("verified build has a verdict");
            assert!(
                nvariant_analyze::verdict_is_clean(verdict),
                "{label}: {verdict}"
            );
        }
        // Unverified builds carry no verdict.
        let unverified = NVariantSystemBuilder::from_source(DROP_PRIVILEGES)
            .unwrap()
            .config(DeploymentConfig::TwoVariantUid)
            .compile()
            .unwrap();
        assert!(unverified.analysis().is_none());
    }

    #[test]
    fn analyze_diversity_returns_full_reports() {
        let builder = NVariantSystemBuilder::from_source(DROP_PRIVILEGES)
            .unwrap()
            .config(DeploymentConfig::TwoVariantUid);
        let reports = builder.analyze_diversity().unwrap();
        assert_eq!(reports.len(), 1, "one pair for two variants");
        assert!(reports[0].is_clean(), "{}", reports[0].render());
        assert!(reports[0].instructions > 0);
        // Single-process configurations have no pairs.
        let single = NVariantSystemBuilder::from_source(DROP_PRIVILEGES)
            .unwrap()
            .config(DeploymentConfig::TransformedSingle);
        assert!(single.analyze_diversity().unwrap().is_empty());
    }

    #[test]
    fn transformed_configurations_report_change_counts() {
        let system = NVariantSystemBuilder::from_source(DROP_PRIVILEGES)
            .unwrap()
            .config(DeploymentConfig::TwoVariantUid)
            .build()
            .unwrap();
        let stats = system.transform_stats();
        assert!(stats.uid_constants_reexpressed >= 1);
        assert!(stats.comparison_exposures >= 2);
        assert!(stats.paper_change_total() > 0);

        let untransformed = NVariantSystemBuilder::from_source(DROP_PRIVILEGES)
            .unwrap()
            .config(DeploymentConfig::TwoVariantAddress)
            .build()
            .unwrap();
        assert_eq!(untransformed.transform_stats().total(), 0);
    }

    #[test]
    fn two_variant_uid_provisions_unshared_account_files() {
        let system = NVariantSystemBuilder::from_source(DROP_PRIVILEGES)
            .unwrap()
            .config(DeploymentConfig::TwoVariantUid)
            .build()
            .unwrap();
        let fs = system.kernel().fs();
        assert!(fs.exists("/etc/passwd-0"));
        assert!(fs.exists("/etc/passwd-1"));
        assert!(fs.exists("/etc/group-1"));
        // Variant 1's copy has the re-expressed UID for httpd.
        let text = String::from_utf8(fs.get("/etc/passwd-1").unwrap().data.to_vec()).unwrap();
        assert!(text.contains(&format!("{}", 48u32 ^ 0x7FFF_FFFF)));
        // Address-partitioned deployments do not need them.
        let system = NVariantSystemBuilder::from_source(DROP_PRIVILEGES)
            .unwrap()
            .config(DeploymentConfig::TwoVariantAddress)
            .build()
            .unwrap();
        assert!(!system.kernel().fs().exists("/etc/passwd-0"));
    }

    #[test]
    fn variant_counts_and_monitor_access() {
        let single = NVariantSystemBuilder::from_source(DROP_PRIVILEGES)
            .unwrap()
            .config(DeploymentConfig::Unmodified)
            .build()
            .unwrap();
        assert_eq!(single.variant_count(), 1);
        assert!(single.monitor().is_none());

        let multi = NVariantSystemBuilder::from_source(DROP_PRIVILEGES)
            .unwrap()
            .config(DeploymentConfig::TwoVariantUid)
            .build()
            .unwrap();
        assert_eq!(multi.variant_count(), 2);
        assert!(multi.monitor().is_some());
        assert!(format!("{multi:?}").contains("TwoVariantUid"));
    }

    #[test]
    fn composed_and_tagging_configurations_run_cleanly() {
        for config in [
            DeploymentConfig::composed_uid_and_address(),
            DeploymentConfig::two_variant_instruction_tagging(),
        ] {
            let label = config.to_string();
            let outcome = outcome_for(config);
            // Instruction tagging runs the untransformed program, whose UID
            // constants stay equivalent because neither variant re-expresses
            // UID data.
            assert_eq!(outcome.exit_status, Some(0), "{label}: {outcome}");
        }
    }

    #[test]
    fn three_variant_uid_deployment_is_supported() {
        let config = DeploymentConfig::Custom {
            variation: Variation::uid_diversity(),
            variants: 3,
            transform_uids: true,
        };
        let outcome = outcome_for(config);
        assert_eq!(outcome.exit_status, Some(0), "{outcome}");
        assert_eq!(outcome.metrics.variants, 3);
    }

    #[test]
    fn compiled_system_instantiates_independent_runs() {
        let compiled = NVariantSystemBuilder::from_source(DROP_PRIVILEGES)
            .unwrap()
            .config(DeploymentConfig::TwoVariantUid)
            .compile()
            .unwrap();
        assert_eq!(compiled.variant_count(), 2);
        assert_eq!(compiled.config(), &DeploymentConfig::TwoVariantUid);
        assert!(compiled.transform_stats().paper_change_total() > 0);
        // The template is provisioned once, at compile time.
        assert!(compiled.kernel_template().fs().exists("/etc/passwd-1"));

        let mut first = compiled.instantiate();
        let mut second = compiled.instantiate();
        // Mutating one instantiation leaves its siblings untouched.
        first.kernel_mut().fs_mut().create("/tmp/scratch", vec![1]);
        assert!(!second.kernel().fs().exists("/tmp/scratch"));
        assert!(!compiled.kernel_template().fs().exists("/tmp/scratch"));
        let a = first.run();
        let b = second.run();
        assert_eq!(a, b);
        assert_eq!(a.exit_status, Some(0));
        // The artifact is still usable after its instantiations ran.
        assert_eq!(compiled.instantiate().run(), a);
    }

    #[test]
    fn provision_world_rederives_unshared_files_from_the_new_world() {
        use nvariant_simos::WorldTemplate;
        let compiled = NVariantSystemBuilder::from_source(DROP_PRIVILEGES)
            .unwrap()
            .config(DeploymentConfig::TwoVariantUid)
            .compile()
            .unwrap();
        let alt = WorldTemplate::alternate_accounts();
        let provisioned = compiled.provision_world(alt.kernel());
        // The per-variant copies exist and reflect the *alternate* accounts:
        // httpd is 61 in that world, re-expressed in variant 1's copy.
        let text = String::from_utf8(
            provisioned
                .fs()
                .get("/etc/passwd-1")
                .expect("unshared copy provisioned")
                .data
                .to_vec(),
        )
        .unwrap();
        assert!(text.contains(&format!("{}", 61u32 ^ 0x7FFF_FFFF)), "{text}");
        assert!(
            !text.contains(&format!("{}", 48u32 ^ 0x7FFF_FFFF)),
            "{text}"
        );
        // The template never learns about the alternate world.
        assert!(!alt.kernel().fs().exists("/etc/passwd-1"));
        // And the base world passed in is untouched (provision clones).
        let template_text = String::from_utf8(
            compiled
                .kernel_template()
                .fs()
                .get("/etc/passwd-1")
                .unwrap()
                .data
                .to_vec(),
        )
        .unwrap();
        assert!(template_text.contains(&format!("{}", 48u32 ^ 0x7FFF_FFFF)));
    }

    #[test]
    fn instantiate_in_deploys_into_the_given_world() {
        use nvariant_simos::WorldTemplate;
        let compiled = NVariantSystemBuilder::from_source(DROP_PRIVILEGES)
            .unwrap()
            .config(DeploymentConfig::TwoVariantUid)
            .compile()
            .unwrap();
        let provisioned = compiled.provision_world(WorldTemplate::alternate_accounts().kernel());
        let mut system = compiled.instantiate_in(&provisioned);
        assert_eq!(
            system
                .kernel()
                .passwd()
                .lookup_user("httpd")
                .unwrap()
                .uid
                .as_u32(),
            61
        );
        let outcome = system.run();
        assert_eq!(outcome.exit_status, Some(0), "{outcome}");
        assert!(!outcome.detected_attack());
        // instantiate() is instantiate_in() on the artifact's own template.
        let a = compiled.instantiate().run();
        let b = compiled.instantiate_in(compiled.kernel_template()).run();
        assert_eq!(a, b);
    }

    #[test]
    fn single_process_artifacts_instantiate_fresh_processes() {
        let compiled = NVariantSystemBuilder::from_source(DROP_PRIVILEGES)
            .unwrap()
            .config(DeploymentConfig::Unmodified)
            .compile()
            .unwrap();
        assert_eq!(compiled.variant_count(), 1);
        assert_eq!(compiled.transform_stats().total(), 0);
        let a = compiled.instantiate().run();
        let b = compiled.instantiate().run();
        assert_eq!(a, b);
        assert_eq!(a.exit_status, Some(0));
    }

    #[test]
    fn fingerprint_is_cached_and_setter_invalidated() {
        let builder = NVariantSystemBuilder::from_source(DROP_PRIVILEGES).unwrap();
        let base = builder.fingerprint();
        assert_eq!(base, builder.fingerprint());
        // A clone of an unchanged builder keeps the same fingerprint.
        assert_eq!(builder.clone().fingerprint(), base);
        // Every artifact-shaping setter re-keys it.
        let changed = builder.clone().config(DeploymentConfig::Unmodified);
        assert_ne!(changed.fingerprint(), base);
        // The world is deliberately excluded from the fingerprint, so
        // setting it changes nothing.
        let worldly = builder.world(WorldBuilder::standard().build());
        assert_eq!(worldly.fingerprint(), base);
    }

    #[test]
    fn build_errors_are_reported() {
        assert!(matches!(
            NVariantSystemBuilder::from_source("fn broken("),
            Err(BuildError::Parse(_))
        ));
        let no_main = nvariant_vm::parse_program("fn helper() -> int { return 1; }").unwrap();
        assert!(matches!(
            NVariantSystemBuilder::from_program(no_main)
                .config(DeploymentConfig::Unmodified)
                .build(),
            Err(BuildError::Compile(_))
        ));
        let conflicting = DeploymentConfig::Custom {
            variation: Variation::composed(vec![
                Variation::uid_diversity(),
                Variation::uid_diversity_full_mask(),
            ]),
            variants: 2,
            transform_uids: true,
        };
        assert!(matches!(
            NVariantSystemBuilder::from_source(DROP_PRIVILEGES)
                .unwrap()
                .config(conflicting)
                .build(),
            Err(BuildError::Variation(_))
        ));
    }

    #[test]
    fn staged_network_requests_are_served_after_build() {
        // An end-to-end mini server under Configuration 4.
        let server = r#"
            fn main() -> int {
                var sock: int;
                var conn: int;
                var request: buf[256];
                var uid: uid_t;
                sock = socket();
                bind(sock, 80);
                listen(sock);
                uid = getuid();
                setuid(48);
                conn = accept(sock);
                while (conn >= 0) {
                    recv(conn, &request, 255);
                    send_str(conn, "HTTP/1.0 200 OK\r\n\r\nok");
                    close(conn);
                    conn = accept(sock);
                }
                return 0;
            }
        "#;
        let mut system = NVariantSystemBuilder::from_source(server)
            .unwrap()
            .config(DeploymentConfig::TwoVariantUid)
            .initial_uid(Uid::ROOT)
            .build()
            .unwrap();
        for _ in 0..3 {
            system
                .kernel_mut()
                .net_mut()
                .preload_request(Port::HTTP, b"GET / HTTP/1.0\r\n\r\n".to_vec());
        }
        let outcome = system.run();
        assert_eq!(outcome.exit_status, Some(0), "{outcome}");
        assert_eq!(system.kernel().net().connections().count(), 3);
        assert!(system
            .kernel()
            .net()
            .connections()
            .all(|c| c.response.starts_with(b"HTTP/1.0 200 OK")));
        assert!(outcome.metrics.monitor_checks > 10);
    }
}
