//! Unified outcomes and metrics across single-process and N-variant runs.

use nvariant_monitor::{Alarm, MonitorMetrics, NVariantOutcome};
use nvariant_vm::RunOutcome;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Execution counters in a shape shared by single-process and N-variant
/// deployments, used by the performance model behind the Table 3
/// reproduction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionMetrics {
    /// Number of variant processes that executed.
    pub variants: usize,
    /// Total bytecode instructions executed across all variants.
    pub total_instructions: u64,
    /// Synchronization points / system calls issued.
    pub syscalls: u64,
    /// Cross-variant equivalence checks performed by the monitor
    /// (zero for single-process deployments).
    pub monitor_checks: u64,
    /// Table 2 detection calls observed.
    pub detection_calls: u64,
    /// I/O bytes moved by the kernel (performed once regardless of the
    /// number of variants).
    pub io_bytes: u64,
}

impl ExecutionMetrics {
    /// Merges another run's counters into this one.
    pub fn absorb(&mut self, other: &ExecutionMetrics) {
        self.variants = self.variants.max(other.variants);
        self.total_instructions += other.total_instructions;
        self.syscalls += other.syscalls;
        self.monitor_checks += other.monitor_checks;
        self.detection_calls += other.detection_calls;
        self.io_bytes += other.io_bytes;
    }
}

impl From<MonitorMetrics> for ExecutionMetrics {
    fn from(m: MonitorMetrics) -> Self {
        ExecutionMetrics {
            variants: m.variants,
            total_instructions: m.total_instructions,
            syscalls: m.syscalls,
            monitor_checks: m.equivalence_checks,
            detection_calls: m.detection_calls,
            io_bytes: m.io_bytes(),
        }
    }
}

impl fmt::Display for ExecutionMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} variants, {} instructions, {} syscalls, {} checks, {} I/O bytes",
            self.variants,
            self.total_instructions,
            self.syscalls,
            self.monitor_checks,
            self.io_bytes
        )
    }
}

/// The outcome of running a deployed system to completion.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemOutcome {
    /// Exit status, if the program (or agreeing variant group) exited.
    pub exit_status: Option<i32>,
    /// The alarm that terminated an N-variant group, if any.
    pub alarm: Option<Alarm>,
    /// Human-readable description of a fault that terminated a
    /// single-process run, if any.
    pub fault: Option<String>,
    /// Execution counters.
    pub metrics: ExecutionMetrics,
}

impl SystemOutcome {
    /// Returns `true` if the monitor raised an alarm (N-variant deployments
    /// only; single-process deployments cannot detect attacks).
    #[must_use]
    pub fn detected_attack(&self) -> bool {
        self.alarm.is_some()
    }

    /// Returns `true` if the run ended with a normal, agreed exit.
    #[must_use]
    pub fn exited_normally(&self) -> bool {
        self.exit_status.is_some() && self.alarm.is_none() && self.fault.is_none()
    }

    /// Builds an outcome from a single-process run.
    #[must_use]
    pub fn from_single(outcome: &RunOutcome) -> Self {
        SystemOutcome {
            exit_status: outcome.exit_status,
            alarm: None,
            fault: outcome.fault.map(|f| f.to_string()),
            metrics: ExecutionMetrics {
                variants: 1,
                total_instructions: outcome.instructions,
                syscalls: outcome.syscalls,
                monitor_checks: 0,
                detection_calls: 0,
                io_bytes: outcome.io_bytes,
            },
        }
    }

    /// Builds an outcome from an N-variant monitored run.
    #[must_use]
    pub fn from_nvariant(outcome: &NVariantOutcome) -> Self {
        SystemOutcome {
            exit_status: outcome.exit_status,
            alarm: outcome.alarm.clone(),
            fault: None,
            metrics: outcome.metrics.into(),
        }
    }
}

impl fmt::Display for SystemOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.alarm, &self.fault, self.exit_status) {
            (Some(alarm), _, _) => write!(f, "attack detected: {alarm}"),
            (None, Some(fault), _) => write!(f, "faulted: {fault}"),
            (None, None, Some(status)) => write!(f, "exited with status {status}"),
            (None, None, None) => write!(f, "did not terminate"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_monitor::DivergenceKind;
    use nvariant_simos::Sysno;
    use nvariant_types::Word;

    #[test]
    fn single_process_conversion() {
        let run = RunOutcome {
            exit_status: Some(0),
            fault: None,
            instructions: 1234,
            syscalls: 7,
            io_bytes: 512,
        };
        let outcome = SystemOutcome::from_single(&run);
        assert!(outcome.exited_normally());
        assert!(!outcome.detected_attack());
        assert_eq!(outcome.metrics.variants, 1);
        assert_eq!(outcome.metrics.total_instructions, 1234);
        assert_eq!(outcome.metrics.io_bytes, 512);
        assert!(outcome.to_string().contains("status 0"));
    }

    #[test]
    fn faulted_single_process() {
        let run = RunOutcome {
            exit_status: None,
            fault: Some(nvariant_vm::Fault::StackOverflow),
            instructions: 10,
            syscalls: 0,
            io_bytes: 0,
        };
        let outcome = SystemOutcome::from_single(&run);
        assert!(!outcome.exited_normally());
        assert!(outcome.fault.as_deref().unwrap().contains("stack overflow"));
        assert!(outcome.to_string().contains("faulted"));
    }

    #[test]
    fn nvariant_conversion_carries_alarm_and_metrics() {
        let monitor_outcome = NVariantOutcome {
            exit_status: None,
            alarm: Some(Alarm::new(
                DivergenceKind::DetectionCheckFailed {
                    sysno: Sysno::UidValue,
                    canonical_values: vec![Word::ZERO, Word::from_u32(1)],
                },
                3,
            )),
            metrics: {
                let mut m = MonitorMetrics::new(2);
                m.total_instructions = 999;
                m.equivalence_checks = 12;
                m.detection_calls = 2;
                m.input_bytes = 100;
                m
            },
        };
        let outcome = SystemOutcome::from_nvariant(&monitor_outcome);
        assert!(outcome.detected_attack());
        assert_eq!(outcome.metrics.variants, 2);
        assert_eq!(outcome.metrics.monitor_checks, 12);
        assert_eq!(outcome.metrics.io_bytes, 100);
        assert!(outcome.to_string().contains("attack detected"));
    }

    #[test]
    fn metrics_absorb_accumulates() {
        let mut total = ExecutionMetrics::default();
        let one = ExecutionMetrics {
            variants: 2,
            total_instructions: 10,
            syscalls: 2,
            monitor_checks: 3,
            detection_calls: 1,
            io_bytes: 64,
        };
        total.absorb(&one);
        total.absorb(&one);
        assert_eq!(total.variants, 2);
        assert_eq!(total.total_instructions, 20);
        assert_eq!(total.io_bytes, 128);
        assert!(total.to_string().contains("2 variants"));
    }
}
