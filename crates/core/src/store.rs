//! The content-addressed artifact store: compiled systems cached on disk,
//! keyed by their canonical [fingerprint](crate::CompiledSystem::fingerprint),
//! so report binaries and CI skip the parse → transform → compile pipeline
//! across processes.
//!
//! The workspace's vendored `serde` is a no-op stand-in (the build
//! environment has no registry access), so artifacts are serialized with a
//! hand-rolled line-oriented text codec, the same style as the campaign
//! shard codec: Rust-`Debug`-quoted strings, hex-encoded byte images, and
//! explicit element counts so truncation is always detected.
//!
//! What is stored is exactly the *world-independent* half of a
//! [`CompiledSystem`]: the compiled variant images, memory layouts, variant
//! specifications, monitor configuration and transformation counters. The
//! provisioned kernel template is deliberately **not** stored — it is
//! re-derived at load time from the caller's base world through
//! [`CompiledSystem::provision_world`], which is cheap and is what already
//! makes one artifact deployable into every world of a campaign's
//! environment axis.
//!
//! Robustness contract: a corrupted, truncated or foreign cache entry is
//! *never* an error for the caller — [`ArtifactStore::get_or_compile`]
//! falls back to compiling (and atomically overwrites the bad entry), and
//! counts the event in its [`CacheStats`]. Writes go through a
//! write-then-rename so concurrent processes can never observe a torn
//! entry.

use crate::config::DeploymentConfig;
use crate::system::{BuildError, CompiledPlan, CompiledSystem, CompiledVariant};
use nvariant_diversity::{AddressTransform, UidTransform, VariantSet, VariantSpec, Variation};
use nvariant_monitor::{DivergencePolicy, MonitorConfig};
use nvariant_simos::{OsKernel, WorldBuilder};
use nvariant_transform::TransformStats;
use nvariant_types::hex::{hex_decode, hex_encode};
use nvariant_types::Uid;
use nvariant_vm::{CompiledProgram, FunctionSig, MemoryLayout, RunLimits, Type, TypeInfo};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Format version of the on-disk artifact files. v2 added the `analysis`
/// line (the static diversity verifier's verdict); v1 entries fail the
/// header check and are recompiled over, which is the codec's designed
/// upgrade path.
const HEADER: &str = "nvariant-artifact v2";

/// FNV-1a 64: the workspace's one stable cross-process hash, re-exported
/// from [`nvariant_types::fnv`] — the same construction the campaign plan
/// hash uses, because cache keys must survive process and machine
/// boundaries (unlike `std`'s `DefaultHasher`, whose output may change
/// between releases).
pub use nvariant_types::fnv::fnv1a_64;

/// A point-in-time snapshot of cache effectiveness counters, shared by the
/// artifact store and the campaign cell cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Entries served from the cache.
    pub hits: u64,
    /// Keys that had no cache entry (and were computed fresh).
    pub misses: u64,
    /// Entries that existed but were unusable — corrupt, truncated, or
    /// keyed to different content — and were recomputed and overwritten.
    pub invalidations: u64,
    /// The subset of `hits` that were served through the streaming cursor
    /// interface (folded cell-by-cell, never materialized as a whole-file
    /// `String` round trip). Always `<= hits`.
    pub streamed_hits: u64,
}

impl CacheStats {
    /// Component-wise sum (used when merging per-shard reports).
    #[must_use]
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            invalidations: self.invalidations + other.invalidations,
            streamed_hits: self.streamed_hits + other.streamed_hits,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} invalidations",
            self.hits, self.misses, self.invalidations
        )?;
        if self.streamed_hits > 0 {
            write!(f, " ({} hits streamed)", self.streamed_hits)?;
        }
        Ok(())
    }
}

/// Thread-safe live counters behind a [`CacheStats`] snapshot.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    streamed_hits: AtomicU64,
}

impl CacheCounters {
    /// Records a cache hit.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cache hit served through the streaming cursor interface
    /// (counts as a hit *and* bumps the distinct streamed counter).
    pub fn streamed_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.streamed_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cache miss.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an unusable (corrupt or mismatched) entry.
    pub fn invalidation(&self) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// The current snapshot.
    #[must_use]
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            streamed_hits: self.streamed_hits.load(Ordering::Relaxed),
        }
    }
}

/// The environment variable naming the shared cache directory, honoured by
/// every binary that doesn't receive an explicit `--cache-dir`.
pub const CACHE_DIR_ENV: &str = "NVARIANT_CACHE_DIR";

/// Writes `text` to `path` atomically: the content lands in a unique
/// sibling temp file first and is renamed into place, so a reader (in this
/// process or another) either sees the previous entry or the complete new
/// one — never a torn write. Two concurrent writers of the same key are
/// harmless: both rename complete files, and last-rename-wins.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory cannot be created or
/// the file cannot be written or renamed.
pub fn atomic_write_text(path: &Path, text: &str) -> std::io::Result<()> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let directory = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(directory)?;
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(format!(".tmp-{}-{unique}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    // Any failure past this point removes the temp file: a full disk must
    // degrade to recomputing, not to .tmp litter compounding the pressure.
    std::fs::write(&tmp, text)
        .and_then(|()| std::fs::rename(&tmp, path))
        .inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
}

/// Why an artifact file failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactParseError {
    /// 1-based line the error was detected on (0 for end-of-input errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ArtifactParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "artifact parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ArtifactParseError {}

/// The two-level compiled-artifact cache: an in-process memory map of
/// `Arc<CompiledSystem>` plus an optional disk layer under
/// `<root>/artifacts/<fingerprint>.txt`.
///
/// The store is keyed purely by content
/// ([`NVariantSystemBuilder::fingerprint`](crate::NVariantSystemBuilder::fingerprint)),
/// so entries never go stale: changing the source, the deployment
/// configuration, the transformation options or any other builder knob
/// changes the key, and the old entry is simply never looked up again.
#[derive(Debug)]
pub struct ArtifactStore {
    root: Option<PathBuf>,
    memory: Mutex<HashMap<u64, MemoryEntry>>,
    counters: CacheCounters,
}

/// A memory-layer entry: the cached artifact plus whether its kernel
/// template was provisioned from the *default* (standard) world. The
/// fingerprint deliberately excludes the world, so a hit may come from a
/// caller with a different world — the flag is what lets
/// [`ArtifactStore::get_or_compile`] decide whether the cached template can
/// be shared as-is or must be re-provisioned for the current caller.
#[derive(Clone, Debug)]
struct MemoryEntry {
    system: Arc<CompiledSystem>,
    standard_world: bool,
}

impl ArtifactStore {
    /// A store with no disk layer: artifacts are cached per process only
    /// (the pre-store behaviour of the process-wide compiled-httpd cache).
    #[must_use]
    pub fn memory_only() -> Self {
        ArtifactStore {
            root: None,
            memory: Mutex::new(HashMap::new()),
            counters: CacheCounters::default(),
        }
    }

    /// A store persisting artifacts under `<root>/artifacts/`.
    #[must_use]
    pub fn at(root: impl Into<PathBuf>) -> Self {
        ArtifactStore {
            root: Some(root.into()),
            memory: Mutex::new(HashMap::new()),
            counters: CacheCounters::default(),
        }
    }

    /// A store configured from the environment: the directory named by
    /// [`CACHE_DIR_ENV`] when set and non-empty, otherwise memory-only.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var_os(CACHE_DIR_ENV).filter(|v| !v.is_empty()) {
            Some(dir) => ArtifactStore::at(PathBuf::from(dir)),
            None => ArtifactStore::memory_only(),
        }
    }

    /// The disk layer's root directory, if the store has one.
    #[must_use]
    pub fn disk_root(&self) -> Option<&Path> {
        self.root.as_deref()
    }

    /// The on-disk path of one fingerprint's entry (whether or not it
    /// exists), or `None` for a memory-only store.
    #[must_use]
    pub fn entry_path(&self, fingerprint: u64) -> Option<PathBuf> {
        self.root.as_ref().map(|root| {
            root.join("artifacts")
                .join(format!("{fingerprint:016x}.txt"))
        })
    }

    /// Cache-effectiveness counters since this store was created.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.counters.snapshot()
    }

    /// The artifact for `builder`, from cache or freshly compiled, always
    /// with its kernel template provisioned from the **builder's** world.
    ///
    /// Lookup order: the in-process memory map, then the disk layer, then
    /// [`compile`](crate::NVariantSystemBuilder::compile). A fresh compile
    /// is inserted into both layers. Corrupt or mismatched disk entries are
    /// recompiled over, never surfaced as errors.
    ///
    /// The fingerprint excludes the world (the stored half of an artifact
    /// is world-independent), so a hit may have been cached by a caller
    /// with a *different* world; whenever the worlds cannot be proven to
    /// match — either side set an explicit world — the hit is returned as a
    /// fresh `Arc` whose template is re-provisioned from this builder's
    /// world ([`CompiledSystem::provision_world`], the cheap half of
    /// deployment). Default-world callers share one `Arc`.
    ///
    /// # Errors
    ///
    /// Returns the [`BuildError`] of the fallback compilation; cache-layer
    /// failures are absorbed (a broken cache degrades to compiling).
    pub fn get_or_compile(
        &self,
        builder: crate::NVariantSystemBuilder,
    ) -> Result<Arc<CompiledSystem>, BuildError> {
        let fingerprint = builder.fingerprint();
        let standard_world = builder.world.is_none();
        let reprovisioned_for = |cached: &CompiledSystem, base: &OsKernel| {
            let mut system = cached.clone();
            system.kernel_template = system.provision_world(base);
            Arc::new(system)
        };
        // Clone the entry out under a short-lived lock: the upgrade path
        // below re-locks the map, and `if let` would otherwise keep the
        // guard temporary alive across it.
        let cached_entry = {
            self.memory
                .lock()
                .expect("artifact store memory layer poisoned")
                .get(&fingerprint)
                .cloned()
        };
        if let Some(entry) = cached_entry {
            self.counters.hit();
            if standard_world && entry.standard_world {
                return Ok(entry.system);
            }
            let base = builder
                .world
                .clone()
                .unwrap_or_else(|| WorldBuilder::standard().build());
            let system = reprovisioned_for(&entry.system, &base);
            if standard_world {
                // Upgrade the slot to the shareable standard-world
                // template, so later default-world callers share this Arc
                // instead of re-provisioning every time.
                self.memory
                    .lock()
                    .expect("artifact store memory layer poisoned")
                    .insert(
                        fingerprint,
                        MemoryEntry {
                            system: Arc::clone(&system),
                            standard_world: true,
                        },
                    );
            }
            return Ok(system);
        }

        let base_world = builder
            .world
            .clone()
            .unwrap_or_else(|| WorldBuilder::standard().build());
        if let Some(path) = self.entry_path(fingerprint) {
            match std::fs::read_to_string(&path) {
                Ok(text) => match from_artifact_text(&text, &base_world) {
                    Ok(loaded) if loaded.fingerprint == fingerprint => {
                        self.counters.hit();
                        return Ok(self.insert_memory(fingerprint, loaded, standard_world));
                    }
                    // A parse failure or a foreign fingerprint in the right
                    // slot: unusable either way — recompile and overwrite.
                    Ok(_) | Err(_) => self.counters.invalidation(),
                },
                Err(_) => self.counters.miss(),
            }
        } else {
            self.counters.miss();
        }

        let compiled = builder.compile()?;
        debug_assert_eq!(compiled.fingerprint, fingerprint);
        if let Some(path) = self.entry_path(fingerprint) {
            if let Some(text) = to_artifact_text(&compiled) {
                // A full disk or read-only cache dir degrades to
                // memory-only caching; it must never fail the build.
                let _ = atomic_write_text(&path, &text);
            }
        }
        Ok(self.insert_memory(fingerprint, compiled, standard_world))
    }

    /// Inserts a freshly obtained artifact into the memory layer and
    /// returns the caller's copy. A racing insert of the same fingerprint
    /// keeps the first entry — both were provisioned for their respective
    /// callers, and the returned `Arc` is always the caller's own.
    fn insert_memory(
        &self,
        fingerprint: u64,
        system: CompiledSystem,
        standard_world: bool,
    ) -> Arc<CompiledSystem> {
        let system = Arc::new(system);
        let mut memory = self
            .memory
            .lock()
            .expect("artifact store memory layer poisoned");
        match memory.get(&fingerprint) {
            // Keep an existing standard-world entry (the shareable kind);
            // otherwise this caller's copy becomes (or replaces) the entry,
            // preferring a standard-world template in the slot so future
            // default-world callers can share it.
            Some(entry) if entry.standard_world && !standard_world => {}
            _ => {
                memory.insert(
                    fingerprint,
                    MemoryEntry {
                        system: Arc::clone(&system),
                        standard_world,
                    },
                );
            }
        }
        system
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn quote(s: &str) -> String {
    format!("{s:?}")
}

fn type_token(ty: Type) -> String {
    match ty {
        Type::Int => "int".to_string(),
        Type::UidT => "uid".to_string(),
        Type::GidT => "gid".to_string(),
        Type::Ptr => "ptr".to_string(),
        Type::Void => "void".to_string(),
        Type::Buf(n) => format!("buf:{n}"),
    }
}

fn uid_transform_token(transform: UidTransform) -> String {
    match transform {
        UidTransform::Identity => "id".to_string(),
        UidTransform::Xor(mask) => format!("xor:{mask:#010x}"),
    }
}

fn addr_transform_token(transform: AddressTransform) -> String {
    match transform {
        AddressTransform::Identity => "id".to_string(),
        AddressTransform::PartitionHigh => "part".to_string(),
        AddressTransform::PartitionHighWithOffset(offset) => format!("part:{offset:#010x}"),
    }
}

/// A variation as a single space-free token, so it embeds in one line:
/// `addr`, `addrext:<offset>`, `tag`, `uid:<mask>`, or
/// `composed(a,b,...)` (recursively). Returns `None` for variation kinds
/// this codec version does not know (the enum is `#[non_exhaustive]`);
/// callers skip disk caching for those instead of storing something lossy.
fn variation_token(variation: &Variation) -> Option<String> {
    Some(match variation {
        Variation::AddressPartitioning => "addr".to_string(),
        Variation::ExtendedAddressPartitioning { offset } => format!("addrext:{offset:#010x}"),
        Variation::InstructionTagging => "tag".to_string(),
        Variation::UidDiversity { mask } => format!("uid:{mask:#010x}"),
        Variation::Composed(parts) => {
            let tokens: Option<Vec<String>> = parts.iter().map(variation_token).collect();
            format!("composed({})", tokens?.join(","))
        }
        _ => return None,
    })
}

fn config_line(config: &DeploymentConfig) -> Option<String> {
    Some(match config {
        DeploymentConfig::Unmodified => "unmodified".to_string(),
        DeploymentConfig::TransformedSingle => "transformed-single".to_string(),
        DeploymentConfig::TwoVariantAddress => "two-variant-address".to_string(),
        DeploymentConfig::TwoVariantUid => "two-variant-uid".to_string(),
        DeploymentConfig::Custom {
            variation,
            variants,
            transform_uids,
        } => format!(
            "custom {variants} {} {}",
            u8::from(*transform_uids),
            variation_token(variation)?
        ),
    })
}

fn render_program(out: &mut String, program: &CompiledProgram) {
    out.push_str(&format!("program {}\n", program.entry_offset));
    out.push_str(&format!("code {}\n", hex_encode(program.code())));
    out.push_str(&format!("data {}\n", hex_encode(&program.globals_image)));
    out.push_str(&format!("globals {}\n", program.globals_map.len()));
    for (name, (offset, ty)) in &program.globals_map {
        out.push_str(&format!("g {} {offset} {}\n", quote(name), type_token(*ty)));
    }
    out.push_str(&format!("funcs {}\n", program.functions.len()));
    for (name, offset) in &program.functions {
        out.push_str(&format!("f {} {offset}\n", quote(name)));
    }
    let info = &program.type_info;
    out.push_str(&format!("tglobals {}\n", info.globals.len()));
    for (name, ty) in &info.globals {
        out.push_str(&format!("tg {} {}\n", quote(name), type_token(*ty)));
    }
    out.push_str(&format!("tfns {}\n", info.functions.len()));
    for (name, sig) in &info.functions {
        let mut line = format!("tf {} {}", quote(name), type_token(sig.ret));
        for param in sig.params.iter().map(|&t| type_token(t)) {
            line.push(' ');
            line.push_str(&param);
        }
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&format!("tlocals {}\n", info.locals.len()));
    for (function, table) in &info.locals {
        out.push_str(&format!("tl {} {}\n", quote(function), table.len()));
        for (name, ty) in table {
            out.push_str(&format!("tlv {} {}\n", quote(name), type_token(*ty)));
        }
    }
    out.push_str("endprogram\n");
}

/// Serializes the world-independent half of a compiled system to the
/// artifact text format. Returns `None` if the artifact uses an enum
/// variant this codec version cannot represent (possible only for
/// `#[non_exhaustive]` enums grown after this version shipped); such
/// artifacts simply stay memory-cached.
///
/// The second line is a FNV-1a checksum of everything after it. The
/// fingerprint cannot play that role — it is derived from the *builder's
/// inputs*, not from the serialized bytes — so without the checksum a
/// flipped bit inside a code image could still parse and then run, and
/// every consumer (including a `--verify-rerun` that compiles through the
/// same store) would agree on the wrong artifact.
#[must_use]
pub fn to_artifact_text(system: &CompiledSystem) -> Option<String> {
    let mut out = String::new();
    out.push_str(&format!("fingerprint {:#018x}\n", system.fingerprint));
    out.push_str(&format!("config {}\n", config_line(&system.config)?));
    let s = &system.transform_stats;
    out.push_str(&format!(
        "stats {} {} {} {} {} {}\n",
        s.uid_constants_reexpressed,
        s.implicit_constants_made_explicit,
        s.single_value_exposures,
        s.comparison_exposures,
        s.conditional_checks,
        s.log_sinks_sanitized
    ));
    out.push_str(&format!("initial_uid {}\n", system.initial_uid.as_u32()));
    out.push_str(&format!(
        "run_limits {} {}\n",
        system.run_limits.max_steps_per_slice, system.run_limits.max_syscalls
    ));
    out.push_str(&format!("xfiles {}\n", system.extra_unshared.len()));
    for path in &system.extra_unshared {
        out.push_str(&format!("xfile {}\n", quote(path)));
    }
    match &system.analysis {
        Some(verdict) => out.push_str(&format!("analysis {}\n", quote(verdict))),
        None => out.push_str("analysis -\n"),
    }
    match &system.plan {
        CompiledPlan::Single { program, layout } => {
            out.push_str("plan single\n");
            out.push_str(&format!(
                "layout {} {} {} {}\n",
                layout.code_base, layout.globals_base, layout.stack_top, layout.stack_size
            ));
            render_program(&mut out, program);
        }
        CompiledPlan::Multi {
            variants,
            specs,
            monitor_config,
        } => {
            out.push_str(&format!("plan multi {}\n", variants.len()));
            for (index, variant) in variants.iter().enumerate() {
                out.push_str(&format!(
                    "variant {index} {} {} {} {} {}\n",
                    variant.tag,
                    variant.layout.code_base,
                    variant.layout.globals_base,
                    variant.layout.stack_top,
                    variant.layout.stack_size
                ));
                render_program(&mut out, &variant.program);
            }
            out.push_str(&format!("specs {}\n", specs.len()));
            for (_, spec) in specs.iter() {
                out.push_str(&format!(
                    "spec {} {} {}\n",
                    uid_transform_token(spec.uid),
                    addr_transform_token(spec.addr),
                    spec.tag
                ));
            }
            out.push_str(&format!(
                "monitor {} {} {} {}\n",
                monitor_config.max_steps_per_slice,
                monitor_config.max_syscalls,
                match monitor_config.policy {
                    DivergencePolicy::KillAndReport => "kill",
                    DivergencePolicy::ReportAndContinue => "continue",
                },
                if monitor_config.detection_checks {
                    "checks"
                } else {
                    "nochecks"
                }
            ));
            out.push_str(&format!("mfiles {}\n", monitor_config.unshared_files.len()));
            for path in &monitor_config.unshared_files {
                out.push_str(&format!("mfile {}\n", quote(path)));
            }
        }
    }
    out.push_str("end\n");
    Some(format!(
        "{HEADER}\nchecksum {:#018x}\n{out}",
        fnv1a_64(out.trim_end_matches('\n').as_bytes())
    ))
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Inverse of [`quote`]: parses a Rust-`Debug`-quoted string literal at the
/// *start* of `input`, returning the string and the remainder after the
/// closing quote (with one separating space consumed, if present).
fn take_quoted(input: &str) -> Result<(String, &str), String> {
    let inner = input
        .strip_prefix('"')
        .ok_or_else(|| format!("expected a quoted string, got {input:?}"))?;
    let mut out = String::new();
    let mut chars = inner.char_indices();
    while let Some((index, c)) = chars.next() {
        match c {
            '"' => {
                let rest = &inner[index + 1..];
                return Ok((out, rest.strip_prefix(' ').unwrap_or(rest)));
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\'')) => out.push('\''),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, '0')) => out.push('\0'),
                Some((_, 'u')) => {
                    let hex: String = chars
                        .by_ref()
                        .map(|(_, c)| c)
                        .skip_while(|&c| c == '{')
                        .take_while(|&c| c != '}')
                        .collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape in {input:?}"))?;
                    out.push(char::from_u32(code).ok_or_else(|| "bad \\u escape".to_string())?);
                }
                other => return Err(format!("bad escape \\{other:?} in {input:?}")),
            },
            c => out.push(c),
        }
    }
    Err(format!("unterminated quoted string in {input:?}"))
}

fn parse_type(token: &str) -> Result<Type, String> {
    Ok(match token {
        "int" => Type::Int,
        "uid" => Type::UidT,
        "gid" => Type::GidT,
        "ptr" => Type::Ptr,
        "void" => Type::Void,
        _ => {
            let n = token
                .strip_prefix("buf:")
                .and_then(|n| n.parse::<u32>().ok())
                .ok_or_else(|| format!("unknown type token {token:?}"))?;
            Type::Buf(n)
        }
    })
}

fn parse_hex_u32(token: &str) -> Option<u32> {
    let hex = token.strip_prefix("0x")?;
    u32::from_str_radix(hex, 16).ok()
}

fn parse_uid_transform(token: &str) -> Result<UidTransform, String> {
    match token {
        "id" => Ok(UidTransform::Identity),
        _ => token
            .strip_prefix("xor:")
            .and_then(parse_hex_u32)
            .map(UidTransform::Xor)
            .ok_or_else(|| format!("unknown UID transform token {token:?}")),
    }
}

fn parse_addr_transform(token: &str) -> Result<AddressTransform, String> {
    match token {
        "id" => Ok(AddressTransform::Identity),
        "part" => Ok(AddressTransform::PartitionHigh),
        _ => token
            .strip_prefix("part:")
            .and_then(parse_hex_u32)
            .map(AddressTransform::PartitionHighWithOffset)
            .ok_or_else(|| format!("unknown address transform token {token:?}")),
    }
}

/// Recursive-descent inverse of [`variation_token`].
fn parse_variation(token: &str) -> Result<Variation, String> {
    match token {
        "addr" => return Ok(Variation::AddressPartitioning),
        "tag" => return Ok(Variation::InstructionTagging),
        _ => {}
    }
    if let Some(mask) = token.strip_prefix("uid:").and_then(parse_hex_u32) {
        return Ok(Variation::UidDiversity { mask });
    }
    if let Some(offset) = token.strip_prefix("addrext:").and_then(parse_hex_u32) {
        return Ok(Variation::ExtendedAddressPartitioning { offset });
    }
    let inner = token
        .strip_prefix("composed(")
        .and_then(|t| t.strip_suffix(')'))
        .ok_or_else(|| format!("unknown variation token {token:?}"))?;
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (index, c) in inner.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(parse_variation(&inner[start..index])?);
                start = index + 1;
            }
            _ => {}
        }
    }
    if !inner.is_empty() {
        parts.push(parse_variation(&inner[start..])?);
    }
    Ok(Variation::Composed(parts))
}

fn parse_config(rest: &str) -> Result<DeploymentConfig, String> {
    match rest {
        "unmodified" => return Ok(DeploymentConfig::Unmodified),
        "transformed-single" => return Ok(DeploymentConfig::TransformedSingle),
        "two-variant-address" => return Ok(DeploymentConfig::TwoVariantAddress),
        "two-variant-uid" => return Ok(DeploymentConfig::TwoVariantUid),
        _ => {}
    }
    let tokens: Vec<&str> = rest.split(' ').collect();
    if tokens.len() != 4 || tokens[0] != "custom" {
        return Err(format!("unknown configuration {rest:?}"));
    }
    let variants: usize = tokens[1]
        .parse()
        .map_err(|_| format!("bad variant count {:?}", tokens[1]))?;
    let transform_uids = match tokens[2] {
        "0" => false,
        "1" => true,
        other => return Err(format!("bad transform_uids flag {other:?}")),
    };
    Ok(DeploymentConfig::Custom {
        variation: parse_variation(tokens[3])?,
        variants,
        transform_uids,
    })
}

/// A line-cursor over the artifact text, with error positions.
struct Parser<'a> {
    text: &'a str,
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    current: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            text,
            lines: text.lines().enumerate(),
            current: 0,
        }
    }

    fn fail<T>(&self, message: impl Into<String>) -> Result<T, ArtifactParseError> {
        Err(ArtifactParseError {
            line: self.current,
            message: message.into(),
        })
    }

    fn lift<T>(&self, result: Result<T, String>) -> Result<T, ArtifactParseError> {
        result.map_err(|message| ArtifactParseError {
            line: self.current,
            message,
        })
    }

    fn next_line(&mut self) -> Result<&'a str, ArtifactParseError> {
        if let Some((index, line)) = self.lines.next() {
            self.current = index + 1;
            Ok(line)
        } else {
            self.current = 0;
            Err(ArtifactParseError {
                line: 0,
                message: "unexpected end of artifact file".to_string(),
            })
        }
    }

    fn expect_field(&mut self, key: &str) -> Result<&'a str, ArtifactParseError> {
        let line = self.next_line()?;
        match line.strip_prefix(key).and_then(|r| r.strip_prefix(' ')) {
            Some(rest) => Ok(rest),
            None => self.fail(format!("expected {key:?} field, got {line:?}")),
        }
    }

    fn parse_number<T: std::str::FromStr>(&self, token: &str) -> Result<T, ArtifactParseError> {
        token.parse::<T>().map_err(|_| ArtifactParseError {
            line: self.current,
            message: format!("expected a number, got {token:?}"),
        })
    }

    fn expect_number<T: std::str::FromStr>(&mut self, key: &str) -> Result<T, ArtifactParseError> {
        let token = self.expect_field(key)?;
        self.parse_number(token)
    }

    fn numbers<const N: usize>(&mut self, key: &str) -> Result<[u64; N], ArtifactParseError> {
        let rest = self.expect_field(key)?;
        let tokens: Vec<&str> = rest.split(' ').collect();
        if tokens.len() != N {
            return self.fail(format!("{key} needs {N} fields, got {}", tokens.len()));
        }
        let mut out = [0u64; N];
        for (slot, token) in out.iter_mut().zip(tokens) {
            *slot = self.parse_number(token)?;
        }
        Ok(out)
    }

    fn parse_layout(&self, rest: &str) -> Result<MemoryLayout, ArtifactParseError> {
        let tokens: Vec<&str> = rest.split(' ').collect();
        if tokens.len() != 4 {
            return self.fail(format!("layout needs 4 fields, got {}", tokens.len()));
        }
        Ok(MemoryLayout {
            code_base: self.parse_number(tokens[0])?,
            globals_base: self.parse_number(tokens[1])?,
            stack_top: self.parse_number(tokens[2])?,
            stack_size: self.parse_number(tokens[3])?,
        })
    }

    fn quoted_list(
        &mut self,
        count_key: &str,
        item_key: &str,
    ) -> Result<Vec<String>, ArtifactParseError> {
        let count: usize = self.expect_number(count_key)?;
        let mut out = Vec::new();
        for _ in 0..checked_count(count, self)? {
            let rest = self.expect_field(item_key)?;
            let (value, trailing) = self.lift(take_quoted(rest))?;
            if !trailing.is_empty() {
                return self.fail(format!("unexpected trailing content {trailing:?}"));
            }
            out.push(value);
        }
        Ok(out)
    }

    fn parse_program(&mut self) -> Result<CompiledProgram, ArtifactParseError> {
        let entry_offset: u32 = self.expect_number("program")?;
        let code = {
            let token = self.expect_field("code")?;
            self.lift(hex_decode(token))?
        };
        let globals_image = {
            let token = self.expect_field("data")?;
            self.lift(hex_decode(token))?
        };

        let mut globals_map = std::collections::BTreeMap::new();
        for _ in 0..checked_count(self.expect_number("globals")?, self)? {
            let rest = self.expect_field("g")?;
            let (name, rest) = self.lift(take_quoted(rest))?;
            let Some((offset, ty)) = rest.split_once(' ') else {
                return self.fail("global needs offset and type");
            };
            let offset: u32 = self.parse_number(offset)?;
            let ty = self.lift(parse_type(ty))?;
            globals_map.insert(name, (offset, ty));
        }

        let mut functions = std::collections::BTreeMap::new();
        for _ in 0..checked_count(self.expect_number("funcs")?, self)? {
            let rest = self.expect_field("f")?;
            let (name, offset) = self.lift(take_quoted(rest))?;
            functions.insert(name, self.parse_number(offset)?);
        }

        let mut type_info = TypeInfo::default();
        for _ in 0..checked_count(self.expect_number("tglobals")?, self)? {
            let rest = self.expect_field("tg")?;
            let (name, ty) = self.lift(take_quoted(rest))?;
            type_info.globals.insert(name, self.lift(parse_type(ty))?);
        }
        for _ in 0..checked_count(self.expect_number("tfns")?, self)? {
            let rest = self.expect_field("tf")?;
            let (name, rest) = self.lift(take_quoted(rest))?;
            let mut tokens = rest.split(' ').filter(|t| !t.is_empty());
            let ret = {
                let token = tokens
                    .next()
                    .ok_or(())
                    .or_else(|()| self.fail("function signature needs a return type"))?;
                self.lift(parse_type(token))?
            };
            let params: Result<Vec<Type>, ArtifactParseError> =
                tokens.map(|t| self.lift(parse_type(t))).collect();
            type_info.functions.insert(
                name,
                FunctionSig {
                    params: params?,
                    ret,
                },
            );
        }
        for _ in 0..checked_count(self.expect_number("tlocals")?, self)? {
            let rest = self.expect_field("tl")?;
            let (function, count) = self.lift(take_quoted(rest))?;
            let count: usize = self.parse_number(count)?;
            let mut table = std::collections::BTreeMap::new();
            for _ in 0..checked_count(count, self)? {
                let rest = self.expect_field("tlv")?;
                let (name, ty) = self.lift(take_quoted(rest))?;
                table.insert(name, self.lift(parse_type(ty))?);
            }
            type_info.locals.insert(function, table);
        }

        let line = self.next_line()?;
        if line != "endprogram" {
            return self.fail(format!("expected \"endprogram\", got {line:?}"));
        }
        Ok(CompiledProgram::new(
            code,
            globals_image,
            globals_map,
            functions,
            entry_offset,
            type_info,
        ))
    }

    fn parse(mut self, base_world: &OsKernel) -> Result<CompiledSystem, ArtifactParseError> {
        let header = self.next_line()?;
        if header != HEADER {
            return self.fail(format!("expected {HEADER:?}, got {header:?}"));
        }
        // The whole-body checksum must hold before anything is trusted: the
        // fingerprint is derived from the builder's inputs, not from these
        // bytes, so it cannot detect a flipped bit inside a code image that
        // still parses. Trailing newlines are excluded on both sides, so an
        // editor's or a text-mode transfer's extra blank lines stay
        // harmless (the structural parser tolerates them too).
        let declared = {
            let token = self.expect_field("checksum")?;
            token
                .strip_prefix("0x")
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .ok_or(())
                .or_else(|()| self.fail(format!("expected 0x-prefixed checksum, got {token:?}")))?
        };
        let body = {
            let mut offset = 0;
            for _ in 0..2 {
                offset += match self.text[offset..].find('\n') {
                    Some(position) => position + 1,
                    None => return self.fail("artifact ends before its body"),
                };
            }
            self.text[offset..].trim_end_matches('\n')
        };
        if fnv1a_64(body.as_bytes()) != declared {
            return self.fail("artifact checksum mismatch: the entry is corrupt".to_string());
        }
        let fingerprint = {
            let token = self.expect_field("fingerprint")?;
            token
                .strip_prefix("0x")
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .ok_or(())
                .or_else(|()| {
                    self.fail(format!("expected 0x-prefixed fingerprint, got {token:?}"))
                })?
        };
        let config = {
            let rest = self.expect_field("config")?;
            self.lift(parse_config(rest))?
        };
        let [a, b, c, d, e, f] = self.numbers::<6>("stats")?;
        let transform_stats = TransformStats {
            uid_constants_reexpressed: a as usize,
            implicit_constants_made_explicit: b as usize,
            single_value_exposures: c as usize,
            comparison_exposures: d as usize,
            conditional_checks: e as usize,
            log_sinks_sanitized: f as usize,
        };
        let initial_uid = Uid::new(self.expect_number::<u32>("initial_uid")?);
        let [max_steps_per_slice, max_syscalls] = self.numbers::<2>("run_limits")?;
        let run_limits = RunLimits {
            max_steps_per_slice,
            max_syscalls,
        };
        let extra_unshared = self.quoted_list("xfiles", "xfile")?;
        let analysis = {
            let rest = self.expect_field("analysis")?;
            if rest == "-" {
                None
            } else {
                let (verdict, trailing) = self.lift(take_quoted(rest))?;
                if !trailing.is_empty() {
                    return self.fail(format!("unexpected trailing content {trailing:?}"));
                }
                Some(verdict)
            }
        };

        let plan = match self.expect_field("plan")? {
            "single" => {
                let layout = {
                    let rest = self.expect_field("layout")?;
                    self.parse_layout(rest)?
                };
                let program = self.parse_program()?;
                CompiledPlan::Single { program, layout }
            }
            rest => {
                let count: usize = match rest.strip_prefix("multi ") {
                    Some(count) => self.parse_number(count)?,
                    None => {
                        return self
                            .fail(format!("expected \"single\" or \"multi N\", got {rest:?}"))
                    }
                };
                let count = checked_count(count, &self)?;
                let mut variants = Vec::with_capacity(count);
                for index in 0..count {
                    let rest = self.expect_field("variant")?;
                    let tokens: Vec<&str> = rest.split(' ').collect();
                    if tokens.len() != 6 || tokens[0] != index.to_string() {
                        return self.fail(format!("expected variant {index} header, got {rest:?}"));
                    }
                    let tag: u8 = self.parse_number(tokens[1])?;
                    let layout = self.parse_layout(&tokens[2..].join(" "))?;
                    let program = self.parse_program()?;
                    variants.push(CompiledVariant::new(program, layout, tag));
                }
                let spec_count: usize = self.expect_number("specs")?;
                if spec_count != count {
                    return self.fail(format!(
                        "artifact declares {count} variants but {spec_count} specs"
                    ));
                }
                let mut specs = Vec::with_capacity(spec_count);
                for _ in 0..spec_count {
                    let rest = self.expect_field("spec")?;
                    let tokens: Vec<&str> = rest.split(' ').collect();
                    if tokens.len() != 3 {
                        return self.fail(format!("spec needs 3 fields, got {}", tokens.len()));
                    }
                    specs.push(
                        VariantSpec::identity()
                            .with_uid(self.lift(parse_uid_transform(tokens[0]))?)
                            .with_addr(self.lift(parse_addr_transform(tokens[1]))?)
                            .with_tag(self.parse_number(tokens[2])?),
                    );
                }
                let monitor_rest = self.expect_field("monitor")?;
                let tokens: Vec<&str> = monitor_rest.split(' ').collect();
                if tokens.len() != 4 {
                    return self.fail(format!("monitor needs 4 fields, got {}", tokens.len()));
                }
                let policy = match tokens[2] {
                    "kill" => DivergencePolicy::KillAndReport,
                    "continue" => DivergencePolicy::ReportAndContinue,
                    other => return self.fail(format!("unknown divergence policy {other:?}")),
                };
                let detection_checks = match tokens[3] {
                    "checks" => true,
                    "nochecks" => false,
                    other => return self.fail(format!("unknown detection mode {other:?}")),
                };
                let unshared_files = self.quoted_list("mfiles", "mfile")?;
                let monitor_config = MonitorConfig {
                    unshared_files,
                    max_steps_per_slice: self.parse_number(tokens[0])?,
                    max_syscalls: self.parse_number(tokens[1])?,
                    policy,
                    detection_checks,
                };
                CompiledPlan::Multi {
                    variants,
                    specs: VariantSet::new(specs),
                    monitor_config,
                }
            }
        };

        let line = self.next_line()?;
        if line != "end" {
            return self.fail(format!("expected \"end\", got {line:?}"));
        }
        for (index, line) in self.lines.by_ref() {
            if line.is_empty() {
                continue;
            }
            self.current = index + 1;
            return self.fail(format!("unexpected content after \"end\": {line:?}"));
        }

        // The stored half is world-independent; re-derive the provisioned
        // kernel template from the caller's base world, exactly as
        // `compile()` does for the builder's world.
        let mut system = CompiledSystem {
            fingerprint,
            config,
            transform_stats,
            kernel_template: base_world.clone(),
            initial_uid,
            run_limits,
            extra_unshared,
            analysis,
            plan,
        };
        system.kernel_template = system.provision_world(base_world);
        Ok(system)
    }
}

/// Caps parsed element counts: an artifact file is finite, so any declared
/// count beyond a generous bound is corruption, not data — reject it before
/// the loop allocates or starves on a truncated file.
fn checked_count(count: usize, parser: &Parser<'_>) -> Result<usize, ArtifactParseError> {
    const CAP: usize = 1 << 20;
    if count > CAP {
        return Err(ArtifactParseError {
            line: parser.current,
            message: format!("implausible element count {count}"),
        });
    }
    Ok(count)
}

/// Parses an artifact file and re-provisions its kernel template from
/// `base_world`.
///
/// # Errors
///
/// Returns an [`ArtifactParseError`] naming the offending line if the text
/// is not a well-formed artifact file.
pub fn from_artifact_text(
    text: &str,
    base_world: &OsKernel,
) -> Result<CompiledSystem, ArtifactParseError> {
    Parser::new(text).parse(base_world)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NVariantSystemBuilder;

    const SERVER: &str = r"
        var greeting: buf[16];
        fn main() -> int {
            var uid: uid_t;
            uid = getuid();
            if (uid == 0) { return setuid(48); }
            return 0;
        }
    ";

    fn builder(config: DeploymentConfig) -> NVariantSystemBuilder {
        NVariantSystemBuilder::from_source(SERVER)
            .unwrap()
            .config(config)
    }

    fn all_configs() -> Vec<DeploymentConfig> {
        let mut configs = DeploymentConfig::paper_configurations();
        configs.push(DeploymentConfig::composed_uid_and_address());
        configs.push(DeploymentConfig::two_variant_instruction_tagging());
        configs
    }

    #[test]
    fn artifact_text_round_trips_every_configuration() {
        let world = WorldBuilder::standard().build();
        for config in all_configs() {
            let label = config.label();
            let compiled = builder(config).compile().unwrap();
            let text = to_artifact_text(&compiled).expect("codec covers built-in configs");
            let loaded =
                from_artifact_text(&text, &world).unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(loaded.fingerprint(), compiled.fingerprint(), "{label}");
            assert_eq!(loaded.config(), compiled.config(), "{label}");
            assert_eq!(
                loaded.transform_stats(),
                compiled.transform_stats(),
                "{label}"
            );
            assert_eq!(loaded.variant_count(), compiled.variant_count(), "{label}");
            // The re-provisioned template behaves identically: instantiate
            // and run both artifacts and compare outcomes.
            assert_eq!(
                loaded.instantiate().run(),
                compiled.instantiate().run(),
                "{label}"
            );
            // And the serialization is a fixed point.
            assert_eq!(to_artifact_text(&loaded).unwrap(), text, "{label}");
        }
    }

    #[test]
    fn loaded_artifacts_expose_the_same_symbol_addresses() {
        // Attack payload generators read symbol addresses from the
        // instantiated system; the codec must preserve the globals map.
        let compiled = builder(DeploymentConfig::TwoVariantUid).compile().unwrap();
        let text = to_artifact_text(&compiled).unwrap();
        let world = WorldBuilder::standard().build();
        let loaded = from_artifact_text(&text, &world).unwrap();
        let a = compiled.instantiate().global_addr("greeting");
        let b = loaded.instantiate().global_addr("greeting");
        assert!(a.is_some());
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let base = builder(DeploymentConfig::TwoVariantUid).fingerprint();
        // Stable across builder clones and across compile.
        assert_eq!(base, builder(DeploymentConfig::TwoVariantUid).fingerprint());
        assert_eq!(
            base,
            builder(DeploymentConfig::TwoVariantUid)
                .compile()
                .unwrap()
                .fingerprint()
        );
        // Every input perturbs it.
        assert_ne!(
            base,
            builder(DeploymentConfig::TwoVariantAddress).fingerprint()
        );
        assert_ne!(
            base,
            NVariantSystemBuilder::from_source("fn main() -> int { return 1; }")
                .unwrap()
                .config(DeploymentConfig::TwoVariantUid)
                .fingerprint()
        );
        assert_ne!(
            base,
            builder(DeploymentConfig::TwoVariantUid)
                .initial_uid(Uid::new(48))
                .fingerprint()
        );
        assert_ne!(
            base,
            builder(DeploymentConfig::TwoVariantUid)
                .transform_options(nvariant_transform::TransformOptions {
                    insert_detection_calls: false,
                    ..Default::default()
                })
                .fingerprint()
        );
        assert_ne!(
            base,
            builder(DeploymentConfig::TwoVariantUid)
                .unshared_file("/etc/motd")
                .fingerprint()
        );
        assert_ne!(
            base,
            builder(DeploymentConfig::TwoVariantUid)
                .run_limits(RunLimits {
                    max_steps_per_slice: 1,
                    max_syscalls: 1,
                })
                .fingerprint()
        );
        // The world is *not* part of the fingerprint: artifacts are
        // world-independent and re-provisioned at load.
        assert_eq!(
            base,
            builder(DeploymentConfig::TwoVariantUid)
                .world(WorldBuilder::standard().listen_port(8080).build())
                .fingerprint()
        );
    }

    #[test]
    fn variation_tokens_round_trip() {
        let variations = [
            Variation::AddressPartitioning,
            Variation::ExtendedAddressPartitioning { offset: 0x40 },
            Variation::InstructionTagging,
            Variation::uid_diversity(),
            Variation::uid_diversity_full_mask(),
            Variation::composed(vec![
                Variation::uid_diversity(),
                Variation::composed(vec![
                    Variation::AddressPartitioning,
                    Variation::InstructionTagging,
                ]),
            ]),
            Variation::Composed(vec![]),
        ];
        for variation in variations {
            let token = variation_token(&variation).unwrap();
            assert!(!token.contains(' '), "{token}");
            assert_eq!(parse_variation(&token).unwrap(), variation, "{token}");
        }
        assert!(parse_variation("nonsense").is_err());
        assert!(parse_variation("composed(addr,nonsense)").is_err());
    }

    #[test]
    fn store_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("nvariant-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::at(&dir);
        let first = store
            .get_or_compile(builder(DeploymentConfig::TwoVariantUid))
            .unwrap();
        assert_eq!(store.stats().misses, 1);
        assert_eq!(store.stats().hits, 0);
        let entry = store.entry_path(first.fingerprint()).unwrap();
        assert!(entry.is_file(), "{}", entry.display());

        // Memory hit in the same store.
        let second = store
            .get_or_compile(builder(DeploymentConfig::TwoVariantUid))
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(store.stats().hits, 1);

        // A fresh store (a "new process") hits the disk layer.
        let other = ArtifactStore::at(&dir);
        let loaded = store_loaded(&other, DeploymentConfig::TwoVariantUid);
        assert_eq!(other.stats().hits, 1);
        assert_eq!(other.stats().misses, 0);
        assert_eq!(loaded.instantiate().run(), first.instantiate().run());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn store_loaded(store: &ArtifactStore, config: DeploymentConfig) -> Arc<CompiledSystem> {
        store.get_or_compile(builder(config)).unwrap()
    }

    #[test]
    fn analysis_verdicts_persist_and_option_changes_reanalyze() {
        let dir =
            std::env::temp_dir().join(format!("nvariant-store-analysis-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let verified = |options: nvariant_transform::TransformOptions| {
            NVariantSystemBuilder::from_source(
                r"
                var server_uid: uid_t = 48;
                fn main() -> int {
                    if (server_uid == 0) { return 2; }
                    return setuid(server_uid);
                }
                ",
            )
            .unwrap()
            .config(DeploymentConfig::TwoVariantUid)
            .transform_options(options)
            .verify_diversity(true)
        };

        let store = ArtifactStore::at(&dir);
        let clean = store
            .get_or_compile(verified(nvariant_transform::TransformOptions::default()))
            .unwrap();
        let verdict = clean.analysis().expect("verified build has a verdict");
        assert!(nvariant_analyze::verdict_is_clean(verdict), "{verdict}");
        // The verdict line is part of the disk entry...
        let entry = store.entry_path(clean.fingerprint()).unwrap();
        let text = std::fs::read_to_string(&entry).unwrap();
        assert!(text.contains("analysis \"clean"), "{text}");
        // ...so a fresh store ("new process") serves it warm — a disk hit,
        // no recompilation and no re-analysis.
        let fresh = ArtifactStore::at(&dir);
        let warm = fresh
            .get_or_compile(verified(nvariant_transform::TransformOptions::default()))
            .unwrap();
        assert_eq!(fresh.stats().hits, 1);
        assert_eq!(fresh.stats().misses, 0);
        assert_eq!(warm.analysis(), clean.analysis());

        // Changing a transform option re-keys the artifact, so the weakened
        // transform is compiled fresh and re-analyzed — the stale clean
        // verdict cannot be served for it.
        let weakened = fresh
            .get_or_compile(verified(nvariant_transform::TransformOptions {
                skip_reexpression_globals: vec!["server_uid".to_string()],
                ..nvariant_transform::TransformOptions::default()
            }))
            .unwrap();
        assert_eq!(fresh.stats().misses, 1);
        assert_ne!(weakened.fingerprint(), clean.fingerprint());
        let verdict = weakened.analysis().expect("verified build has a verdict");
        assert!(!nvariant_analyze::verdict_is_clean(verdict), "{verdict}");
        assert!(verdict.contains("P-Residual"), "{verdict}");

        // Turning verification off is a separate cache entry with no
        // verdict — analyzed and unanalyzed builds never share a slot.
        let unverified = fresh
            .get_or_compile(
                verified(nvariant_transform::TransformOptions::default()).verify_diversity(false),
            )
            .unwrap();
        assert!(unverified.analysis().is_none());
        assert_ne!(unverified.fingerprint(), clean.fingerprint());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_fall_back_to_recompile_and_are_overwritten() {
        let dir =
            std::env::temp_dir().join(format!("nvariant-store-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let seed_store = ArtifactStore::at(&dir);
        let compiled = store_loaded(&seed_store, DeploymentConfig::TwoVariantUid);
        let entry = seed_store.entry_path(compiled.fingerprint()).unwrap();

        for corruption in [
            "garbage".to_string(),
            String::new(),
            // Truncation at half the file.
            {
                let text = std::fs::read_to_string(&entry).unwrap();
                text[..text.len() / 2].to_string()
            },
            // A valid file claiming a different fingerprint in the slot.
            std::fs::read_to_string(&entry).unwrap().replacen(
                "fingerprint 0x",
                "fingerprint 0xf",
                1,
            ),
            // One flipped hex digit inside a code image: structurally a
            // perfectly valid file — only the body checksum catches it.
            {
                let text = std::fs::read_to_string(&entry).unwrap();
                let at = text.find("\ncode ").unwrap() + "\ncode ".len() + 10;
                let mut bytes = text.into_bytes();
                bytes[at] = if bytes[at] == b'0' { b'1' } else { b'0' };
                String::from_utf8(bytes).unwrap()
            },
        ] {
            std::fs::write(&entry, &corruption).unwrap();
            let fresh = ArtifactStore::at(&dir);
            let loaded = store_loaded(&fresh, DeploymentConfig::TwoVariantUid);
            assert_eq!(fresh.stats().invalidations, 1, "{corruption:?}");
            assert_eq!(loaded.instantiate().run(), compiled.instantiate().run());
            // The bad entry was overwritten with a good one.
            let reread = ArtifactStore::at(&dir);
            let again = store_loaded(&reread, DeploymentConfig::TwoVariantUid);
            assert_eq!(reread.stats().hits, 1);
            assert_eq!(again.instantiate().run(), compiled.instantiate().run());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hits_are_reprovisioned_for_the_callers_world() {
        use nvariant_simos::WorldTemplate;
        // The fingerprint excludes the world, so two builders differing
        // only in their world share one cache key — but each caller must
        // get a template provisioned from *its* world, not whoever filled
        // the cache first.
        let store = ArtifactStore::memory_only();
        let with_world = |world: Option<OsKernel>| {
            let mut b = builder(DeploymentConfig::TwoVariantUid);
            if let Some(world) = world {
                b = b.world(world);
            }
            b
        };
        let alt = || WorldTemplate::alternate_accounts().kernel().clone();

        // Filled by an explicit-world caller first...
        let first = store.get_or_compile(with_world(Some(alt()))).unwrap();
        assert_eq!(
            first
                .kernel_template()
                .passwd()
                .lookup_user("httpd")
                .unwrap()
                .uid
                .as_u32(),
            61
        );
        // ...a default-world hit must NOT inherit the alternate accounts.
        let standard = store.get_or_compile(with_world(None)).unwrap();
        assert_eq!(
            standard
                .kernel_template()
                .passwd()
                .lookup_user("httpd")
                .unwrap()
                .uid
                .as_u32(),
            48
        );
        // And an explicit-world hit gets its own world back.
        let again = store.get_or_compile(with_world(Some(alt()))).unwrap();
        assert_eq!(
            again
                .kernel_template()
                .passwd()
                .lookup_user("httpd")
                .unwrap()
                .uid
                .as_u32(),
            61
        );
        assert_eq!(store.stats().hits, 2);
        assert_eq!(store.stats().misses, 1);
        // Default-world callers still share one Arc once a default-world
        // entry occupies the slot.
        let shared_a = store.get_or_compile(with_world(None)).unwrap();
        let shared_b = store.get_or_compile(with_world(None)).unwrap();
        assert!(Arc::ptr_eq(&shared_a, &shared_b));
    }

    #[test]
    fn memory_only_store_never_touches_disk() {
        let store = ArtifactStore::memory_only();
        assert!(store.disk_root().is_none());
        assert!(store.entry_path(1).is_none());
        let first = store_loaded(&store, DeploymentConfig::Unmodified);
        let second = store_loaded(&store, DeploymentConfig::Unmodified);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(store.stats().misses, 1);
        assert_eq!(store.stats().hits, 1);
    }

    #[test]
    fn atomic_writes_replace_complete_files() {
        let dir = std::env::temp_dir().join(format!("nvariant-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("entry.txt");
        atomic_write_text(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        atomic_write_text(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        // No temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_errors_name_the_offending_line() {
        let world = WorldBuilder::standard().build();
        let err = from_artifact_text("not an artifact", &world).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));

        let compiled = builder(DeploymentConfig::TwoVariantUid).compile().unwrap();
        let text = to_artifact_text(&compiled).unwrap();
        // Truncation at every line boundary is a clean error.
        let total = text.lines().count();
        for keep in 0..total {
            let truncated = text.lines().take(keep).fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            });
            let err = from_artifact_text(&truncated, &world)
                .expect_err("a proper prefix can never be a complete artifact");
            assert!(err.line <= keep + 1, "kept {keep}, error line {}", err.line);
        }
        // Trailing content after `end` is rejected; blank lines tolerated.
        assert!(from_artifact_text(&format!("{text}{text}"), &world).is_err());
        assert!(from_artifact_text(&format!("{text}\n\n"), &world).is_ok());
    }
}
