//! `nvariant` — the public facade of the *Security through Redundant Data
//! Diversity* reproduction.
//!
//! This crate assembles the underlying pieces — the SimC compiler and VM
//! ([`nvariant_vm`]), the simulated kernel ([`nvariant_simos`]), the
//! reexpression framework ([`nvariant_diversity`]), the source-to-source UID
//! transformation ([`nvariant_transform`]) and the N-variant monitor
//! ([`nvariant_monitor`]) — into one builder-style API for deploying a SimC
//! program under any of the paper's configurations:
//!
//! | Paper configuration | [`DeploymentConfig`] |
//! |---|---|
//! | 1 — unmodified Apache | [`DeploymentConfig::Unmodified`] |
//! | 2 — UID-transformed Apache, single process | [`DeploymentConfig::TransformedSingle`] |
//! | 3 — 2-variant address-space partitioning | [`DeploymentConfig::TwoVariantAddress`] |
//! | 4 — 2-variant UID variation | [`DeploymentConfig::TwoVariantUid`] |
//! | (future work §5/§7) composed variations, N > 2 | [`DeploymentConfig::Custom`] |
//!
//! # Quickstart
//!
//! ```
//! use nvariant::prelude::*;
//!
//! // A privilege-dropping program with no vulnerabilities.
//! let source = r#"
//!     fn main() -> int {
//!         var uid: uid_t;
//!         uid = getuid();
//!         if (uid == 0) { return setuid(48); }
//!         return 0;
//!     }
//! "#;
//!
//! // Deploy it as the paper's Configuration 4: a 2-variant UID-diversity
//! // system with unshared passwd files and the full UID transformation.
//! let mut system = NVariantSystemBuilder::from_source(source)?
//!     .config(DeploymentConfig::TwoVariantUid)
//!     .initial_uid(Uid::ROOT)
//!     .build()?;
//! let outcome = system.run();
//! assert_eq!(outcome.exit_status, Some(0));
//! assert!(!outcome.detected_attack());
//! # Ok::<(), nvariant::BuildError>(())
//! ```
//!
//! # Build once, run many
//!
//! `build()` is sugar for [`NVariantSystemBuilder::compile`] followed by
//! [`CompiledSystem::instantiate`]. Callers that deploy the same
//! configuration repeatedly (scenario sweeps, attack matrices, load tests)
//! should compile once and instantiate per run — instantiation clones
//! memory images only and is orders of magnitude cheaper than the full
//! pipeline:
//!
//! ```
//! # use nvariant::prelude::*;
//! # let source = "fn main() -> int { return 0; }";
//! let compiled = NVariantSystemBuilder::from_source(source)?
//!     .config(DeploymentConfig::TwoVariantUid)
//!     .compile()?;
//! for _ in 0..3 {
//!     // Each instantiation is an independent system from the same template.
//!     assert_eq!(compiled.instantiate().run().exit_status, Some(0));
//! }
//! # Ok::<(), nvariant::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod outcome;
pub mod store;
pub mod system;

pub use config::DeploymentConfig;
pub use nvariant_analyze as analyze;
pub use nvariant_analyze::AnalysisReport;
pub use outcome::{ExecutionMetrics, SystemOutcome};
pub use store::{ArtifactStore, CacheStats};
pub use system::{BuildError, CompiledSystem, NVariantSystemBuilder, RunnableSystem};

/// Convenient glob-import of the most commonly used types across the
/// workspace.
pub mod prelude {
    pub use crate::config::DeploymentConfig;
    pub use crate::outcome::{ExecutionMetrics, SystemOutcome};
    pub use crate::system::{BuildError, CompiledSystem, NVariantSystemBuilder, RunnableSystem};
    pub use nvariant_diversity::{UidTransform, Variation};
    pub use nvariant_monitor::{Alarm, DivergenceKind, MonitorConfig};
    pub use nvariant_simos::{OsKernel, WorldBuilder};
    pub use nvariant_types::{Gid, Port, Uid, VariantId};
    pub use nvariant_vm::{parse_program, parse_with_stdlib, pretty_print};
}
