//! End-to-end fleet tests with real binaries: `campaignd` drives
//! `campaign_report` workers through `CommandTransport` and the
//! `scripts/fake_remote.sh` wrapper — two simulated hosts with their own
//! scratch dirs, one of them dead — and the merged report is byte-identical
//! to a single-host in-process run. A seeded shard corruption must exit
//! with the divergence code and name the exact first differing cell
//! coordinate.

use nvariant_apps::campaigns::report_matrix_plan;
use std::path::PathBuf;
use std::process::Command;

fn campaignd() -> Command {
    let mut command = Command::new(env!("CARGO_BIN_EXE_campaignd"));
    command
        .arg("--worker-bin")
        .arg(env!("CARGO_BIN_EXE_campaign_report"));
    command
}

fn fake_remote() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../scripts/fake_remote.sh")
        .canonicalize()
        .expect("scripts/fake_remote.sh exists")
}

/// A per-test scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fleet-e2e-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn two_simulated_hosts_with_one_dead_merge_byte_identically_to_a_single_host_run() {
    let dir = scratch("crash-host");
    let canonical_file = dir.join("fleet-canonical.txt");
    let output = campaignd()
        .args(["--quick", "--shards", "4", "--workers", "1", "--no-cache"])
        .args(["--hosts", "alpha,beta", "--quarantine-after", "1"])
        .arg("--transport")
        .arg(format!("cmd:{} {{host}}", fake_remote().display()))
        .arg("--dir")
        .arg(&dir)
        .arg("--canonical-out")
        .arg(&canonical_file)
        .env("FAKE_REMOTE_ROOT", dir.join("remotes"))
        .env("FAKE_REMOTE_CRASH_HOSTS", "beta")
        .env("FAKE_REMOTE_LATENCY_MS", "5")
        .output()
        .expect("campaignd runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "fleet run failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );

    // The dead host was quarantined after its first failure and stayed
    // quarantined (alpha was healthy the whole run), with the failures on
    // the books.
    assert!(
        stdout.contains("host beta: quarantined after 1 consecutive failure(s)"),
        "{stdout}"
    );
    assert!(stdout.contains("per-host stats:"), "{stdout}");
    assert!(stdout.contains("quarantined at end of run"), "{stdout}");
    assert!(stdout.contains("host alpha:"), "{stdout}");
    assert!(stdout.contains("healthy at end of run"), "{stdout}");

    // Shard files really lived host-side: the workers ran inside the fake
    // remotes' per-host scratch dirs, and retrieval went through the
    // prefix (`... cat FILE`), not the coordinator's filesystem.
    assert!(dir.join("remotes/alpha").is_dir(), "alpha scratch exists");
    assert!(
        std::fs::read_dir(dir.join("remotes/alpha"))
            .expect("alpha scratch readable")
            .filter_map(Result::ok)
            .any(|entry| entry.file_name().to_string_lossy().starts_with("shard-")),
        "alpha executed at least one shard host-side"
    );

    // Byte-identical to the single-host in-process run of the same plan.
    let fleet_canonical = std::fs::read_to_string(&canonical_file).expect("canonical written");
    let (plan, _, _) = report_matrix_plan(true);
    assert_eq!(fleet_canonical, plan.run(2).canonical_text());
}

#[test]
fn seeded_corruption_exits_with_the_divergence_code_naming_the_exact_coordinate() {
    let dir = scratch("corruption");
    let cache_dir = dir.join("cache");
    // Authoritative results into the shared cache, in-process.
    let (plan, _, _) = report_matrix_plan(true);
    let cached_plan = plan.clone().with_cache_dir(&cache_dir);
    let _ = cached_plan.run(2);

    let output = campaignd()
        .args(["--quick", "--shards", "2", "--workers", "1"])
        .args(["--corrupt-shard", "1"])
        .arg("--cache-dir")
        .arg(&cache_dir)
        .arg("--dir")
        .arg(&dir)
        .output()
        .expect("campaignd runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);

    // Exit code 5: divergence, distinct from exhaustion (3) and merge
    // rejection (4).
    assert_eq!(
        output.status.code(),
        Some(5),
        "stdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("corrupted in transit"), "{stdout}");
    assert!(
        stderr.contains("diverges from shared cell cache"),
        "{stderr}"
    );
    // The finder names the corrupted shard's exact first cell: shard 1 of
    // 2 holds the plan's odd-indexed cells round-robin, so its first cell
    // is the plan's second.
    let (config, world, scenario, replicate) = cached_plan.shard(1, 2)[0].coordinates();
    assert!(
        stderr.contains(&format!(
            "first divergence at cell #0 (config {config}, world {world}, scenario {scenario}, \
             replicate {replicate})"
        )),
        "{stderr}"
    );
    // Both rendered outcomes are shown.
    assert!(stderr.contains("expected:"), "{stderr}");
    assert!(stderr.contains("observed:"), "{stderr}");
    // And the diagnosis was logarithmic, not a whole-report diff.
    assert!(stderr.contains("prefix-digest probes"), "{stderr}");
}

#[test]
fn dropped_shard_files_on_a_host_are_retried_and_the_run_still_succeeds() {
    let dir = scratch("drop-host");
    let output = campaignd()
        .args(["--quick", "--shards", "2", "--workers", "1", "--no-cache"])
        .args(["--hosts", "gamma,delta", "--quarantine-after", "1"])
        .arg("--transport")
        .arg(format!("cmd:{} {{host}}", fake_remote().display()))
        .arg("--dir")
        .arg(&dir)
        .env("FAKE_REMOTE_ROOT", dir.join("remotes"))
        .env("FAKE_REMOTE_DROP_HOSTS", "delta")
        .output()
        .expect("campaignd runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "fleet run failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    // The dropped file surfaced as a retrieval failure, charged to the
    // host, and the retry landed elsewhere.
    assert!(stdout.contains("shard file retrieval failed"), "{stdout}");
    assert!(
        stdout.contains("host delta: quarantined after 1 consecutive failure(s)"),
        "{stdout}"
    );
}

#[test]
fn help_documents_the_distinct_exit_codes() {
    let output = Command::new(env!("CARGO_BIN_EXE_campaignd"))
        .arg("--help")
        .output()
        .expect("campaignd --help runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("exit codes:"), "{stdout}");
    assert!(stdout.contains("3 worker exhaustion"), "{stdout}");
    assert!(stdout.contains("4 merge validation"), "{stdout}");
    assert!(stdout.contains("5 divergence"), "{stdout}");
    assert!(stdout.contains("--hosts"), "{stdout}");
    assert!(stdout.contains("--transport"), "{stdout}");
    assert!(stdout.contains("--quarantine-after"), "{stdout}");
}
