//! End-to-end tests of the `campaignd` coordinator as real processes: the
//! coordinator spawns `campaign_report --shard` workers, survives a killed
//! worker by retrying its shard, and produces a merged report
//! byte-identical to an unsharded in-process run — while an exhausted
//! shard, a missing shard file, or a foreign plan hash fails the run
//! without executing any cells.

use nvariant_apps::campaigns::report_matrix_plan;
use nvariant_campaign::CampaignReport;
use std::path::PathBuf;
use std::process::Command;

fn campaignd() -> Command {
    let mut command = Command::new(env!("CARGO_BIN_EXE_campaignd"));
    command
        .arg("--worker-bin")
        .arg(env!("CARGO_BIN_EXE_campaign_report"));
    command
}

/// A per-test scratch directory under the target-adjacent temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaignd-e2e-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn coordinator_merges_shards_byte_identically_even_after_killing_a_worker() {
    let dir = scratch("kill-retry");
    let merged_file = dir.join("merged.txt");
    let output = campaignd()
        .args([
            "--quick",
            "--shards",
            "2",
            "--workers",
            "2",
            "--kill-shard",
            "0",
        ])
        .arg("--dir")
        .arg(&dir)
        .arg("--out")
        .arg(&merged_file)
        .output()
        .expect("campaignd runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "campaignd failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    // The fault injection really fired and the shard was retried.
    assert!(stdout.contains("killed by --kill-shard"), "{stdout}");
    assert!(stdout.contains("shard 0: retrying (attempt 2)"), "{stdout}");
    assert!(stdout.contains("1 retry"), "{stdout}");

    // The distributed merge is byte-identical to an unsharded in-process
    // run of the same plan.
    let merged_text = std::fs::read_to_string(&merged_file).expect("merged report written");
    let merged = CampaignReport::from_shard_text(&merged_text).expect("merged report parses");
    let (plan, _, _) = report_matrix_plan(true);
    assert_eq!(merged.plan_hash, plan.plan_hash());
    let whole = plan.run(2);
    assert_eq!(merged.canonical_text(), whole.canonical_text());
}

#[test]
fn exhausted_shard_attempts_fail_the_whole_run() {
    let dir = scratch("exhausted");
    // One attempt, and that attempt is killed: the shard can never
    // complete, so the coordinator must exit non-zero and say why.
    let output = campaignd()
        .args(["--quick", "--shards", "2", "--workers", "1"])
        .args(["--kill-shard", "1", "--attempts", "1"])
        .arg("--dir")
        .arg(&dir)
        .output()
        .expect("campaignd runs");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(!output.status.success(), "coordinator must fail");
    // Worker exhaustion has its own exit code (3), distinct from merge
    // validation failures (4) and divergence (5).
    assert_eq!(output.status.code(), Some(3), "{stderr}");
    assert!(
        stderr.contains("shard 1: exhausted 1 attempt(s)"),
        "{stderr}"
    );
    assert!(
        stderr.contains("SIGKILL") || stderr.contains("signal"),
        "{stderr}"
    );
}

#[test]
fn kill_shard_is_repeatable_and_kills_each_listed_shard_once() {
    let dir = scratch("kill-two");
    let output = campaignd()
        .args(["--quick", "--shards", "3", "--workers", "1"])
        .args(["--kill-shard", "0", "--kill-shard", "2"])
        .arg("--dir")
        .arg(&dir)
        .output()
        .expect("campaignd runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "campaignd failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    // Both injections fired, both shards retried, and the summary counts
    // both retries.
    for shard in [0, 2] {
        assert!(
            stdout.contains(&format!(
                "shard {shard}: attempt 1 killed by --kill-shard fault injection"
            )),
            "{stdout}"
        );
        assert!(
            stdout.contains(&format!("shard {shard}: retrying (attempt 2)")),
            "{stdout}"
        );
    }
    assert!(!stdout.contains("shard 1: retrying"), "{stdout}");
    assert!(stdout.contains("2 retries"), "{stdout}");
}

#[test]
fn out_of_range_fault_injection_is_a_usage_error() {
    let output = campaignd()
        .args(["--quick", "--shards", "2", "--kill-shard", "2"])
        .output()
        .expect("campaignd runs");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("out of range"), "{stderr}");
}

#[test]
fn merge_mode_rejects_missing_shards_and_foreign_plan_hashes_without_running_cells() {
    let dir = scratch("merge-validation");
    // Produce both shard files in-process (the compiled-artifact cache
    // makes this cheap) — the binary under test is the *merger*.
    let (plan, _, _) = report_matrix_plan(true);
    let shard0 = dir.join("shard0.txt");
    let shard1 = dir.join("shard1.txt");
    std::fs::write(&shard0, plan.run_shard(0, 2, 2).to_shard_text()).unwrap();
    std::fs::write(&shard1, plan.run_shard(1, 2, 2).to_shard_text()).unwrap();

    let merge = |files: &[&PathBuf]| {
        let mut command = Command::new(env!("CARGO_BIN_EXE_campaign_report"));
        command.args(["--quick", "--merge"]);
        for file in files {
            command.arg(file);
        }
        command.output().expect("campaign_report runs")
    };

    // The complete pair merges fine, with no re-run.
    let output = merge(&[&shard0, &shard1]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "{stdout}");
    assert!(stdout.contains("no re-run"), "{stdout}");

    // A missing shard is a hard error naming the gap.
    let output = merge(&[&shard0]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("missing"), "{stderr}");

    // A tampered plan hash is rejected before any aggregation.
    let tampered = dir.join("tampered.txt");
    let mut text = std::fs::read_to_string(&shard1).unwrap();
    let hash_line_start = text.find("plan_hash 0x").expect("hash line");
    // Flip one hex digit of the hash in place.
    let digit = hash_line_start + "plan_hash 0x".len();
    let mut bytes = text.into_bytes();
    bytes[digit] = if bytes[digit] == b'0' { b'1' } else { b'0' };
    text = String::from_utf8(bytes).unwrap();
    std::fs::write(&tampered, text).unwrap();
    let output = merge(&[&shard0, &tampered]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("does not match this plan"), "{stderr}");

    // A tampered shape line must not shrink the expected matrix: a lone
    // shard whose header declares exactly its own cell set as the whole
    // plan would otherwise pass coverage validation as "complete".
    let shrunk = dir.join("shrunk.txt");
    let shard0_cells = plan.shard(0, 2).len();
    let text = std::fs::read_to_string(&shard0).unwrap();
    let shape = plan.shape();
    let shrunk_text = text.replace(
        &format!(
            "shape {} {} {} {}",
            shape.configs, shape.worlds, shape.scenarios, shape.replicates
        ),
        &format!("shape {shard0_cells} 1 1 1"),
    );
    assert_ne!(shrunk_text, text, "shape line not found to tamper");
    std::fs::write(&shrunk, shrunk_text).unwrap();
    let output = merge(&[&shrunk]);
    assert!(!output.status.success(), "shrunken shape must be rejected");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("declares matrix shape"), "{stderr}");
}
