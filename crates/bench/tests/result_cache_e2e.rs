//! End-to-end tests of the cross-process result cache as real processes:
//! a cold `campaign_report` run populates the artifact store and cell
//! cache, a warm run re-reads everything (byte-identical canonical output,
//! zero misses, zero recompilation), corruption falls back to recompute,
//! `campaignd` serves a killed shard's retry warm from the cache, and
//! degenerate `--shard` specs are rejected up front.

use std::path::PathBuf;
use std::process::Command;

fn campaign_report() -> Command {
    Command::new(env!("CARGO_BIN_EXE_campaign_report"))
}

fn campaignd() -> Command {
    let mut command = Command::new(env!("CARGO_BIN_EXE_campaignd"));
    command
        .arg("--worker-bin")
        .arg(env!("CARGO_BIN_EXE_campaign_report"));
    command
}

/// A per-test scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("result-cache-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_ok(command: &mut Command, label: &str) -> String {
    let output = command.output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "{label} failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    stdout
}

#[test]
fn cold_then_warm_runs_are_byte_identical_with_full_cache_hits() {
    let dir = scratch("cold-warm");
    let cache = dir.join("cache");
    let cold_canonical = dir.join("cold.txt");
    let warm_canonical = dir.join("warm.txt");

    let cold = run_ok(
        campaign_report()
            .args(["--quick", "--workers", "2"])
            .arg("--cache-dir")
            .arg(&cache)
            .arg("--canonical-out")
            .arg(&cold_canonical),
        "cold campaign_report",
    );
    // The cold run's *main* sweep missed every cell and compiled every
    // artifact fresh.
    assert!(cold.contains("cell cache: 0 hits"), "{cold}");
    assert!(cold.contains("Artifact store"), "{cold}");

    let warm = run_ok(
        campaign_report()
            .args(["--quick", "--workers", "2"])
            .arg("--cache-dir")
            .arg(&cache)
            .arg("--canonical-out")
            .arg(&warm_canonical),
        "warm campaign_report",
    );
    // Every cell of the warm main sweep is a cache hit — and nothing was
    // recompiled: the artifact store reports no misses either.
    assert!(warm.contains(", 0 misses, 0 invalidations"), "{warm}");
    assert!(!warm.contains("cell cache: 0 hits"), "{warm}");
    let store_line = warm
        .lines()
        .find(|l| l.starts_with("Artifact store"))
        .expect("store line");
    assert!(store_line.contains(" 0 misses"), "{store_line}");

    let cold_text = std::fs::read_to_string(&cold_canonical).unwrap();
    let warm_text = std::fs::read_to_string(&warm_canonical).unwrap();
    assert!(!cold_text.is_empty());
    assert_eq!(cold_text, warm_text, "warm run must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_cache_entries_recover_by_recomputing() {
    let dir = scratch("corruption-recovery");
    let cache = dir.join("cache");
    let cold_canonical = dir.join("cold.txt");
    let recovered_canonical = dir.join("recovered.txt");

    run_ok(
        campaign_report()
            .args(["--quick", "--workers", "2"])
            .arg("--cache-dir")
            .arg(&cache)
            .arg("--canonical-out")
            .arg(&cold_canonical),
        "cold campaign_report",
    );

    // Corrupt one cell entry (truncation) and one artifact entry (garbage).
    let cells_root = cache.join("cells");
    let cell_dir = std::fs::read_dir(&cells_root)
        .expect("cell cache populated")
        .find_map(Result::ok)
        .expect("one plan hash dir")
        .path();
    let cell_entry = std::fs::read_dir(&cell_dir)
        .unwrap()
        .find_map(Result::ok)
        .expect("one cell entry")
        .path();
    let text = std::fs::read_to_string(&cell_entry).unwrap();
    std::fs::write(&cell_entry, &text[..text.len() / 2]).unwrap();

    let artifact_entry = std::fs::read_dir(cache.join("artifacts"))
        .expect("artifact store populated")
        .find_map(Result::ok)
        .expect("one artifact entry")
        .path();
    std::fs::write(&artifact_entry, "garbage").unwrap();

    // The damaged entries recompute — reported as invalidations, not
    // failures — and the output stays byte-identical.
    let recovered = run_ok(
        campaign_report()
            .args(["--quick", "--workers", "2"])
            .arg("--cache-dir")
            .arg(&cache)
            .arg("--canonical-out")
            .arg(&recovered_canonical),
        "recovery campaign_report",
    );
    assert!(recovered.contains("1 invalidations"), "{recovered}");
    assert_eq!(
        std::fs::read_to_string(&cold_canonical).unwrap(),
        std::fs::read_to_string(&recovered_canonical).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaignd_serves_a_killed_shards_retry_warm_from_cache() {
    let dir = scratch("warm-retry");
    let cache = dir.join("cache");
    let cold_canonical = dir.join("cold.txt");
    let warm_canonical = dir.join("warm.txt");

    // Cold distributed run: workers execute and populate the cache.
    let cold = run_ok(
        campaignd()
            .args(["--quick", "--shards", "2", "--workers", "2"])
            .arg("--dir")
            .arg(dir.join("shards-cold"))
            .arg("--cache-dir")
            .arg(&cache)
            .arg("--canonical-out")
            .arg(&cold_canonical),
        "cold campaignd",
    );
    assert!(cold.contains("0/2 shards served warm"), "{cold}");

    // Warm run with fault injection: shard 0's first attempt spawns a real
    // worker (the injection must fire) and is killed; its *retry* — and
    // shard 1's first attempt — are served from cache as file reads.
    let warm = run_ok(
        campaignd()
            .args(["--quick", "--shards", "2", "--workers", "2"])
            .args(["--kill-shard", "0"])
            .arg("--dir")
            .arg(dir.join("shards-warm"))
            .arg("--cache-dir")
            .arg(&cache)
            .arg("--canonical-out")
            .arg(&warm_canonical),
        "warm campaignd",
    );
    assert!(warm.contains("killed by --kill-shard"), "{warm}");
    assert!(
        warm.contains("shard 0: served warm from cache") && warm.contains("attempt 2"),
        "{warm}"
    );
    assert!(warm.contains("shard 1: served warm from cache"), "{warm}");
    assert!(warm.contains("2/2 shards served warm"), "{warm}");

    // The warm, retried, file-read-served run is byte-identical to the
    // cold distributed run.
    assert_eq!(
        std::fs::read_to_string(&cold_canonical).unwrap(),
        std::fs::read_to_string(&warm_canonical).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degenerate_shard_specs_are_rejected_with_clear_errors() {
    // N == 0: no such division of the plan exists.
    let output = campaign_report()
        .args(["--quick", "--shard", "0/0", "--out", "/dev/null"])
        .output()
        .expect("campaign_report runs");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("shard count must be positive"), "{stderr}");

    // I >= N: the shard would be empty/undefined, never silently produced.
    let output = campaign_report()
        .args(["--quick", "--shard", "2/2", "--out", "/dev/null"])
        .output()
        .expect("campaign_report runs");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("out of range") && stderr.contains("valid indices are 0..2"),
        "{stderr}"
    );

    // Malformed specs still name the expected form.
    let output = campaign_report()
        .args(["--quick", "--shard", "nonsense", "--out", "/dev/null"])
        .output()
        .expect("campaign_report runs");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("expects I/N"), "{stderr}");
}
