//! The per-cell hot path, pinned: raw interpreter stepping, per-cell
//! instantiation, and full instantiate-and-serve cells for each of the
//! paper's four configurations, plus the shard/artifact hex codec that
//! sits on the warm-run path. The `bench_snapshot` binary runs the same
//! matrix and writes the committed `BENCH_*.json` trajectory; this bench
//! is the interactive criterion view of it.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nvariant::DeploymentConfig;
use nvariant_apps::scenarios::compiled_httpd_system;
use nvariant_types::hex::{hex_decode, hex_encode};
use nvariant_types::Port;
use nvariant_vm::{compile_program, parse_with_stdlib, MemoryLayout, Process};
use std::time::Duration;

const BUSY_LOOP: &str = r"
fn main() -> int {
    var i: int = 0;
    var total: int = 0;
    while (i < 20000) {
        total = total + i * 3 - (total / 7);
        i = i + 1;
    }
    return total % 97;
}
";

fn bench_steps(c: &mut Criterion) {
    let program = parse_with_stdlib(BUSY_LOOP).expect("busy loop parses");
    let compiled = compile_program(&program).expect("busy loop compiles");
    let steps = {
        let mut p = Process::new(&compiled, MemoryLayout::default());
        let _ = p.run_until_trap(10_000_000);
        p.instructions_executed()
    };

    let mut group = c.benchmark_group("cell_hot_path");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.throughput(Throughput::Elements(steps));
    group.bench_function("steps_busy_loop", |b| {
        b.iter(|| {
            let mut process = Process::new(&compiled, MemoryLayout::default());
            black_box(process.run_until_trap(10_000_000));
            process.instructions_executed()
        });
    });
    group.finish();
}

fn bench_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell_hot_path");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);

    for config in DeploymentConfig::paper_configurations() {
        let compiled = compiled_httpd_system(&config);
        group.bench_with_input(
            BenchmarkId::new("instantiate", config.label()),
            &compiled,
            |b, compiled| b.iter(|| black_box(compiled.instantiate())),
        );
        group.bench_with_input(
            BenchmarkId::new("full_cell", config.label()),
            &compiled,
            |b, compiled| {
                b.iter(|| {
                    let mut system = compiled.instantiate();
                    system
                        .kernel_mut()
                        .net_mut()
                        .preload_request(Port::HTTP, b"GET / HTTP/1.0\r\n\r\n".to_vec());
                    black_box(system.run())
                });
            },
        );
    }
    group.finish();
}

fn bench_hex(c: &mut Criterion) {
    let payload: Vec<u8> = (0u32..4096)
        .map(|i| (i.wrapping_mul(131) >> 2) as u8)
        .collect();
    let encoded = hex_encode(&payload);

    let mut group = c.benchmark_group("cell_hot_path");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("hex_encode_4k", |b| {
        b.iter(|| black_box(hex_encode(&payload)));
    });
    group.bench_function("hex_decode_4k", |b| {
        b.iter(|| black_box(hex_decode(&encoded).expect("round trip")));
    });
    group.finish();
}

criterion_group!(benches, bench_steps, bench_cells, bench_hex);
criterion_main!(benches);
