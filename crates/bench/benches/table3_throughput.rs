//! Table 3 benchmark: wall-clock cost of serving the WebBench-style page
//! mix under each of the paper's four configurations (the simulated-time
//! throughput/latency table itself is produced by the `table3_report`
//! binary; this bench measures the real redundant-computation cost on the
//! host machine).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nvariant::DeploymentConfig;
use nvariant_apps::scenarios::run_requests;
use nvariant_apps::workload::WorkloadMix;
use std::time::Duration;

fn bench_configurations(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_serving_cost");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);

    let requests = WorkloadMix::standard().request_sequence(12, 0x5EED);
    for config in DeploymentConfig::paper_configurations() {
        group.bench_with_input(
            BenchmarkId::new("serve_12_requests", config.label()),
            &config,
            |b, config| {
                b.iter(|| {
                    let outcome = run_requests(config, &requests);
                    assert!(outcome.system.exited_normally());
                    black_box(outcome.total_response_bytes())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_configurations);
criterion_main!(benches);
