//! Table 1 microbenchmarks: the cost of applying and inverting each
//! variation's reexpression function, and of a full property verification.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvariant_diversity::{verify_variation, AddressTransform, UidTransform, Variation};
use nvariant_types::{Uid, VirtAddr};
use std::time::Duration;

fn bench_reexpression(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_reexpression");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    let uid = UidTransform::paper_mask();
    group.bench_function("uid_apply_invert", |b| {
        b.iter(|| {
            let reexpressed = uid.apply(black_box(Uid::new(48)));
            black_box(uid.invert(reexpressed))
        });
    });

    let addr = AddressTransform::PartitionHigh;
    group.bench_function("address_apply_invert", |b| {
        b.iter(|| {
            let reexpressed = addr.apply(black_box(VirtAddr::new(0x0010_0040)));
            black_box(addr.invert(reexpressed))
        });
    });

    let extended = AddressTransform::PartitionHighWithOffset(0x40);
    group.bench_function("extended_address_apply_invert", |b| {
        b.iter(|| {
            let reexpressed = extended.apply(black_box(VirtAddr::new(0x0010_0040)));
            black_box(extended.invert(reexpressed))
        });
    });

    group.bench_function("verify_uid_variation_properties", |b| {
        b.iter(|| black_box(verify_variation(&Variation::uid_diversity(), 2)));
    });
    group.bench_function("verify_composed_variation_properties", |b| {
        b.iter(|| {
            black_box(verify_variation(
                &Variation::composed(vec![
                    Variation::uid_diversity(),
                    Variation::address_partitioning(),
                ]),
                2,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_reexpression);
criterion_main!(benches);
