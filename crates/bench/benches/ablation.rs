//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * detection-call granularity — the §5 alternative of relying only on the
//!   pre-existing system-call boundary checks versus inserting the Table 2
//!   detection calls;
//! * shared versus unshared account files;
//! * the full-bit-flip UID mask versus the paper's high-bit-preserving mask.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvariant::prelude::*;
use nvariant_apps::httpd_source;
use nvariant_apps::workload::benign_request;
use nvariant_transform::TransformOptions;
use std::time::Duration;

fn serve_with(options: TransformOptions, variation: Variation) -> u64 {
    let mut system = NVariantSystemBuilder::from_source(httpd_source())
        .expect("bundled server parses")
        .config(DeploymentConfig::Custom {
            variation,
            variants: 2,
            transform_uids: true,
        })
        .transform_options(options)
        .initial_uid(Uid::ROOT)
        .build()
        .expect("bundled server builds");
    for _ in 0..4 {
        system
            .kernel_mut()
            .net_mut()
            .preload_request(Port::HTTP, benign_request("/index.html"));
    }
    let outcome = system.run();
    assert!(outcome.exited_normally(), "{outcome}");
    outcome.metrics.total_instructions
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);

    group.bench_function("uid_variation_with_detection_calls", |b| {
        b.iter(|| {
            black_box(serve_with(
                TransformOptions::default(),
                Variation::uid_diversity(),
            ))
        });
    });
    group.bench_function("uid_variation_syscall_boundary_only", |b| {
        b.iter(|| {
            black_box(serve_with(
                TransformOptions {
                    insert_detection_calls: false,
                    ..TransformOptions::default()
                },
                Variation::uid_diversity(),
            ))
        });
    });
    group.bench_function("uid_variation_full_mask", |b| {
        b.iter(|| {
            black_box(serve_with(
                TransformOptions::default(),
                Variation::uid_diversity_full_mask(),
            ))
        });
    });
    group.bench_function("composed_uid_plus_address", |b| {
        b.iter(|| {
            black_box(serve_with(
                TransformOptions::default(),
                Variation::composed(vec![
                    Variation::uid_diversity(),
                    Variation::address_partitioning(),
                ]),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
