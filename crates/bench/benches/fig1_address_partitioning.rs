//! Figure 1 benchmark: the two-variant address-partitioning architecture —
//! cost of running a pointer-heavy program under partitioned variants and
//! the time to detect an injected absolute address.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvariant::prelude::*;
use std::time::Duration;

const POINTER_CHASE: &str = r"
    var table: buf[256];
    fn main() -> int {
        var i: int = 0;
        var p: ptr;
        p = &table;
        while (i < 200) {
            p[i % 256] = i;
            i = i + 1;
        }
        return p[10];
    }
";

const ABSOLUTE_ADDRESS_ATTACK: &str = r"
    var target: int = 5;
    fn main() -> int {
        var p: ptr;
        p = 0x00100000;
        *p = 7;
        return target;
    }
";

fn run_under(source: &str, config: DeploymentConfig) -> SystemOutcome {
    let mut system = NVariantSystemBuilder::from_source(source)
        .expect("bench source parses")
        .config(config)
        .initial_uid(Uid::ROOT)
        .build()
        .expect("bench source builds");
    system.run()
}

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_address_partitioning");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);

    group.bench_function("pointer_chase_single_process", |b| {
        b.iter(|| black_box(run_under(POINTER_CHASE, DeploymentConfig::Unmodified)));
    });
    group.bench_function("pointer_chase_two_variant_partitioned", |b| {
        b.iter(|| {
            black_box(run_under(
                POINTER_CHASE,
                DeploymentConfig::TwoVariantAddress,
            ))
        });
    });
    group.bench_function("detect_absolute_address_injection", |b| {
        b.iter(|| {
            let outcome = run_under(ABSOLUTE_ADDRESS_ATTACK, DeploymentConfig::TwoVariantAddress);
            assert!(outcome.detected_attack());
            black_box(outcome)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
