//! Security-evaluation benchmark: end-to-end cost of launching the UID
//! corruption attack against an unprotected deployment versus the time for
//! the UID variation to detect it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvariant::DeploymentConfig;
use nvariant_apps::attacks::{run_attack, Attack, AttackResult};
use std::time::Duration;

fn bench_attacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_detection");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);

    let attacks = Attack::all();
    let uid_overflow = &attacks[0];
    let uid_poke = &attacks[1];

    group.bench_function("uid_overflow_vs_unmodified", |b| {
        b.iter(|| {
            let outcome = run_attack(&DeploymentConfig::Unmodified, uid_overflow);
            assert_eq!(outcome.result, AttackResult::Succeeded);
            black_box(outcome)
        });
    });
    group.bench_function("uid_overflow_vs_two_variant_uid", |b| {
        b.iter(|| {
            let outcome = run_attack(&DeploymentConfig::TwoVariantUid, uid_overflow);
            assert_eq!(outcome.result, AttackResult::Detected);
            black_box(outcome)
        });
    });
    group.bench_function("uid_poke_vs_two_variant_address", |b| {
        b.iter(|| {
            let outcome = run_attack(&DeploymentConfig::TwoVariantAddress, uid_poke);
            assert_eq!(outcome.result, AttackResult::Detected);
            black_box(outcome)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
