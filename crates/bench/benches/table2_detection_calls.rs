//! Table 2 microbenchmarks: the cost of the detection system calls under
//! the 2-variant monitor, compared with the same program containing no
//! detection calls (the §5 discussion of whether the extra calls are
//! affordable).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvariant::prelude::*;
use std::time::Duration;

/// A program issuing `count` detection-call batches (uid_value + cc_eq +
/// cond_chk per iteration).
fn detection_heavy_source(count: u32) -> String {
    format!(
        r"
        fn main() -> int {{
            var uid: uid_t;
            var i: int = 0;
            uid = getuid();
            while (i < {count}) {{
                uid = uid_value(uid);
                if (cc_eq(uid, geteuid())) {{
                    if (cond_chk(1)) {{ i = i + 1; }}
                }} else {{
                    i = i + 1;
                }}
            }}
            return 0;
        }}
        "
    )
}

/// The same loop without any detection calls.
fn plain_source(count: u32) -> String {
    format!(
        r"
        fn main() -> int {{
            var uid: uid_t;
            var i: int = 0;
            uid = getuid();
            while (i < {count}) {{
                if (uid == geteuid()) {{ i = i + 1; }} else {{ i = i + 1; }}
            }}
            return 0;
        }}
        "
    )
}

fn run_two_variant(source: &str) -> SystemOutcome {
    let mut system = NVariantSystemBuilder::from_source(source)
        .expect("bench source parses")
        .config(DeploymentConfig::Custom {
            variation: Variation::uid_diversity(),
            variants: 2,
            transform_uids: false,
        })
        .initial_uid(Uid::new(48))
        .build()
        .expect("bench source builds");
    system.run()
}

fn bench_detection_calls(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_detection_calls");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);

    let with_checks = detection_heavy_source(50);
    let without_checks = plain_source(50);

    group.bench_function("50_iterations_with_detection_calls", |b| {
        b.iter(|| black_box(run_two_variant(&with_checks)));
    });
    group.bench_function("50_iterations_without_detection_calls", |b| {
        b.iter(|| black_box(run_two_variant(&without_checks)));
    });
    group.finish();
}

criterion_group!(benches, bench_detection_calls);
criterion_main!(benches);
