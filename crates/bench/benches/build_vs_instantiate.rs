//! Pins the build-once/run-many speedup: a full
//! `NVariantSystemBuilder::build()` (parse → transform → compile →
//! provision → instantiate) against `CompiledSystem::instantiate()` alone,
//! for the paper's heaviest configuration. The acceptance bar for the
//! campaign engine is instantiate ≥ 10× cheaper than a full build; in
//! practice the gap is orders of magnitude.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvariant::{DeploymentConfig, NVariantSystemBuilder};
use nvariant_apps::httpd_source;

fn builder() -> NVariantSystemBuilder {
    NVariantSystemBuilder::from_source(httpd_source())
        .expect("bundled httpd parses")
        .config(DeploymentConfig::TwoVariantUid)
}

fn bench_build_vs_instantiate(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_vs_instantiate");
    group.sample_size(10);

    group.bench_function("full_build_config4", |b| {
        b.iter(|| black_box(builder().build().expect("bundled httpd builds")));
    });

    group.bench_function("compile_config4", |b| {
        b.iter(|| black_box(builder().compile().expect("bundled httpd compiles")));
    });

    let compiled = builder().compile().expect("bundled httpd compiles");
    group.bench_function("instantiate_config4", |b| {
        b.iter(|| black_box(compiled.instantiate()));
    });

    // A full run-many cell: instantiate + serve one request, the unit of
    // work a campaign pays per cell after the one-off compile.
    group.bench_function("instantiate_and_serve", |b| {
        b.iter(|| {
            let mut system = compiled.instantiate();
            system.kernel_mut().net_mut().preload_request(
                nvariant_types::Port::HTTP,
                b"GET / HTTP/1.0\r\n\r\n".to_vec(),
            );
            black_box(system.run())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_build_vs_instantiate);
criterion_main!(benches);
