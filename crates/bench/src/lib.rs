//! Shared helpers for the benchmark harness and the table-reproduction
//! report binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nvariant::DeploymentConfig;
use nvariant_apps::workload::{BenchmarkResult, LoadLevel, WebBench};
use std::path::PathBuf;

/// Resolves the result-cache directory for a report binary from its flags
/// and the environment: an explicit `--cache-dir` wins, `--no-cache`
/// disables caching even when the environment configures it, and otherwise
/// the [`NVARIANT_CACHE_DIR`](nvariant::store::CACHE_DIR_ENV) variable
/// decides. `None` means both cache layers stay memory-/process-local.
#[must_use]
pub fn resolve_cache_dir(explicit: Option<PathBuf>, no_cache: bool) -> Option<PathBuf> {
    if no_cache {
        return None;
    }
    explicit.or_else(|| {
        std::env::var_os(nvariant::store::CACHE_DIR_ENV)
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
    })
}

/// The exit status the campaign binaries share with `nvariant_analyze`
/// when the static diversity verifier reports findings.
pub const EXIT_ANALYSIS_FINDINGS: i32 = 6;

/// `--analyze` support for the campaign binaries: run the static diversity
/// verifier over every configuration before any cell executes, print one
/// verdict line per configuration (plus the full report for any pair with
/// findings), and return the total finding count. Callers refuse to run
/// cells — exiting [`EXIT_ANALYSIS_FINDINGS`] — when it is non-zero:
/// deploying a system whose transform is already known-broken would only
/// measure the bug.
#[must_use]
pub fn verify_diversity_gate(configs: &[DeploymentConfig]) -> usize {
    println!(
        "Static diversity verification ({} configuration(s)):",
        configs.len()
    );
    let mut total_findings = 0usize;
    for config in configs {
        let reports = nvariant_apps::httpd_analysis_reports(config);
        println!(
            "  {}: {}",
            config.label(),
            nvariant::analyze::combined_verdict(&reports)
        );
        for report in &reports {
            if !report.is_clean() {
                println!("{}", report.render());
                total_findings += report.findings.len();
            }
        }
    }
    total_findings
}

/// Renders a list of rows as a fixed-width text table.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("| ");
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$} | ", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let mut separator = String::from("|");
    for width in &widths {
        separator.push_str(&"-".repeat(width + 2));
        separator.push('|');
    }
    out.push_str(&separator);
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// One measured Table 3 cell pair (unsaturated and saturated) for a
/// configuration.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// The configuration.
    pub config: DeploymentConfig,
    /// Result under the 1-client load.
    pub unsaturated: BenchmarkResult,
    /// Result under the 15-client load.
    pub saturated: BenchmarkResult,
}

/// Runs the full Table 3 measurement — every paper configuration under
/// both load levels — as one parallel campaign over the cached compiled
/// artifacts (the per-cell numbers are identical at any worker count).
#[must_use]
pub fn measure_table3(bench: &WebBench) -> Vec<Table3Row> {
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    measure_table3_with_workers(bench, workers)
}

/// [`measure_table3`] with an explicit worker count.
///
/// # Panics
///
/// Panics if the campaign drops a matrix cell — that would be an engine
/// bug, not a caller error.
#[must_use]
pub fn measure_table3_with_workers(bench: &WebBench, workers: usize) -> Vec<Table3Row> {
    let configs = DeploymentConfig::paper_configurations();
    let loads = [LoadLevel::unsaturated(), LoadLevel::saturated()];
    let mut results = bench.measure_matrix(&configs, &loads, workers).into_iter();
    configs
        .into_iter()
        .map(|config| {
            let unsaturated = results.next().expect("unsaturated cell for every config");
            let saturated = results.next().expect("saturated cell for every config");
            Table3Row {
                config,
                unsaturated,
                saturated,
            }
        })
        .collect()
}

/// The paper's Table 3 values, for side-by-side comparison in reports and
/// EXPERIMENTS.md: `(config number, unsat KB/s, unsat ms, sat KB/s, sat ms)`.
#[must_use]
pub fn paper_table3() -> Vec<(u8, f64, f64, f64, f64)> {
    vec![
        (1, 1010.0, 5.81, 5420.0, 16.32),
        (2, 973.0, 5.81, 5372.0, 16.24),
        (3, 887.0, 6.56, 2369.0, 37.36),
        (4, 877.0, 6.65, 2262.0, 38.49),
    ]
}

/// Percentage change from `baseline` to `value` (negative = decrease).
#[must_use]
pub fn percent_change(baseline: f64, value: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (value - baseline) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_columns() {
        let table = render_table(
            &["Config", "KB/s"],
            &[
                vec!["Unmodified".to_string(), "1010".to_string()],
                vec!["2-Variant UID".to_string(), "877".to_string()],
            ],
        );
        assert!(table.contains("| Config"));
        assert!(table.contains("| 2-Variant UID"));
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("|--"));
    }

    #[test]
    fn paper_values_match_the_published_table() {
        let rows = paper_table3();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].1, 1010.0);
        assert_eq!(rows[3].4, 38.49);
    }

    #[test]
    fn percent_change_sign_convention() {
        assert!((percent_change(1010.0, 887.0) + 12.18).abs() < 0.1);
        assert!(percent_change(100.0, 150.0) > 0.0);
        assert_eq!(percent_change(0.0, 5.0), 0.0);
    }
}
