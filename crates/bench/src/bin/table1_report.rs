//! Regenerates the paper's **Table 1**: the reexpression functions of the
//! four variations, plus mechanized verification of the inverse and
//! disjointedness properties each depends on (fanned out across the
//! machine's cores by the campaign engine's worker pool).

use nvariant_bench::render_table;
use nvariant_campaign::run_parallel;
use nvariant_diversity::{verify_variation, Variation};

fn main() {
    println!("Table 1: Reexpression Functions");
    println!("===============================\n");

    let rows: Vec<Vec<String>> = Variation::table1()
        .into_iter()
        .map(|row| {
            vec![
                row.variation,
                row.target_type,
                format!("{}; {}", row.reexpression_p0, row.reexpression_p1),
                format!("{}; {}", row.inverse_p0, row.inverse_p1),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Variation",
                "Target Type",
                "Reexpression Functions",
                "Inverse Functions"
            ],
            &rows,
        )
    );

    println!("Property verification (inverse + pairwise disjointedness):\n");
    let variations = vec![
        Variation::address_partitioning(),
        Variation::extended_address_partitioning(0x40),
        Variation::instruction_tagging(),
        Variation::uid_diversity(),
        Variation::uid_diversity_full_mask(),
        Variation::composed(vec![
            Variation::uid_diversity(),
            Variation::address_partitioning(),
        ]),
    ];
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let reports = run_parallel(variations, workers, |_, variation| {
        let report = verify_variation(&variation, 2);
        (variation, report)
    });
    for (variation, report) in &reports {
        println!(
            "  {:<55} {}",
            variation.name(),
            if report.all_hold() {
                "all properties hold"
            } else {
                "PROPERTY VIOLATION"
            }
        );
        for check in &report.checks {
            println!(
                "      [{}] {}",
                if check.holds { "ok" } else { "FAIL" },
                check.description
            );
        }
    }
}
