//! Regenerates the paper's **Table 3**: throughput and latency of the four
//! configurations under unsaturated (1 client) and saturated (15 clients)
//! load, with the relative overheads the paper reports alongside the
//! published numbers. The 4 × 2 measurement matrix is declared as a
//! campaign: each configuration compiles once and the eight cells run in
//! parallel (per-cell numbers are worker-count invariant).

use nvariant::DeploymentConfig;
use nvariant_apps::workload::{LoadLevel, WebBench};
use nvariant_bench::{measure_table3, paper_table3, percent_change, render_table};

/// `--ladder`: instead of the paper's two load points, sweep a doubling
/// client-count ladder (1, 2, 4, ..., 64) over the same campaign path so
/// the saturation knee of each configuration is visible.
fn ladder_report(bench: &WebBench) {
    println!("WebBench client-count ladder (1..64 clients, x2 steps)");
    println!("======================================================\n");

    let configs = DeploymentConfig::paper_configurations();
    let loads = LoadLevel::ladder(64);
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let results = bench.measure_matrix(&configs, &loads, workers);

    // measure_matrix returns config-major rows: every load for configs[0],
    // then every load for configs[1], and so on.
    let mut table: Vec<Vec<String>> = Vec::new();
    for (i, result) in results.iter().enumerate() {
        let config = &configs[i / loads.len()];
        table.push(vec![
            config.label().clone(),
            format!("{}", result.clients),
            format!("{:.0}", result.throughput_kb_s),
            format!("{:.2}", result.latency_ms),
            format!("{:.3}", result.cpu_service_ms),
            if result.all_requests_succeeded {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Configuration",
                "Clients",
                "KB/s",
                "Latency ms",
                "CPU ms/req",
                "All OK"
            ],
            &table,
        )
    );
    println!(
        "Throughput climbs until the closed-loop clients saturate the simulated CPU,\n\
         then latency grows linearly with the client count while KB/s flattens; the\n\
         two-variant configurations flatten at roughly half the unmodified ceiling."
    );
}

fn main() {
    let bench = WebBench::default();
    if std::env::args().any(|a| a == "--ladder") {
        ladder_report(&bench);
        return;
    }

    println!("Table 3: Performance Results (reproduction)");
    println!("===========================================\n");

    let rows = measure_table3(&bench);

    let mut table: Vec<Vec<String>> = Vec::new();
    for row in &rows {
        table.push(vec![
            row.config.to_string(),
            format!("{:.0}", row.unsaturated.throughput_kb_s),
            format!("{:.2}", row.unsaturated.latency_ms),
            format!("{:.0}", row.saturated.throughput_kb_s),
            format!("{:.2}", row.saturated.latency_ms),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Configuration",
                "Unsat KB/s",
                "Unsat ms",
                "Sat KB/s",
                "Sat ms",
            ],
            &table,
        )
    );

    let base = &rows[0];
    let addr = &rows[2];
    println!("Relative overheads (measured):");
    for row in &rows[1..] {
        println!(
            "  {:<38} unsat throughput {:+6.1}%  latency {:+6.1}%   sat throughput {:+6.1}%  latency {:+6.1}%",
            row.config.label(),
            percent_change(base.unsaturated.throughput_kb_s, row.unsaturated.throughput_kb_s),
            percent_change(base.unsaturated.latency_ms, row.unsaturated.latency_ms),
            percent_change(base.saturated.throughput_kb_s, row.saturated.throughput_kb_s),
            percent_change(base.saturated.latency_ms, row.saturated.latency_ms),
        );
    }
    let uid = &rows[3];
    println!(
        "  {:<38} relative to Configuration 3: unsat throughput {:+.1}%, sat throughput {:+.1}%",
        "2-Variant UID (vs 2-Variant Address)",
        percent_change(
            addr.unsaturated.throughput_kb_s,
            uid.unsaturated.throughput_kb_s
        ),
        percent_change(
            addr.saturated.throughput_kb_s,
            uid.saturated.throughput_kb_s
        ),
    );

    println!("\nPaper's published Table 3 (1.4 GHz Pentium 4, WebBench 5.0):");
    let paper_rows: Vec<Vec<String>> = paper_table3()
        .into_iter()
        .map(|(n, u_kb, u_ms, s_kb, s_ms)| {
            vec![
                format!("Configuration {n}"),
                format!("{u_kb:.0}"),
                format!("{u_ms:.2}"),
                format!("{s_kb:.0}"),
                format!("{s_ms:.2}"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Configuration",
                "Unsat KB/s",
                "Unsat ms",
                "Sat KB/s",
                "Sat ms",
            ],
            &paper_rows,
        )
    );
    println!(
        "Absolute numbers are not expected to match (different substrate); the shape to compare is:\n\
         the source transformation alone is ~free, running two variants roughly halves saturated\n\
         throughput while costing ~10-15% unsaturated, and the UID variation adds only a few percent\n\
         on top of the two-variant baseline."
    );

    println!("\nPer-request measured cost (all variants + monitor):");
    for row in &rows {
        println!(
            "  {:<38} {:>10} instructions, {:>6} checks, CPU {:.3} ms/request",
            row.config.label(),
            row.saturated.total_instructions / row.saturated.requests.max(1) as u64,
            row.saturated.monitor_checks / row.saturated.requests.max(1) as u64,
            row.saturated.cpu_service_ms,
        );
    }
}
