//! Regenerates the paper's **Table 3**: throughput and latency of the four
//! configurations under unsaturated (1 client) and saturated (15 clients)
//! load, with the relative overheads the paper reports alongside the
//! published numbers. The 4 × 2 measurement matrix is declared as a
//! campaign: each configuration compiles once and the eight cells run in
//! parallel (per-cell numbers are worker-count invariant).

use nvariant_apps::workload::WebBench;
use nvariant_bench::{measure_table3, paper_table3, percent_change, render_table};

fn main() {
    println!("Table 3: Performance Results (reproduction)");
    println!("===========================================\n");

    let bench = WebBench::default();
    let rows = measure_table3(&bench);

    let mut table: Vec<Vec<String>> = Vec::new();
    for row in &rows {
        table.push(vec![
            row.config.to_string(),
            format!("{:.0}", row.unsaturated.throughput_kb_s),
            format!("{:.2}", row.unsaturated.latency_ms),
            format!("{:.0}", row.saturated.throughput_kb_s),
            format!("{:.2}", row.saturated.latency_ms),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Configuration",
                "Unsat KB/s",
                "Unsat ms",
                "Sat KB/s",
                "Sat ms",
            ],
            &table,
        )
    );

    let base = &rows[0];
    let addr = &rows[2];
    println!("Relative overheads (measured):");
    for row in &rows[1..] {
        println!(
            "  {:<38} unsat throughput {:+6.1}%  latency {:+6.1}%   sat throughput {:+6.1}%  latency {:+6.1}%",
            row.config.label(),
            percent_change(base.unsaturated.throughput_kb_s, row.unsaturated.throughput_kb_s),
            percent_change(base.unsaturated.latency_ms, row.unsaturated.latency_ms),
            percent_change(base.saturated.throughput_kb_s, row.saturated.throughput_kb_s),
            percent_change(base.saturated.latency_ms, row.saturated.latency_ms),
        );
    }
    let uid = &rows[3];
    println!(
        "  {:<38} relative to Configuration 3: unsat throughput {:+.1}%, sat throughput {:+.1}%",
        "2-Variant UID (vs 2-Variant Address)",
        percent_change(
            addr.unsaturated.throughput_kb_s,
            uid.unsaturated.throughput_kb_s
        ),
        percent_change(
            addr.saturated.throughput_kb_s,
            uid.saturated.throughput_kb_s
        ),
    );

    println!("\nPaper's published Table 3 (1.4 GHz Pentium 4, WebBench 5.0):");
    let paper_rows: Vec<Vec<String>> = paper_table3()
        .into_iter()
        .map(|(n, u_kb, u_ms, s_kb, s_ms)| {
            vec![
                format!("Configuration {n}"),
                format!("{u_kb:.0}"),
                format!("{u_ms:.2}"),
                format!("{s_kb:.0}"),
                format!("{s_ms:.2}"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Configuration",
                "Unsat KB/s",
                "Unsat ms",
                "Sat KB/s",
                "Sat ms",
            ],
            &paper_rows,
        )
    );
    println!(
        "Absolute numbers are not expected to match (different substrate); the shape to compare is:\n\
         the source transformation alone is ~free, running two variants roughly halves saturated\n\
         throughput while costing ~10-15% unsaturated, and the UID variation adds only a few percent\n\
         on top of the two-variant baseline."
    );

    println!("\nPer-request measured cost (all variants + monitor):");
    for row in &rows {
        println!(
            "  {:<38} {:>10} instructions, {:>6} checks, CPU {:.3} ms/request",
            row.config.label(),
            row.saturated.total_instructions / row.saturated.requests.max(1) as u64,
            row.saturated.monitor_checks / row.saturated.requests.max(1) as u64,
            row.saturated.cpu_service_ms,
        );
    }
}
