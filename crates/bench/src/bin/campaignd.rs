//! `campaignd` — the distributed campaign coordinator.
//!
//! Turns the single-process shard/merge proof into actual distribution:
//! the coordinator computes the canonical plan hash of the full security ×
//! world × workload matrix, spawns one `campaign_report --shard I/N --out
//! FILE` worker **process** per shard, collects the shard interchange
//! files, retries workers that crash, are killed, time out, or hand back
//! unusable files (per-shard attempt cap), and merges the collected
//! reports **validation-only** — the plan hash gates every shard and the
//! merged cell set is checked against the plan's expected matrix, so a
//! wrong-but-plausible report is structurally impossible and no cell is
//! ever re-run by the coordinator.
//!
//! Usage:
//!
//! ```text
//! campaignd [--quick] [--shards N] [--workers N] [--attempts K]
//!           [--timeout-secs T] [--dir DIR] [--out FILE]
//!           [--cache-dir DIR | --no-cache] [--canonical-out FILE]
//!           [--worker-bin PATH] [--kill-shard I] [--verify-rerun]
//! ```
//!
//! * `--shards N` — worker process count (default 3); shard `I` runs
//!   `campaign_report --shard I/N`.
//! * `--workers N` — threads per worker process (default: cores/shards).
//! * `--attempts K` — per-shard attempt cap (default 3). A shard that
//!   exhausts its attempts fails the whole run with a non-zero exit.
//! * `--timeout-secs T` — per-attempt wall budget (default 600); a worker
//!   over budget is killed and the shard retried.
//! * `--dir DIR` — where shard files are written (default: a fresh
//!   directory under the system temp dir; kept for post-mortems).
//! * `--out FILE` — additionally write the merged report in the shard
//!   interchange format.
//! * `--worker-bin PATH` — the worker binary (default: the
//!   `campaign_report` next to this executable).
//! * `--cache-dir DIR` — the shared result cache (artifact store + cell
//!   memoization), forwarded to every worker. A shard whose cells are all
//!   already cached is **served warm**: the coordinator assembles its
//!   report from file reads without spawning a worker process — in
//!   particular, the retry of a killed shard becomes file reads once a
//!   previous run populated the cache. Without the flag
//!   `NVARIANT_CACHE_DIR` is honoured; `--no-cache` disables caching.
//! * `--canonical-out FILE` — write the merged report's canonical (wall-
//!   clock-free) serialization, for byte-identity comparisons across runs.
//! * `--kill-shard I` — fault injection for tests/CI: kill shard `I`'s
//!   first attempt right after spawn, exercising the retry path (the first
//!   attempt is never served warm, so the injection always fires).
//! * `--verify-rerun` — after the merge, re-run the plan unsharded
//!   in-process and assert byte-identical canonical output.

use nvariant_apps::campaigns::report_matrix_plan;
use nvariant_apps::scenarios::{artifact_store, init_artifact_store};
use nvariant_bench::resolve_cache_dir;
use nvariant_campaign::{CampaignPlan, CampaignReport};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
struct Args {
    quick: bool,
    shards: usize,
    workers: usize,
    attempts: usize,
    timeout: Duration,
    dir: Option<PathBuf>,
    out: Option<PathBuf>,
    worker_bin: Option<PathBuf>,
    kill_shard: Option<usize>,
    verify_rerun: bool,
    cache_dir: Option<PathBuf>,
    no_cache: bool,
    canonical_out: Option<PathBuf>,
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: campaignd [--quick] [--shards N] [--workers N] [--attempts K] \
         [--timeout-secs T] [--dir DIR] [--out FILE] \
         [--cache-dir DIR | --no-cache] [--canonical-out FILE] \
         [--worker-bin PATH] [--kill-shard I] [--verify-rerun]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        quick: false,
        shards: 3,
        workers: 0,
        attempts: 3,
        timeout: Duration::from_mins(10),
        dir: None,
        out: None,
        worker_bin: None,
        kill_shard: None,
        verify_rerun: false,
        cache_dir: None,
        no_cache: false,
        canonical_out: None,
    };
    let mut args = std::env::args().skip(1);
    let number = |args: &mut dyn Iterator<Item = String>, flag: &str| -> usize {
        if let Some(value) = args.next().and_then(|v| v.parse::<usize>().ok()) {
            value
        } else {
            eprintln!("{flag} expects a non-negative integer");
            usage_exit();
        }
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => parsed.quick = true,
            "--shards" => parsed.shards = number(&mut args, "--shards").max(1),
            "--workers" => parsed.workers = number(&mut args, "--workers").max(1),
            "--attempts" => parsed.attempts = number(&mut args, "--attempts").max(1),
            "--timeout-secs" => {
                parsed.timeout = Duration::from_secs(number(&mut args, "--timeout-secs") as u64);
            }
            "--dir" => {
                parsed.dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage_exit())));
            }
            "--out" => {
                parsed.out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage_exit())));
            }
            "--worker-bin" => {
                parsed.worker_bin =
                    Some(PathBuf::from(args.next().unwrap_or_else(|| usage_exit())));
            }
            "--kill-shard" => parsed.kill_shard = Some(number(&mut args, "--kill-shard")),
            "--verify-rerun" => parsed.verify_rerun = true,
            "--cache-dir" => {
                parsed.cache_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage_exit())));
            }
            "--no-cache" => parsed.no_cache = true,
            "--canonical-out" => {
                parsed.canonical_out =
                    Some(PathBuf::from(args.next().unwrap_or_else(|| usage_exit())));
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage_exit();
            }
        }
    }
    if parsed
        .kill_shard
        .is_some_and(|index| index >= parsed.shards)
    {
        eprintln!(
            "--kill-shard index out of range for {} shards",
            parsed.shards
        );
        usage_exit();
    }
    if parsed.no_cache && parsed.cache_dir.is_some() {
        eprintln!("--cache-dir and --no-cache are mutually exclusive");
        usage_exit();
    }
    parsed
}

/// The worker binary: `campaign_report` next to this executable (both are
/// bin targets of the same crate, so any build that produced `campaignd`
/// also knows how to produce its worker).
fn default_worker_bin() -> PathBuf {
    let mut path = std::env::current_exe().unwrap_or_else(|error| {
        eprintln!("cannot locate this executable: {error}");
        std::process::exit(1);
    });
    path.set_file_name(format!("campaign_report{}", std::env::consts::EXE_SUFFIX));
    path
}

/// One worker attempt: state of a spawned `campaign_report --shard` child.
struct Attempt {
    child: Child,
    started: Instant,
}

/// The coordinator's bookkeeping for one shard of the plan.
struct ShardJob {
    index: usize,
    out_file: PathBuf,
    attempts_used: usize,
    running: Option<Attempt>,
    report: Option<CampaignReport>,
    /// Why each failed attempt failed, for the final error message.
    failures: Vec<String>,
}

/// How many shards (and cells) the coordinator served from the cell cache
/// without spawning a worker process.
#[derive(Clone, Copy, Debug, Default)]
struct WarmServing {
    shards: usize,
    cells: usize,
}

struct Coordinator<'a> {
    plan: &'a CampaignPlan,
    expected_hash: u64,
    worker_bin: PathBuf,
    args: &'a Args,
}

impl Coordinator<'_> {
    /// Starts (or restarts) a shard: served warm from the cell cache when
    /// every one of its cells is already there, otherwise as a worker
    /// process. The `--kill-shard` fault injection targets the first
    /// attempt, which is therefore never served warm — so the injection
    /// always fires, and it is the *retry* that demonstrates
    /// warm-from-cache recovery.
    fn start(&self, job: &mut ShardJob, warm: &mut WarmServing) {
        let fault_injected = self.args.kill_shard == Some(job.index) && job.attempts_used == 0;
        if !fault_injected {
            if let Some(report) = self.plan.cached_shard_report(job.index, self.args.shards) {
                job.attempts_used += 1;
                println!(
                    "shard {}: served warm from cache ({} cells as file reads, attempt {})",
                    job.index,
                    report.cells.len(),
                    job.attempts_used
                );
                warm.shards += 1;
                warm.cells += report.cells.len();
                job.report = Some(report);
                return;
            }
        }
        self.spawn(job);
    }

    fn spawn(&self, job: &mut ShardJob) {
        let mut command = Command::new(&self.worker_bin);
        if self.args.quick {
            command.arg("--quick");
        }
        command
            .arg("--shard")
            .arg(format!("{}/{}", job.index, self.args.shards))
            .arg("--out")
            .arg(&job.out_file)
            .arg("--workers")
            .arg(self.args.workers.to_string())
            // Worker chatter stays out of the coordinator's report stream;
            // stderr passes through so real worker errors surface.
            .stdout(Stdio::null());
        // Workers share the coordinator's result cache: their cells become
        // reusable by later runs (and retries), and a partially warm shard
        // only executes its missing cells.
        match &self.args.cache_dir {
            Some(dir) => {
                command.arg("--cache-dir").arg(dir);
            }
            None => {
                // The coordinator resolved the environment already; a
                // worker must not re-apply it differently.
                command.arg("--no-cache");
            }
        }
        job.attempts_used += 1;
        match command.spawn() {
            Ok(mut child) => {
                // Fault injection: kill the first attempt of the chosen
                // shard before it can write its report, so the retry path
                // runs under test instead of only in production incidents.
                if self.args.kill_shard == Some(job.index) && job.attempts_used == 1 {
                    let _ = child.kill();
                    println!(
                        "shard {}: attempt 1 killed by --kill-shard fault injection",
                        job.index
                    );
                }
                job.running = Some(Attempt {
                    child,
                    started: Instant::now(),
                });
            }
            Err(error) => {
                job.failures.push(format!(
                    "attempt {}: spawn failed: {error}",
                    job.attempts_used
                ));
                job.running = None;
            }
        }
    }

    /// Polls a running attempt: records a collected report, a failure to
    /// retry, or a timeout kill; does nothing while the worker is still
    /// healthy and within budget.
    fn poll(&self, job: &mut ShardJob) {
        let Some(attempt) = job.running.as_mut() else {
            return;
        };
        match attempt.child.try_wait() {
            Ok(Some(status)) if status.success() => {
                job.running = None;
                match self.collect(job) {
                    Ok(report) => {
                        println!(
                            "shard {}: collected {} cells (attempt {})",
                            job.index,
                            report.cells.len(),
                            job.attempts_used
                        );
                        job.report = Some(report);
                    }
                    Err(reason) => job
                        .failures
                        .push(format!("attempt {}: {reason}", job.attempts_used)),
                }
            }
            Ok(Some(status)) => {
                job.running = None;
                job.failures.push(format!(
                    "attempt {}: worker exited with {status}",
                    job.attempts_used
                ));
            }
            Ok(None) => {
                if attempt.started.elapsed() > self.args.timeout {
                    let _ = attempt.child.kill();
                    let _ = attempt.child.wait();
                    job.running = None;
                    job.failures.push(format!(
                        "attempt {}: timed out after {:?} and was killed",
                        job.attempts_used, self.args.timeout
                    ));
                }
            }
            Err(error) => {
                job.running = None;
                job.failures.push(format!(
                    "attempt {}: wait failed: {error}",
                    job.attempts_used
                ));
            }
        }
    }

    /// Reads and validates a finished worker's shard file. Any failure here
    /// (missing/truncated/corrupt file, foreign plan hash, wrong cell set)
    /// counts against the shard's attempt cap exactly like a crash.
    fn collect(&self, job: &ShardJob) -> Result<CampaignReport, String> {
        let text = std::fs::read_to_string(&job.out_file)
            .map_err(|error| format!("cannot read {}: {error}", job.out_file.display()))?;
        let report = CampaignReport::from_shard_text(&text)
            .map_err(|error| format!("{}: {error}", job.out_file.display()))?;
        if report.plan_hash != self.expected_hash {
            return Err(format!(
                "shard plan hash {:#018x} does not match coordinator plan {:#018x}",
                report.plan_hash, self.expected_hash
            ));
        }
        // A corrupt or tampered shape header is an unusable file like any
        // other: count it against the attempt cap here instead of letting
        // it abort the whole campaign at the final merge.
        if report.shape != self.plan.shape() {
            return Err(format!(
                "shard declares matrix shape {} but the coordinator plan is {}",
                report.shape,
                self.plan.shape()
            ));
        }
        let expected: Vec<_> = self
            .plan
            .shard(job.index, self.args.shards)
            .iter()
            .map(nvariant_campaign::CellSpec::coordinates)
            .collect();
        let got: Vec<_> = report
            .cells
            .iter()
            .map(|cell| cell.spec.coordinates())
            .collect();
        if got != expected {
            let first_diff = expected
                .iter()
                .zip(&got)
                .find(|(e, g)| e != g)
                .map(|(e, g)| format!("; first divergence: expected {e:?}, got {g:?}"))
                .unwrap_or_default();
            return Err(format!(
                "shard cell set mismatch: expected {} cells, got {}{first_diff}",
                expected.len(),
                got.len()
            ));
        }
        Ok(report)
    }
}

fn main() {
    let started = Instant::now();
    let mut args = parse_args();
    // Resolve the cache configuration before the plan is built (building
    // it compiles the matrix's artifacts through the process-wide store)
    // and pin the resolution into `args`, so workers inherit exactly it.
    args.cache_dir = resolve_cache_dir(args.cache_dir.take(), args.no_cache);
    init_artifact_store(args.cache_dir.clone());
    let args = args;

    // Building the plan compiles the matrix's artifacts (cached
    // process-wide, and across processes when a cache directory is
    // configured) but runs zero cells: the coordinator needs the plan only
    // for its hash, shape and shard cell sets.
    let (uncached_plan, configs, worlds) = report_matrix_plan(args.quick);
    let plan = match &args.cache_dir {
        Some(dir) => uncached_plan.clone().with_cache_dir(dir),
        None => uncached_plan.clone(),
    };
    let expected_hash = plan.plan_hash();
    let total_cells = plan.cells().len();
    let per_worker_threads = if args.workers > 0 {
        args.workers
    } else {
        (std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) / args.shards)
            .max(1)
    };
    let args = Args {
        workers: per_worker_threads,
        ..args
    };

    let dir = args
        .dir
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("campaignd-{}", std::process::id())));
    if let Err(error) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create shard directory {}: {error}", dir.display());
        std::process::exit(1);
    }
    let worker_bin = args.worker_bin.clone().unwrap_or_else(default_worker_bin);
    if !worker_bin.is_file() {
        eprintln!(
            "worker binary {} not found; build it first (cargo build --release -p nvariant_bench) \
             or pass --worker-bin",
            worker_bin.display()
        );
        std::process::exit(1);
    }

    println!(
        "campaignd: {} configurations x {} worlds, {total_cells} cells, plan hash {expected_hash:#018x}",
        configs.len(),
        worlds.len(),
    );
    println!(
        "spawning {} worker process(es) x {} thread(s) ({} attempt(s) per shard, {:?} timeout), \
         shard files in {}",
        args.shards,
        args.workers,
        args.attempts,
        args.timeout,
        dir.display()
    );

    let coordinator = Coordinator {
        plan: &plan,
        expected_hash,
        worker_bin,
        args: &args,
    };
    let mut warm = WarmServing::default();
    let mut jobs: Vec<ShardJob> = (0..args.shards)
        .map(|index| ShardJob {
            index,
            out_file: dir.join(format!("shard-{index}-of-{}.txt", args.shards)),
            attempts_used: 0,
            running: None,
            report: None,
            failures: Vec::new(),
        })
        .collect();
    for job in &mut jobs {
        coordinator.start(job, &mut warm);
    }

    // The supervision loop: poll every running worker, respawn failed
    // shards while attempts remain, stop when every shard is collected or
    // some shard is exhausted.
    loop {
        for job in &mut jobs {
            coordinator.poll(job);
            if job.report.is_none() && job.running.is_none() && job.attempts_used < args.attempts {
                println!(
                    "shard {}: retrying (attempt {}): {}",
                    job.index,
                    job.attempts_used + 1,
                    job.failures.last().map_or("unknown failure", |f| f)
                );
                coordinator.start(job, &mut warm);
            }
        }
        let exhausted: Vec<usize> = jobs
            .iter()
            .filter(|job| {
                job.report.is_none() && job.running.is_none() && job.attempts_used >= args.attempts
            })
            .map(|job| job.index)
            .collect();
        if !exhausted.is_empty() {
            for &index in &exhausted {
                let job = &jobs[index];
                eprintln!(
                    "shard {}: exhausted {} attempt(s): {}",
                    job.index,
                    args.attempts,
                    job.failures.join("; ")
                );
            }
            // Don't leave orphan workers behind the failing coordinator.
            for job in &mut jobs {
                if let Some(attempt) = job.running.as_mut() {
                    let _ = attempt.child.kill();
                    let _ = attempt.child.wait();
                }
            }
            std::process::exit(1);
        }
        if jobs.iter().all(|job| job.report.is_some()) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let retries: usize = jobs.iter().map(|job| job.attempts_used - 1).sum();
    let merged = CampaignReport::merge(jobs.into_iter().map(|job| {
        job.report
            .expect("loop exits only when every shard is collected")
    }))
    .unwrap_or_else(|error| {
        eprintln!("merge failed: {error}");
        std::process::exit(1);
    });

    println!(
        "\nMerged report ({} shards, {retries} retr{}, plan hash {:#018x}, coordinator wall {:.1?}):",
        args.shards,
        if retries == 1 { "y" } else { "ies" },
        merged.plan_hash,
        started.elapsed()
    );
    println!("{}", merged.render_summary());
    // Cache + retry effectiveness, for operators watching repeated or
    // retried campaigns turn into file reads.
    match &args.cache_dir {
        Some(cache_dir) => {
            let cold = total_cells - warm.cells;
            println!(
                "cache ({}): {}/{} shards served warm from cache ({} cell hits, {} cells \
                 delegated to workers), {retries} shard retr{}; artifact store: {}",
                cache_dir.display(),
                warm.shards,
                args.shards,
                warm.cells,
                cold,
                if retries == 1 { "y" } else { "ies" },
                artifact_store().stats()
            );
        }
        None => println!(
            "cache: disabled (0 shards served warm), {retries} shard retr{}",
            if retries == 1 { "y" } else { "ies" }
        ),
    }

    if let Some(out) = &args.out {
        if let Err(error) = std::fs::write(out, merged.to_shard_text()) {
            eprintln!("cannot write merged report {}: {error}", out.display());
            std::process::exit(1);
        }
        println!("Wrote merged report to {}", out.display());
    }
    if let Some(out) = &args.canonical_out {
        if let Err(error) = std::fs::write(out, merged.canonical_text()) {
            eprintln!("cannot write canonical report {}: {error}", out.display());
            std::process::exit(1);
        }
        println!("Wrote canonical report to {}", out.display());
    }

    let mismatches = merged.verdict_mismatches().len();
    if mismatches > 0 {
        println!("VERDICT MISMATCHES: {mismatches}");
        std::process::exit(1);
    }

    if args.verify_rerun {
        // The independent cross-check must actually recompute: it runs on
        // the *uncached* plan, so a poisoned cache cannot vouch for itself.
        let whole = uncached_plan
            .run(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get));
        let identical = merged.canonical_text() == whole.canonical_text();
        println!(
            "Distributed determinism check ({} worker processes vs unsharded in-process run): {}",
            args.shards,
            if identical {
                "byte-identical canonical reports"
            } else {
                "MISMATCH"
            }
        );
        if !identical {
            std::process::exit(1);
        }
    }
}
