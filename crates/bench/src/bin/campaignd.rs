//! `campaignd` — the distributed campaign coordinator, a thin CLI over the
//! [`nvariant_fleet`] scheduler.
//!
//! The coordinator computes the canonical plan hash of the full security ×
//! world × workload matrix, then hands the run to a [`Fleet`]: shards are
//! assigned to a host pool through a pluggable transport (local child
//! processes, or an arbitrary command prefix like `ssh {host}`), workers
//! that crash, hang, time out, or hand back unusable files are retried up
//! to a per-shard attempt cap, hosts that fail repeatedly are quarantined
//! (and re-admitted only when no healthy host remains), fully cached
//! shards are served warm without spawning anything, and the collected
//! shard reports are merged **validation-only** — the plan hash gates
//! every shard and the merged cell set is checked against the plan's
//! expected matrix, so a wrong-but-plausible report is structurally
//! impossible and no cell is ever re-run by the coordinator. When a
//! retrieved shard is valid but *disagrees* with the shared cache (or the
//! `--verify-rerun` recomputation), the logarithmic divergence finder
//! names the exact first differing cell coordinate instead of dumping a
//! whole-report diff.
//!
//! Usage:
//!
//! ```text
//! campaignd [--quick] [--shards N] [--workers N] [--attempts K]
//!           [--timeout-secs T] [--dir DIR] [--out FILE]
//!           [--cache-dir DIR | --no-cache] [--canonical-out FILE]
//!           [--worker-bin PATH] [--hosts H1,H2,...]
//!           [--transport local|cmd:TEMPLATE] [--quarantine-after K]
//!           [--kill-shard I]... [--corrupt-shard I]... [--verify-rerun]
//! ```
//!
//! * `--shards N` — worker count (default 3); shard `I` runs
//!   `campaign_report --shard I/N`.
//! * `--workers N` — threads per worker process (default: cores/shards).
//! * `--attempts K` — per-shard attempt cap (default 3). A shard that
//!   exhausts its attempts fails the whole run.
//! * `--timeout-secs T` — per-attempt wall budget (default 600); a worker
//!   over budget is killed and the shard retried.
//! * `--dir DIR` — coordinator-side scratch for shard files (default: a
//!   fresh directory under the system temp dir; kept for post-mortems).
//! * `--out FILE` — additionally write the merged report in the shard
//!   interchange format.
//! * `--worker-bin PATH` — the worker binary (default: the
//!   `campaign_report` next to this executable).
//! * `--hosts H1,H2,...` — the host pool (default `local`). Shards go to
//!   the least-loaded healthy host; a host is quarantined after
//!   `--quarantine-after` consecutive failures and re-admitted only when
//!   no healthy host remains. Per-host stats print at end of run.
//! * `--transport local|cmd:TEMPLATE` — how workers reach their hosts.
//!   `local` (default) spawns child processes; `cmd:TEMPLATE` runs every
//!   worker through the whitespace-split command prefix TEMPLATE with
//!   `{host}` substituted (e.g. `cmd:ssh {host}`, or a wrapper script
//!   simulating remote hosts in CI). Prefix transports retrieve shard
//!   files *through the prefix* (`... cat FILE`), never off the local
//!   filesystem.
//! * `--quarantine-after K` — consecutive failures before a host is
//!   quarantined (default 2).
//! * `--cache-dir DIR` — the shared result cache (artifact store + cell
//!   memoization), forwarded to every worker. This is what makes the pool
//!   elastic: a shard whose cells are all already cached is served warm by
//!   the coordinator (file reads, no worker), and hosts only execute cells
//!   nobody has computed yet. The cache is also the *authority* retrieved
//!   shards are cross-checked against — a valid shard that disagrees is a
//!   divergence, not a retry. Without the flag `NVARIANT_CACHE_DIR` is
//!   honoured; `--no-cache` disables caching.
//! * `--canonical-out FILE` — write the merged report's canonical
//!   (wall-clock-free) serialization, for byte-identity comparisons.
//! * `--kill-shard I` — fault injection (repeatable): kill shard `I`'s
//!   first attempt right after spawn, exercising retry, host-failure
//!   accounting and quarantine (the first attempt is never served warm, so
//!   the injection always fires).
//! * `--corrupt-shard I` — fault injection (repeatable, requires
//!   `--cache-dir`): corrupt shard `I`'s first retrieved file in transit
//!   (one metrics counter bumped — still parseable, cell set intact), which
//!   must be caught by the divergence cross-check, not the parser.
//! * `--verify-rerun` — after the merge, re-run the plan unsharded
//!   in-process (uncached) and diagnose any disagreement with the
//!   divergence finder.
//! * `--surface` — after the merged summary, print the
//!   attack-success-probability surface: per (configuration, world,
//!   attack class), success and detection rates over judged cells with
//!   the Wilson 95% interval on the success probability (exit 1 when the
//!   plan judged no cells).
//!
//! Exit codes:
//!
//! * `0` — success.
//! * `1` — generic failure (setup errors, verdict mismatches).
//! * `2` — usage error.
//! * `3` — a shard exhausted its attempt cap (worker exhaustion).
//! * `4` — merge validation rejected the collected shard set.
//! * `5` — divergence: a valid result disagrees with the shared cache or
//!   the verification re-run; the first differing cell coordinate is
//!   printed.

use nvariant_apps::campaigns::report_matrix_plan;
use nvariant_apps::scenarios::{artifact_store, init_artifact_store};
use nvariant_bench::{resolve_cache_dir, verify_diversity_gate, EXIT_ANALYSIS_FINDINGS};
use nvariant_fleet::{
    verify_reports, CommandTransport, Fleet, FleetConfig, FleetError, LocalProcessTransport,
    WorkerTransport,
};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const EXIT_USAGE: i32 = 2;
const EXIT_EXHAUSTED: i32 = 3;
const EXIT_MERGE: i32 = 4;
const EXIT_DIVERGENCE: i32 = 5;

#[derive(Clone, Debug)]
enum TransportChoice {
    Local,
    Command(String),
}

// A CLI flag set: each bool mirrors one independent on/off flag.
#[allow(clippy::struct_excessive_bools)]
#[derive(Clone, Debug)]
struct Args {
    quick: bool,
    shards: usize,
    workers: usize,
    attempts: usize,
    timeout: Duration,
    dir: Option<PathBuf>,
    out: Option<PathBuf>,
    worker_bin: Option<PathBuf>,
    hosts: Vec<String>,
    transport: TransportChoice,
    quarantine_after: usize,
    kill_shards: BTreeSet<usize>,
    corrupt_shards: BTreeSet<usize>,
    verify_rerun: bool,
    cache_dir: Option<PathBuf>,
    no_cache: bool,
    canonical_out: Option<PathBuf>,
    analyze: bool,
    surface: bool,
}

const USAGE: &str = "usage: campaignd [--quick] [--analyze] [--shards N] [--workers N] \
                     [--attempts K] [--timeout-secs T] [--dir DIR] [--out FILE] \
                     [--cache-dir DIR | --no-cache] [--canonical-out FILE] \
                     [--worker-bin PATH] [--hosts H1,H2,...] \
                     [--transport local|cmd:TEMPLATE] [--quarantine-after K] \
                     [--kill-shard I]... [--corrupt-shard I]... [--verify-rerun] [--surface]";

const EXIT_CODE_DOC: &str = "exit codes: 0 success, 1 generic failure (setup, verdict \
                             mismatches), 2 usage, 3 worker exhaustion (a shard used up its \
                             attempt cap), 4 merge validation rejected the shard set, \
                             5 divergence (a valid result disagrees with the cache or the \
                             verification re-run), 6 static diversity findings (--analyze \
                             refused to run cells)";

fn usage_exit() -> ! {
    eprintln!("{USAGE}");
    eprintln!("{EXIT_CODE_DOC}");
    std::process::exit(EXIT_USAGE);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        quick: false,
        shards: 3,
        workers: 0,
        attempts: 3,
        timeout: Duration::from_mins(10),
        dir: None,
        out: None,
        worker_bin: None,
        hosts: vec!["local".to_string()],
        transport: TransportChoice::Local,
        quarantine_after: 2,
        kill_shards: BTreeSet::new(),
        corrupt_shards: BTreeSet::new(),
        verify_rerun: false,
        cache_dir: None,
        no_cache: false,
        canonical_out: None,
        analyze: false,
        surface: false,
    };
    let mut args = std::env::args().skip(1);
    let number = |args: &mut dyn Iterator<Item = String>, flag: &str| -> usize {
        if let Some(value) = args.next().and_then(|v| v.parse::<usize>().ok()) {
            value
        } else {
            eprintln!("{flag} expects a non-negative integer");
            usage_exit();
        }
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                println!("{EXIT_CODE_DOC}");
                std::process::exit(0);
            }
            "--quick" => parsed.quick = true,
            "--analyze" => parsed.analyze = true,
            "--shards" => parsed.shards = number(&mut args, "--shards").max(1),
            "--workers" => parsed.workers = number(&mut args, "--workers").max(1),
            "--attempts" => parsed.attempts = number(&mut args, "--attempts").max(1),
            "--timeout-secs" => {
                parsed.timeout = Duration::from_secs(number(&mut args, "--timeout-secs") as u64);
            }
            "--dir" => {
                parsed.dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage_exit())));
            }
            "--out" => {
                parsed.out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage_exit())));
            }
            "--worker-bin" => {
                parsed.worker_bin =
                    Some(PathBuf::from(args.next().unwrap_or_else(|| usage_exit())));
            }
            "--hosts" => {
                let list = args.next().unwrap_or_else(|| usage_exit());
                parsed.hosts = list
                    .split(',')
                    .map(str::trim)
                    .filter(|h| !h.is_empty())
                    .map(String::from)
                    .collect();
                if parsed.hosts.is_empty() {
                    eprintln!("--hosts expects a comma-separated list of host names");
                    usage_exit();
                }
            }
            "--transport" => {
                let value = args.next().unwrap_or_else(|| usage_exit());
                parsed.transport = if value == "local" {
                    TransportChoice::Local
                } else if let Some(template) = value.strip_prefix("cmd:") {
                    if template.split_whitespace().next().is_none() {
                        eprintln!("--transport cmd: expects a non-empty command template");
                        usage_exit();
                    }
                    TransportChoice::Command(template.to_string())
                } else {
                    eprintln!("--transport expects 'local' or 'cmd:TEMPLATE' (got {value:?})");
                    usage_exit();
                };
            }
            "--quarantine-after" => {
                parsed.quarantine_after = number(&mut args, "--quarantine-after").max(1);
            }
            "--kill-shard" => {
                parsed.kill_shards.insert(number(&mut args, "--kill-shard"));
            }
            "--corrupt-shard" => {
                parsed
                    .corrupt_shards
                    .insert(number(&mut args, "--corrupt-shard"));
            }
            "--verify-rerun" => parsed.verify_rerun = true,
            "--surface" => parsed.surface = true,
            "--cache-dir" => {
                parsed.cache_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage_exit())));
            }
            "--no-cache" => parsed.no_cache = true,
            "--canonical-out" => {
                parsed.canonical_out =
                    Some(PathBuf::from(args.next().unwrap_or_else(|| usage_exit())));
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage_exit();
            }
        }
    }
    for (flag, shards) in [
        ("--kill-shard", &parsed.kill_shards),
        ("--corrupt-shard", &parsed.corrupt_shards),
    ] {
        if let Some(index) = shards.iter().find(|&&index| index >= parsed.shards) {
            eprintln!(
                "{flag} index {index} out of range for {} shards",
                parsed.shards
            );
            usage_exit();
        }
    }
    if parsed.no_cache && parsed.cache_dir.is_some() {
        eprintln!("--cache-dir and --no-cache are mutually exclusive");
        usage_exit();
    }
    if !parsed.corrupt_shards.is_empty() && parsed.cache_dir.is_none() && parsed.no_cache {
        eprintln!(
            "--corrupt-shard requires a cache (the shared cache is the authority the \
             divergence cross-check compares against); drop --no-cache or pass --cache-dir"
        );
        usage_exit();
    }
    parsed
}

/// The worker binary: `campaign_report` next to this executable (both are
/// bin targets of the same crate, so any build that produced `campaignd`
/// also knows how to produce its worker).
fn default_worker_bin() -> PathBuf {
    let mut path = std::env::current_exe().unwrap_or_else(|error| {
        eprintln!("cannot locate this executable: {error}");
        std::process::exit(1);
    });
    path.set_file_name(format!("campaign_report{}", std::env::consts::EXE_SUFFIX));
    path
}

fn exit_code(error: &FleetError) -> i32 {
    match error {
        FleetError::Exhausted { .. } => EXIT_EXHAUSTED,
        FleetError::Merge(_) => EXIT_MERGE,
        FleetError::Divergence { .. } => EXIT_DIVERGENCE,
    }
}

fn main() {
    let started = Instant::now();
    let mut args = parse_args();
    // Resolve the cache configuration before the plan is built (building
    // it compiles the matrix's artifacts through the process-wide store)
    // and pin the resolution into `args`, so workers inherit exactly it.
    args.cache_dir = resolve_cache_dir(args.cache_dir.take(), args.no_cache);
    init_artifact_store(args.cache_dir.clone());
    if !args.corrupt_shards.is_empty() && args.cache_dir.is_none() {
        eprintln!(
            "--corrupt-shard requires a cache (the shared cache is the authority the \
             divergence cross-check compares against); pass --cache-dir or set \
             NVARIANT_CACHE_DIR"
        );
        std::process::exit(EXIT_USAGE);
    }
    let args = args;

    // Building the plan compiles the matrix's artifacts (cached
    // process-wide, and across processes when a cache directory is
    // configured) but runs zero cells: the coordinator needs the plan only
    // for its hash, shape and shard cell sets.
    let (uncached_plan, configs, worlds) = report_matrix_plan(args.quick);
    let plan = match &args.cache_dir {
        Some(dir) => uncached_plan.clone().with_cache_dir(dir),
        None => uncached_plan.clone(),
    };
    if args.analyze {
        let findings = verify_diversity_gate(&configs);
        if findings > 0 {
            eprintln!(
                "refusing to dispatch campaign shards: {findings} static diversity finding(s) — \
                 fix the transform before measuring the deployment"
            );
            std::process::exit(EXIT_ANALYSIS_FINDINGS);
        }
        println!();
    }

    let expected_hash = plan.plan_hash();
    let total_cells = plan.cells().len();
    let per_worker_threads = if args.workers > 0 {
        args.workers
    } else {
        (std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) / args.shards)
            .max(1)
    };

    let dir = args
        .dir
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("campaignd-{}", std::process::id())));
    if let Err(error) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create shard directory {}: {error}", dir.display());
        std::process::exit(1);
    }
    let worker_bin = args.worker_bin.clone().unwrap_or_else(default_worker_bin);
    if !worker_bin.is_file() {
        eprintln!(
            "worker binary {} not found; build it first (cargo build --release -p nvariant_bench) \
             or pass --worker-bin",
            worker_bin.display()
        );
        std::process::exit(1);
    }

    let transport: Box<dyn WorkerTransport> = match &args.transport {
        TransportChoice::Local => Box::new(LocalProcessTransport),
        TransportChoice::Command(template) => match CommandTransport::from_template(template) {
            Ok(transport) => Box::new(transport),
            Err(error) => {
                eprintln!("--transport cmd: {error}");
                std::process::exit(EXIT_USAGE);
            }
        },
    };

    println!(
        "campaignd: {} configurations x {} worlds, {total_cells} cells, plan hash {expected_hash:#018x}",
        configs.len(),
        worlds.len(),
    );
    println!(
        "fleet: {} host(s) [{}] via {}, {} shard(s) x {} thread(s) ({} attempt(s) per shard, \
         {:?} timeout, quarantine after {} consecutive failure(s)), shard files in {}",
        args.hosts.len(),
        args.hosts.join(", "),
        transport.label(),
        args.shards,
        per_worker_threads,
        args.attempts,
        args.timeout,
        args.quarantine_after,
        dir.display()
    );

    // Workers share the coordinator's result cache: their cells become
    // reusable by later runs (and retries), and a partially warm shard
    // only executes its missing cells. The coordinator resolved the
    // environment already; a worker must not re-apply it differently.
    let mut worker_args: Vec<String> = Vec::new();
    if args.quick {
        worker_args.push("--quick".to_string());
    }
    worker_args.push("--workers".to_string());
    worker_args.push(per_worker_threads.to_string());
    match &args.cache_dir {
        Some(cache_dir) => {
            worker_args.push("--cache-dir".to_string());
            worker_args.push(cache_dir.display().to_string());
        }
        None => worker_args.push("--no-cache".to_string()),
    }

    let fleet = Fleet::new(&plan, transport, worker_bin, dir)
        .hosts(args.hosts.clone())
        .worker_args(worker_args)
        .config(FleetConfig {
            shards: args.shards,
            attempts: args.attempts,
            timeout: args.timeout,
            quarantine_after: args.quarantine_after,
            kill_shards: args.kill_shards.clone(),
            corrupt_shards: args.corrupt_shards.clone(),
            poll_interval: Duration::from_millis(20),
        })
        .on_progress(|line| println!("{line}"));

    let run = match fleet.run() {
        Ok(run) => run,
        Err(error) => {
            eprintln!("{error}");
            std::process::exit(exit_code(&error));
        }
    };
    let merged = &run.report;
    let retries = run.retries;

    println!(
        "\nMerged report ({} shards, {retries} retr{}, plan hash {:#018x}, coordinator wall {:.1?}):",
        args.shards,
        if retries == 1 { "y" } else { "ies" },
        merged.plan_hash,
        started.elapsed()
    );
    println!("{}", merged.render_summary());
    print!("{}", run.render_host_summary());
    // Cache + retry effectiveness, for operators watching repeated or
    // retried campaigns turn into file reads.
    match &args.cache_dir {
        Some(cache_dir) => {
            let cold = total_cells - run.warm_cells;
            println!(
                "cache ({}): {}/{} shards served warm from cache ({} cell hits, {} cells \
                 delegated to workers), {retries} shard retr{}; artifact store: {}",
                cache_dir.display(),
                run.warm_shards,
                args.shards,
                run.warm_cells,
                cold,
                if retries == 1 { "y" } else { "ies" },
                artifact_store().stats()
            );
        }
        None => println!(
            "cache: disabled (0 shards served warm), {retries} shard retr{}",
            if retries == 1 { "y" } else { "ies" }
        ),
    }

    if args.surface {
        let aggregator = merged.fold_aggregator();
        if aggregator.judged_cells() == 0 {
            eprintln!(
                "no judged cells: the attack-success surface is empty \
                 (run a plan with attack scenarios)"
            );
            std::process::exit(1);
        }
        print!("{}", aggregator.render_surface());
    }

    if let Some(out) = &args.out {
        if let Err(error) = std::fs::write(out, merged.to_shard_text()) {
            eprintln!("cannot write merged report {}: {error}", out.display());
            std::process::exit(1);
        }
        println!("Wrote merged report to {}", out.display());
    }
    if let Some(out) = &args.canonical_out {
        if let Err(error) = std::fs::write(out, merged.canonical_text()) {
            eprintln!("cannot write canonical report {}: {error}", out.display());
            std::process::exit(1);
        }
        println!("Wrote canonical report to {}", out.display());
    }

    let mismatches = merged.verdict_mismatches().len();
    if mismatches > 0 {
        println!("VERDICT MISMATCHES: {mismatches}");
        std::process::exit(1);
    }

    if args.verify_rerun {
        // The independent cross-check must actually recompute: it runs on
        // the *uncached* plan, so a poisoned cache cannot vouch for itself.
        let whole = uncached_plan
            .run(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get));
        let disagreement = verify_reports(&whole, merged, "verification re-run");
        println!(
            "Distributed determinism check ({} worker processes vs unsharded in-process run): {}",
            args.shards,
            if disagreement.is_none() {
                "byte-identical canonical reports"
            } else {
                "MISMATCH"
            }
        );
        if let Some(error) = disagreement {
            eprintln!("{error}");
            std::process::exit(EXIT_DIVERGENCE);
        }
    }
}
