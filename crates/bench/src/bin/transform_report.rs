//! Regenerates the paper's Section 4 transformation statistics: the number
//! of source changes, per category, needed to create the UID-variation
//! variants of the case-study server (the paper reports 73 changes to
//! Apache: 15 constants, 16 single-value exposures, 22 comparison exposures,
//! 20 conditional checks).

use nvariant::DeploymentConfig;
use nvariant_apps::httpd_source;
use nvariant_apps::scenarios::compiled_httpd_system;
use nvariant_bench::render_table;
use nvariant_vm::parse_with_stdlib;

fn main() {
    println!("Section 4: UID transformation statistics (mini Apache)");
    println!("======================================================\n");

    let program = parse_with_stdlib(httpd_source()).expect("bundled server source parses");
    // The change counts are a property of the build-once compiled artifact:
    // the same numbers every campaign cell under Configuration 4 reports.
    let compiled = compiled_httpd_system(&DeploymentConfig::TwoVariantUid);
    let stats = *compiled.transform_stats();

    let rows = vec![
        vec![
            "Reexpression applied to constant UID values".to_string(),
            stats.uid_constants_reexpressed.to_string(),
            "15".to_string(),
        ],
        vec![
            "Single UID value usages exposed (uid_value)".to_string(),
            stats.single_value_exposures.to_string(),
            "16".to_string(),
        ],
        vec![
            "UID comparisons exposed (cc_*)".to_string(),
            stats.comparison_exposures.to_string(),
            "22".to_string(),
        ],
        vec![
            "Conditional statements checked (cond_chk)".to_string(),
            stats.conditional_checks.to_string(),
            "20".to_string(),
        ],
        vec![
            "Total (paper counts these four categories)".to_string(),
            stats.paper_change_total().to_string(),
            "73".to_string(),
        ],
        vec![
            "Implicit constants made explicit".to_string(),
            stats.implicit_constants_made_explicit.to_string(),
            "(within the above)".to_string(),
        ],
        vec![
            "Log sinks sanitized (the error-log workaround)".to_string(),
            stats.log_sinks_sanitized.to_string(),
            "1".to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "Change category",
                "mini Apache (this repo)",
                "Apache (paper)"
            ],
            &rows,
        )
    );

    println!(
        "The mini server is roughly {} SimC statements plus the SimC standard library, versus\n\
         Apache's hundreds of thousands of lines of C, so the absolute counts are smaller; the\n\
         point of comparison is that every category the paper had to handle appears, the\n\
         transformation is fully automated, and variant 0's text is untouched while variant 1\n\
         differs only in re-expressed constants.",
        program.statement_count()
    );
}
