//! Bounded model checking of the deployed mini Apache: exhaustively explore
//! every interleaving of attacker moves and receive schedules up to a depth
//! bound, checking the detection properties P1 (UID integrity), P2 (benign
//! lockstep) and P3 (alarm before output) over the paper's four
//! configurations × the standard and alternate-accounts worlds.
//!
//! Usage:
//!
//! * `nvariant_check [--quick] [--property P1|P2|P3|all] [--depth N]` —
//!   sweep the paper matrix and print one summary line per
//!   (property, configuration, world), with visited/pruned state counts.
//!   Exits non-zero if any check fails.
//! * `nvariant_check --weakened [--trace-out FILE]` — check UID integrity
//!   against the deliberately weakened monitor (detection checks disabled).
//!   This must *fail*: the minimal counterexample trace is printed (and
//!   written to `FILE` when given), and the run exits non-zero if the
//!   checker does **not** find one — it is the checker's own regression
//!   mode, asserted in CI via `--expect-counterexample`.
//!
//! `--quick` lowers the default depth bound for CI; an explicit `--depth`
//! always wins. All exploration is deterministic: the same invocation
//! prints byte-identical summaries and traces.

use nvariant::DeploymentConfig;
use nvariant_apps::checks::{check_paper_matrix, weakened_httpd_check_target};
use nvariant_check::{BoundedChecker, CheckRequest, CheckStatus, Checker, Property};
use nvariant_simos::WorldTemplate;
use std::path::PathBuf;

#[derive(Clone, Debug, Default)]
struct Args {
    quick: bool,
    depth: Option<usize>,
    properties: Vec<Property>,
    weakened: bool,
    expect_counterexample: bool,
    trace_out: Option<PathBuf>,
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: nvariant_check [--quick] [--depth N] [--property P1|P2|P3|all] \
         [--weakened [--expect-counterexample] [--trace-out FILE]]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => parsed.quick = true,
            "--depth" => {
                let value = args.next().and_then(|v| v.parse::<usize>().ok());
                let Some(value) = value.filter(|&v| v > 0) else {
                    eprintln!("--depth expects a positive integer");
                    usage_exit();
                };
                parsed.depth = Some(value);
            }
            "--property" => {
                let Some(value) = args.next() else {
                    eprintln!("--property expects P1, P2, P3 or all");
                    usage_exit();
                };
                if value.eq_ignore_ascii_case("all") {
                    parsed.properties = Property::all().to_vec();
                } else {
                    let Some(property) = Property::parse(&value) else {
                        eprintln!("unknown property {value:?} (expected P1, P2, P3 or all)");
                        usage_exit();
                    };
                    parsed.properties.push(property);
                }
            }
            "--weakened" => parsed.weakened = true,
            "--expect-counterexample" => parsed.expect_counterexample = true,
            "--trace-out" => {
                let Some(file) = args.next() else {
                    eprintln!("--trace-out expects a file path");
                    usage_exit();
                };
                parsed.trace_out = Some(PathBuf::from(file));
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage_exit();
            }
        }
    }
    if parsed.expect_counterexample && !parsed.weakened {
        eprintln!("--expect-counterexample only applies to --weakened");
        usage_exit();
    }
    if parsed.trace_out.is_some() && !parsed.weakened {
        eprintln!("--trace-out only applies to --weakened");
        usage_exit();
    }
    parsed
}

/// Depth that reaches the credential calls of one full request service
/// (48), or a CI-friendly bound that still crosses the privilege drop (32).
fn effective_depth(args: &Args) -> usize {
    args.depth.unwrap_or(if args.quick { 32 } else { 48 })
}

/// The regression mode: the weakened monitor must yield a counterexample.
fn run_weakened(args: &Args) -> bool {
    let depth = effective_depth(args);
    let target =
        weakened_httpd_check_target(&DeploymentConfig::TwoVariantUid, WorldTemplate::standard());
    let report = BoundedChecker.check(&target, &CheckRequest::new(Property::UidIntegrity, depth));
    println!("{}", report.summary_line());
    let Some(counterexample) = &report.counterexample else {
        eprintln!(
            "weakened monitor produced no counterexample at depth {depth} — \
             the checker lost its detection power"
        );
        return false;
    };
    let rendered = counterexample.render();
    println!("\n{rendered}");
    if let Some(file) = &args.trace_out {
        if let Err(error) = std::fs::write(file, &rendered) {
            eprintln!("cannot write trace to {}: {error}", file.display());
            return false;
        }
        println!("Wrote counterexample trace to {}", file.display());
    }
    true
}

fn main() {
    let args = parse_args();
    if args.weakened {
        if !run_weakened(&args) {
            std::process::exit(1);
        }
        return;
    }

    let depth = effective_depth(&args);
    let properties = if args.properties.is_empty() {
        Property::all().to_vec()
    } else {
        args.properties.clone()
    };
    println!(
        "Bounded check: {} propert{} x 4 configurations x 2 worlds, depth {depth}",
        properties.len(),
        if properties.len() == 1 { "y" } else { "ies" }
    );
    let mut failures = 0usize;
    for property in properties {
        println!("\n{} — {}", property.key(), property.describe());
        for report in check_paper_matrix(property, depth) {
            println!("  {}", report.summary_line());
            if report.status == CheckStatus::Fail {
                failures += 1;
                if let Some(counterexample) = &report.counterexample {
                    println!("{}", counterexample.render());
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("\n{failures} check(s) failed");
        std::process::exit(1);
    }
    println!("\nAll checks passed");
}
