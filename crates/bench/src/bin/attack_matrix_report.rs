//! The security evaluation: every attack class against every deployment
//! configuration, with the result the paper's arguments predict next to the
//! observed result.

use nvariant::DeploymentConfig;
use nvariant_apps::attacks::{attack_matrix, Attack};
use nvariant_bench::render_table;

fn main() {
    println!("Attack detection matrix");
    println!("=======================\n");

    for attack in Attack::all() {
        println!("{:<16} {}", attack.name, attack.description);
    }
    println!();

    let configs = vec![
        DeploymentConfig::Unmodified,
        DeploymentConfig::TransformedSingle,
        DeploymentConfig::TwoVariantAddress,
        DeploymentConfig::TwoVariantUid,
        DeploymentConfig::composed_uid_and_address(),
    ];
    let outcomes = attack_matrix(&configs);

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.attack.clone(),
                o.config_label.clone(),
                o.result.to_string(),
                o.expected.to_string(),
                if o.matches_expectation() {
                    "yes".to_string()
                } else {
                    "MISMATCH".to_string()
                },
                o.alarm.clone().unwrap_or_else(|| "-".to_string()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Attack",
                "Configuration",
                "Observed",
                "Predicted",
                "Matches",
                "Alarm"
            ],
            &rows,
        )
    );

    let mismatches = outcomes.iter().filter(|o| !o.matches_expectation()).count();
    println!(
        "{} of {} attack/configuration pairs behave as the paper's arguments predict.",
        outcomes.len() - mismatches,
        outcomes.len()
    );
}
