//! The security evaluation: every attack class against every deployment
//! configuration, declared as one judged campaign over build-once compiled
//! artifacts and executed in parallel, with the result the paper's
//! arguments predict next to the observed result.

use nvariant_apps::attacks::{attack_campaign, attack_outcomes_from_report, Attack};
use nvariant_apps::campaigns::security_sweep_configs;
use nvariant_bench::render_table;

fn main() {
    println!("Attack detection matrix");
    println!("=======================\n");

    for attack in Attack::all() {
        println!("{:<16} {}", attack.name, attack.description);
    }
    println!();

    let configs = security_sweep_configs();
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let report = attack_campaign(&configs).run(workers);

    // Rows in attack-major order, the order the paper's matrix is read in.
    let rows: Vec<Vec<String>> = attack_outcomes_from_report(&report, &configs)
        .into_iter()
        .map(|outcome| {
            let matches = if outcome.matches_expectation() {
                "yes".to_string()
            } else {
                "MISMATCH".to_string()
            };
            vec![
                outcome.attack,
                outcome.config_label,
                outcome.result.to_string(),
                outcome.expected.to_string(),
                matches,
                outcome.alarm.unwrap_or_else(|| "-".to_string()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Attack",
                "Configuration",
                "Observed",
                "Predicted",
                "Matches",
                "Alarm"
            ],
            &rows,
        )
    );

    let mismatches = report.verdict_mismatches().len();
    println!(
        "{} of {} attack/configuration pairs behave as the paper's arguments predict.",
        report.judged_cells() - mismatches,
        report.judged_cells()
    );
    println!("\n{}", report.render_summary());
}
