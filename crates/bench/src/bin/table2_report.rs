//! Regenerates the paper's **Table 2**: the detection system calls, plus a
//! measurement of how often the transformed case-study server actually
//! issues them while serving a benign workload.

use nvariant::DeploymentConfig;
use nvariant_apps::campaigns::httpd_campaign;
use nvariant_apps::workload::WorkloadMix;
use nvariant_bench::render_table;
use nvariant_campaign::Scenario;
use nvariant_simos::Sysno;

fn main() {
    println!("Table 2: Detection System Calls");
    println!("===============================\n");

    let descriptions: &[(&str, &str)] = &[
        (
            "uid_t uid_value(uid_t)",
            "Compares parameter value (across variants) and returns passed value.",
        ),
        (
            "bool cond_chk(bool)",
            "Checks conditional value given between variants is the same.",
        ),
        (
            "bool cc_eq(uid_t, uid_t)",
            "Compares parameters and returns the truth value for ==.",
        ),
        (
            "bool cc_neq(uid_t, uid_t)",
            "Compares parameters and returns the truth value for !=.",
        ),
        (
            "bool cc_lt(uid_t, uid_t)",
            "Compares parameters and returns the truth value for <.",
        ),
        (
            "bool cc_leq(uid_t, uid_t)",
            "Compares parameters and returns the truth value for <=.",
        ),
        (
            "bool cc_gt(uid_t, uid_t)",
            "Compares parameters and returns the truth value for >.",
        ),
        (
            "bool cc_geq(uid_t, uid_t)",
            "Compares parameters and returns the truth value for >=.",
        ),
    ];
    let rows: Vec<Vec<String>> = descriptions
        .iter()
        .map(|(sig, desc)| vec![sig.to_string(), desc.to_string()])
        .collect();
    println!(
        "{}",
        render_table(&["Function Signature", "Description"], &rows)
    );

    println!("Syscall numbers assigned in this reproduction:");
    for sysno in Sysno::ALL.iter().filter(|s| s.is_detection_call()) {
        println!("    {:<12} = {}", sysno.name(), sysno.as_u32());
    }

    // Measure how often the transformed server hits these calls while
    // serving a benign page mix under Configuration 4, declared as a
    // one-cell campaign over the cached compiled artifact.
    let requests = WorkloadMix::standard().request_sequence(24, 7);
    let request_count = requests.len();
    let report = httpd_campaign("table2", &[DeploymentConfig::TwoVariantUid])
        .scenario(Scenario::fixed_requests("benign-24", requests))
        .run(1);
    let metrics = report.total_metrics();
    println!("\nObserved while serving {request_count} benign requests under Configuration 4:");
    println!(
        "    detection calls ............ {}",
        metrics.detection_calls
    );
    println!("    synchronization points ..... {}", metrics.syscalls);
    println!(
        "    equivalence checks ......... {}",
        metrics.monitor_checks
    );
    println!(
        "    detection calls / request .. {:.2}",
        metrics.detection_calls as f64 / request_count as f64
    );
}
