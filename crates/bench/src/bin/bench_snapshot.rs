//! Pins the cell hot path to a committed throughput trajectory.
//!
//! Runs a fixed quick matrix of hot-path micro-benches — raw interpreter
//! stepping, per-cell instantiation, full instantiate-and-serve cells for
//! each of the paper's four configurations, the shard/artifact hex codec,
//! and the k-way streaming shard merge — and writes a `BENCH_N.json`
//! snapshot (schema `nvariant-bench-snapshot-v1`: bench name → median
//! ns/iter + units/sec + peak RSS). Each bench resets the process peak-RSS
//! watermark (`/proc/self/clear_refs`) before sampling and reads it back
//! from `/proc/self/status` (`VmHWM`) after, so memory regressions are
//! visible per bench, not just per process. The committed snapshot is the
//! baseline future PRs append to; CI replays the matrix with `--quick
//! --check BENCH_10.json` and fails only on a > 2x full-cell or
//! streaming-merge throughput regression, so the gate catches
//! catastrophes, not scheduler noise.
//!
//! Usage:
//!
//! ```text
//! bench_snapshot [--quick] [--out FILE] [--before FILE] [--check FILE]
//! ```
//!
//! `--before` embeds a previous snapshot's numbers as `before_*` fields so
//! a single committed file records the before/after pair for a perf PR.

use nvariant::DeploymentConfig;
use nvariant_apps::scenarios::compiled_httpd_system;
use nvariant_campaign::{
    CampaignReport, ShardCursor, ShardMerger, StreamingAggregator, SyntheticSweep,
};
use nvariant_types::hex::{hex_decode, hex_encode};
use nvariant_types::Port;
use nvariant_vm::{compile_program, parse_with_stdlib, MemoryLayout, Process, TrapReason};
use std::process::ExitCode;
use std::time::Instant;

/// One measured bench: median wall time per iteration, the derived unit
/// throughput (units are bench-specific: instructions, cells, bytes), and
/// the process peak-RSS watermark observed over the bench's samples.
#[derive(Clone, Copy, Debug)]
struct Measurement {
    median_ns: f64,
    per_sec: f64,
    peak_rss_kb: f64,
}

/// Resets the kernel's peak-RSS watermark for this process, where the
/// platform allows it (writing `5` to `/proc/self/clear_refs`); elsewhere
/// the watermark simply stays process-monotone and the per-bench numbers
/// degrade to an upper bound.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// The current peak-RSS watermark (`VmHWM` in `/proc/self/status`), in
/// kibibytes; 0.0 where the probe is unavailable.
fn peak_rss_kb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1)?.parse::<f64>().ok())
        })
        .unwrap_or(0.0)
}

/// Sampling effort. The matrix itself is identical in both modes — `--quick`
/// only trims samples and batch time so the CI gate stays cheap.
#[derive(Clone, Copy)]
struct Effort {
    samples: usize,
    min_batch_ns: u128,
}

const FULL: Effort = Effort {
    samples: 15,
    min_batch_ns: 20_000_000,
};
const QUICK: Effort = Effort {
    samples: 7,
    min_batch_ns: 4_000_000,
};

/// Times `iter` (which returns the number of work units it performed),
/// auto-calibrating an inner batch so each sample spans at least
/// `min_batch_ns`, and reports the median per-iteration time.
fn measure(effort: Effort, mut iter: impl FnMut() -> u64) -> Measurement {
    let calibrate = Instant::now();
    let units = iter().max(1);
    let first_ns = calibrate.elapsed().as_nanos().max(1);
    let batch = usize::try_from((effort.min_batch_ns / first_ns).clamp(1, 1_000_000))
        .expect("clamped to usize range");

    reset_peak_rss();
    let mut per_iter_ns: Vec<f64> = (0..effort.samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(iter());
            }
            start.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_iter_ns.sort_by(f64::total_cmp);
    let median_ns = per_iter_ns[per_iter_ns.len() / 2].max(1.0);
    Measurement {
        median_ns,
        per_sec: units as f64 * 1e9 / median_ns,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// A tight arithmetic loop with no syscalls until the final exit — raw
/// dispatch cost, with instantiation amortized over ~200k steps.
const BUSY_LOOP: &str = r"
fn main() -> int {
    var i: int = 0;
    var total: int = 0;
    while (i < 20000) {
        total = total + i * 3 - (total / 7);
        i = i + 1;
    }
    return total % 97;
}
";

fn bench_steps(effort: Effort) -> Measurement {
    let program = parse_with_stdlib(BUSY_LOOP).expect("busy loop parses");
    let compiled = compile_program(&program).expect("busy loop compiles");
    measure(effort, || {
        let mut process = Process::new(&compiled, MemoryLayout::default());
        match process.run_until_trap(10_000_000) {
            TrapReason::Syscall(req) if req.sysno == nvariant_simos::Sysno::Exit => {}
            TrapReason::Exited(_) => {}
            other => panic!("busy loop ended unexpectedly: {other:?}"),
        }
        process.instructions_executed()
    })
}

/// The k-way streaming merge over pre-written synthetic shard files: the
/// campaign result path this tree's reports flow through. Units are merged
/// cells, so `per_sec` is merge throughput in cells/sec; the files are
/// written once outside the timed region.
fn bench_streaming_merge(effort: Effort) -> Measurement {
    const SHARDS: usize = 4;
    let sweep = SyntheticSweep::new(20);
    let total = sweep.cell_count();
    let dir = std::env::temp_dir().join(format!("bench-smerge-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench scratch dir creates");
    let paths: Vec<_> = (0..SHARDS)
        .map(|shard| {
            let cells: Vec<_> = (shard..total)
                .step_by(SHARDS)
                .map(|i| sweep.cell(i))
                .collect();
            let wall = cells.iter().map(|c| c.wall).sum();
            let report = CampaignReport::new(
                sweep.name.clone(),
                sweep.base_seed,
                sweep.plan_hash(),
                sweep.shape,
                1,
                cells,
                wall,
            );
            let path = dir.join(format!("shard-{shard}.txt"));
            std::fs::write(&path, report.to_shard_text()).expect("bench shard writes");
            path
        })
        .collect();
    let measurement = measure(effort, || {
        let cursors: Vec<_> = paths
            .iter()
            .map(|path| ShardCursor::open(path).expect("bench shard opens"))
            .collect();
        let mut merger = ShardMerger::new(cursors).expect("bench shards merge");
        let mut aggregator = StreamingAggregator::from_header(merger.header());
        let mut count = 0u64;
        while let Some(cell) = merger.next_cell().expect("bench merge streams") {
            aggregator.absorb(&cell);
            count += 1;
        }
        assert_eq!(count as usize, total, "bench merge covered the matrix");
        std::hint::black_box(aggregator.cells());
        count
    });
    let _ = std::fs::remove_dir_all(&dir);
    measurement
}

fn run_matrix(effort: Effort) -> Vec<(String, Measurement)> {
    let mut out = Vec::new();

    eprintln!("measuring steps/busy_loop ...");
    out.push(("steps/busy_loop".to_string(), bench_steps(effort)));

    for config in DeploymentConfig::paper_configurations() {
        let label = config.label();
        let compiled = compiled_httpd_system(&config);

        eprintln!("measuring instantiate/{label} ...");
        let instantiate = measure(effort, || {
            std::hint::black_box(compiled.instantiate());
            1
        });
        out.push((format!("instantiate/{label}"), instantiate));

        eprintln!("measuring full_cell/{label} ...");
        let full_cell = measure(effort, || {
            let mut system = compiled.instantiate();
            system
                .kernel_mut()
                .net_mut()
                .preload_request(Port::HTTP, b"GET / HTTP/1.0\r\n\r\n".to_vec());
            let outcome = system.run();
            assert!(outcome.exited_normally(), "cell did not serve cleanly");
            1
        });
        out.push((format!("full_cell/{label}"), full_cell));
    }

    let payload: Vec<u8> = (0u32..4096)
        .map(|i| (i.wrapping_mul(131) >> 2) as u8)
        .collect();
    let encoded = hex_encode(&payload);
    let payload_len = payload.len() as u64;
    eprintln!("measuring hex/encode_4k ...");
    out.push((
        "hex/encode_4k".to_string(),
        measure(effort, || {
            std::hint::black_box(hex_encode(&payload));
            payload_len
        }),
    ));
    eprintln!("measuring hex/decode_4k ...");
    out.push((
        "hex/decode_4k".to_string(),
        measure(effort, || {
            std::hint::black_box(hex_decode(&encoded).expect("round trip"));
            payload_len
        }),
    ));

    eprintln!("measuring streaming_merge ...");
    out.push(("streaming_merge".to_string(), bench_streaming_merge(effort)));

    out
}

// ---------------------------------------------------------------------------
// Snapshot file format
// ---------------------------------------------------------------------------

const SCHEMA: &str = "nvariant-bench-snapshot-v1";

fn render_snapshot(results: &[(String, Measurement)], before: &[(String, Measurement)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {SCHEMA:?},\n"));
    out.push_str("  \"benches\": {\n");
    for (index, (name, m)) in results.iter().enumerate() {
        let mut fields = format!(
            "\"median_ns\": {:.1}, \"per_sec\": {:.1}, \"peak_rss_kb\": {:.0}",
            m.median_ns, m.per_sec, m.peak_rss_kb
        );
        if let Some((_, b)) = before.iter().find(|(n, _)| n == name) {
            fields.push_str(&format!(
                ", \"before_median_ns\": {:.1}, \"before_per_sec\": {:.1}",
                b.median_ns, b.per_sec
            ));
        }
        let comma = if index + 1 == results.len() { "" } else { "," };
        out.push_str(&format!("    {name:?}: {{{fields}}}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// Parses a snapshot file back into (name, measurement) pairs. Line
/// oriented on purpose: each bench is rendered on its own line, so a plain
/// scan recovers everything `--before` and `--check` need without a JSON
/// parser (the vendored serde is a no-op stand-in).
fn parse_snapshot(text: &str) -> Result<Vec<(String, Measurement)>, String> {
    if !text.contains(SCHEMA) {
        return Err(format!("snapshot is missing the {SCHEMA:?} schema marker"));
    }
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.contains("\"median_ns\":") {
            continue;
        }
        let name = line
            .strip_prefix('"')
            .and_then(|rest| rest.split('"').next())
            .ok_or_else(|| format!("bench line without a quoted name: {line}"))?
            .to_string();
        let median_ns = field(line, "\"median_ns\":")?;
        let per_sec = field(line, "\"per_sec\":")?;
        // Older snapshots (pre peak-RSS probe) lack the field; an absent
        // watermark parses as 0, never as an error.
        let peak_rss_kb = field(line, "\"peak_rss_kb\":").unwrap_or(0.0);
        out.push((
            name,
            Measurement {
                median_ns,
                per_sec,
                peak_rss_kb,
            },
        ));
    }
    if out.is_empty() {
        return Err("snapshot contains no benches".to_string());
    }
    Ok(out)
}

fn field(line: &str, key: &str) -> Result<f64, String> {
    let start = line
        .find(key)
        .ok_or_else(|| format!("missing {key} in {line}"))?
        + key.len();
    let rest = line[start..].trim_start();
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("unterminated {key} in {line}"))?;
    rest[..end]
        .trim()
        .parse::<f64>()
        .map_err(|e| format!("bad number for {key} in {line}: {e}"))
}

/// The CI regression gate: every committed `full_cell/*` bench — and the
/// `streaming_merge` throughput the report pipeline hangs off — must still
/// reach at least half its committed throughput.
fn check_against(
    committed: &[(String, Measurement)],
    measured: &[(String, Measurement)],
) -> Result<(), String> {
    let mut failures = Vec::new();
    let mut checked = 0;
    for (name, baseline) in committed {
        if !name.starts_with("full_cell/") && name != "streaming_merge" {
            continue;
        }
        let Some((_, now)) = measured.iter().find(|(n, _)| n == name) else {
            failures.push(format!("{name}: present in baseline but not measured"));
            continue;
        };
        checked += 1;
        if now.per_sec * 2.0 < baseline.per_sec {
            failures.push(format!(
                "{name}: {:.1} cells/sec is more than 2x below the committed {:.1}",
                now.per_sec, baseline.per_sec
            ));
        } else {
            eprintln!(
                "check {name}: {:.1} cells/sec vs committed {:.1} — ok",
                now.per_sec, baseline.per_sec
            );
        }
    }
    if checked == 0 {
        return Err("baseline has no full_cell/* benches to check against".to_string());
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    let mut effort = FULL;
    let mut out_path = "BENCH_10.json".to_string();
    let mut before_path: Option<String> = None;
    let mut check_path: Option<String> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => effort = QUICK,
            "--out" => match argv.next() {
                Some(path) => out_path = path,
                None => return usage("--out needs a file argument"),
            },
            "--before" => match argv.next() {
                Some(path) => before_path = Some(path),
                None => return usage("--before needs a file argument"),
            },
            "--check" => match argv.next() {
                Some(path) => check_path = Some(path),
                None => return usage("--check needs a file argument"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let before = match &before_path {
        Some(path) => match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match parse_snapshot(&text) {
                Ok(parsed) => parsed,
                Err(e) => return fail(&format!("--before {path}: {e}")),
            },
            Err(e) => return fail(&format!("--before {path}: {e}")),
        },
        None => Vec::new(),
    };

    let results = run_matrix(effort);
    for (name, m) in &results {
        println!(
            "{name:<40} {:>14.1} ns/iter {:>16.1} units/sec {:>10.0} KiB peak",
            m.median_ns, m.per_sec, m.peak_rss_kb
        );
    }

    if let Some(path) = &check_path {
        let committed = match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match parse_snapshot(&text) {
                Ok(parsed) => parsed,
                Err(e) => return fail(&format!("--check {path}: {e}")),
            },
            Err(e) => return fail(&format!("--check {path}: {e}")),
        };
        if let Err(report) = check_against(&committed, &results) {
            return fail(&format!("full-cell throughput regression:\n{report}"));
        }
        eprintln!("throughput check against {path} passed");
    }

    let rendered = render_snapshot(&results, &before);
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        return fail(&format!("writing {out_path}: {e}"));
    }
    eprintln!("wrote {out_path}");
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("bench_snapshot: {problem}");
    eprintln!("usage: bench_snapshot [--quick] [--out FILE] [--before FILE] [--check FILE]");
    ExitCode::FAILURE
}

fn fail(problem: &str) -> ExitCode {
    eprintln!("bench_snapshot: {problem}");
    ExitCode::FAILURE
}
