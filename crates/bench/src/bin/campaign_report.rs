//! The full-matrix campaign sweep: every deployment configuration of the
//! security evaluation × (a benign workload + every attack class), executed
//! in parallel over build-once compiled artifacts.
//!
//! Usage: `campaign_report [--quick] [--workers N]`
//!
//! * `--quick` shrinks the matrix (fewer requests, one replicate) for CI
//!   smoke runs;
//! * `--workers N` overrides the worker count (default: all cores).
//!
//! The binary always re-runs the campaign single-threaded and compares the
//! canonical serializations, exiting non-zero if the parallel and serial
//! runs disagree on any per-cell outcome — the determinism contract of the
//! engine. It also times a full build against an instantiation of the
//! heaviest configuration, pinning the build-once/run-many speedup.

use nvariant::{DeploymentConfig, NVariantSystemBuilder};
use nvariant_apps::campaigns::{benign_scenario, full_matrix_campaign, security_sweep_configs};
use nvariant_apps::httpd_source;
use nvariant_apps::workload::WorkloadMix;
use nvariant_bench::render_table;
use nvariant_campaign::CampaignReport;
use std::time::Instant;

fn parse_args() -> (bool, usize) {
    let mut quick = false;
    // At least 4 workers even on small machines, so the determinism check
    // against the serial run always exercises a genuinely parallel schedule.
    let mut workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .max(4);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--workers" => {
                let value = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--workers expects a positive integer");
                        std::process::exit(2);
                    });
                workers = value.max(1);
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: campaign_report [--quick] [--workers N]");
                std::process::exit(2);
            }
        }
    }
    (quick, workers)
}

fn per_config_table(report: &CampaignReport, configs: &[DeploymentConfig]) -> String {
    let rows: Vec<Vec<String>> = configs
        .iter()
        .enumerate()
        .map(|(config_index, config)| {
            let label = config.label();
            let cells = report.cells_for_config_index(config_index);
            let detected = cells.iter().filter(|c| c.outcome.detected_attack()).count();
            let survived = cells.iter().filter(|c| c.outcome.exited_normally()).count();
            let judged: Vec<_> = cells.iter().filter(|c| c.verdict.is_some()).collect();
            let matched = judged
                .iter()
                .filter(|c| c.verdict.as_ref().is_some_and(|v| v.matches()))
                .count();
            let mut tally = nvariant_campaign::RequestTally::default();
            for cell in &cells {
                tally.absorb(&cell.tally());
            }
            let wall: std::time::Duration = cells.iter().map(|c| c.wall).sum();
            vec![
                label,
                cells.len().to_string(),
                format!("{detected}/{}", cells.len()),
                format!("{survived}/{}", cells.len()),
                format!("{matched}/{}", judged.len()),
                format!(
                    "{}/{}/{}/{}",
                    tally.ok, tally.forbidden, tally.not_found, tally.other
                ),
                format!("{wall:.1?}"),
            ]
        })
        .collect();
    render_table(
        &[
            "Configuration",
            "Cells",
            "Alarmed",
            "Survived",
            "Matched",
            "200/403/404/other",
            "Cell wall",
        ],
        &rows,
    )
}

fn measure_build_once_speedup() {
    // Compile the heaviest paper configuration from scratch, then compare
    // the cost of re-running the full pipeline with the cost of stamping
    // out another instance of the artifact.
    let full_build = Instant::now();
    let compiled = NVariantSystemBuilder::from_source(httpd_source())
        .expect("bundled httpd parses")
        .config(DeploymentConfig::TwoVariantUid)
        .compile()
        .expect("bundled httpd compiles");
    let build_cost = full_build.elapsed();

    let runs = 20u32;
    let instantiate = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(compiled.instantiate());
    }
    let instantiate_cost = instantiate.elapsed() / runs;
    let speedup = build_cost.as_secs_f64() / instantiate_cost.as_secs_f64().max(1e-9);
    println!(
        "Build-once/run-many: full pipeline {build_cost:.1?}, instantiate {instantiate_cost:.1?} \
         ({speedup:.0}x cheaper per run)"
    );
}

fn main() {
    let (quick, workers) = parse_args();
    let configs = if quick {
        vec![
            DeploymentConfig::Unmodified,
            DeploymentConfig::TwoVariantAddress,
            DeploymentConfig::TwoVariantUid,
        ]
    } else {
        security_sweep_configs()
    };
    let (benign_requests, replicates) = if quick { (4, 1) } else { (24, 3) };

    // Replicates apply to the whole matrix; attack scenarios ignore the
    // per-cell seed, so their replicated cells reproduce identical outcomes
    // — cheap, and a standing stability check on the engine.
    let attack_count = nvariant_apps::Attack::all().len();
    println!(
        "Campaign sweep: {} configurations x (2 benign workloads + {} attacks), {} replicate(s), {} worker(s)",
        configs.len(),
        attack_count,
        replicates,
        workers
    );
    println!("==========================================================================\n");

    let campaign = full_matrix_campaign(&configs, benign_requests, replicates).scenario(
        benign_scenario(&WorkloadMix::standard(), benign_requests * 2),
    );
    let report = campaign.run(workers);
    println!("{}", per_config_table(&report, &configs));
    println!("{}", report.render_summary());

    let mismatches = report.verdict_mismatches();
    if !mismatches.is_empty() {
        println!("VERDICT MISMATCHES:");
        for cell in &mismatches {
            println!("  {}", cell.canonical_line());
        }
    }

    // The determinism contract: the same campaign at 1 worker must produce
    // byte-identical canonical output.
    let serial = campaign.run(1);
    let deterministic = serial.canonical_text() == report.canonical_text();
    println!(
        "Determinism check ({} workers vs 1): {}",
        workers,
        if deterministic {
            "identical per-cell outcomes"
        } else {
            "MISMATCH"
        }
    );

    measure_build_once_speedup();

    if !deterministic {
        std::process::exit(1);
    }
    if !mismatches.is_empty() {
        std::process::exit(1);
    }
}
