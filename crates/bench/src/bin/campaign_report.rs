//! The full-matrix campaign sweep: every deployment configuration of the
//! security evaluation × every world template × (benign workloads + every
//! attack class), executed in parallel over build-once compiled artifacts —
//! runnable whole, or sharded across processes and merged.
//!
//! Usage:
//!
//! * `campaign_report [--quick] [--workers N]` — run the whole matrix,
//!   print the per-configuration/world table, and self-check determinism
//!   (serial vs. parallel, and an in-process shard+merge round trip).
//! * `campaign_report [--quick] --shard I/N --out FILE` — run only shard
//!   `I` of `N` and write the report to `FILE` in the shard interchange
//!   format.
//! * `campaign_report [--quick] --merge FILE...` — merge shard files
//!   written by `--shard`. Merging is **validation-only**: every shard must
//!   carry this plan's canonical hash, and the merged cell set must cover
//!   the plan's full matrix (missing or duplicated cells are named
//!   exactly) — no cell is ever re-run. Pass `--verify-rerun` to
//!   additionally re-run the whole plan unsharded in-process and assert
//!   the merged canonical serialization is **byte-identical** (the
//!   original O(full-campaign) cross-check, now opt-in).
//!
//! Caching: `--cache-dir DIR` enables the two-level result cache under
//! `DIR` — compiled artifacts (`DIR/artifacts/`, skipping the parse →
//! transform → compile pipeline across processes) and completed campaign
//! cells (`DIR/cells/<plan_hash>/`, turning re-runs of identical plans
//! into file reads). Without the flag, the `NVARIANT_CACHE_DIR`
//! environment variable is honoured; `--no-cache` disables both layers'
//! disk side regardless. Caching never changes report content: a warm run
//! is byte-identical to a cold one (the canonical serialization can be
//! captured with `--canonical-out FILE` to prove it).
//!
//! All processes of a sharded run must use the same `--quick` setting: the
//! plan — its per-cell seeds *and* its plan hash, which gates the merge —
//! is derived from it.

use nvariant::{DeploymentConfig, NVariantSystemBuilder};
use nvariant_apps::campaigns::report_matrix_plan;
use nvariant_apps::httpd_source;
use nvariant_apps::scenarios::{artifact_store, init_artifact_store};
use nvariant_bench::{
    render_table, resolve_cache_dir, verify_diversity_gate, EXIT_ANALYSIS_FINDINGS,
};
use nvariant_campaign::{CampaignPlan, CampaignReport};
use std::path::PathBuf;
use std::time::Instant;

// A CLI flag set: each bool mirrors one independent on/off flag.
#[allow(clippy::struct_excessive_bools)]
#[derive(Clone, Debug, Default)]
struct Args {
    quick: bool,
    workers: usize,
    shard: Option<(usize, usize)>,
    out: Option<String>,
    merge: Vec<String>,
    verify_rerun: bool,
    cache_dir: Option<PathBuf>,
    no_cache: bool,
    canonical_out: Option<PathBuf>,
    analyze: bool,
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: campaign_report [--quick] [--analyze] [--workers N] \
         [--cache-dir DIR | --no-cache] [--canonical-out FILE] [--shard I/N --out FILE] \
         [--merge FILE... [--verify-rerun]]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        // At least 4 workers even on small machines, so the determinism
        // check against the serial run always exercises a genuinely
        // parallel schedule.
        workers: std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .max(4),
        ..Args::default()
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => parsed.quick = true,
            "--workers" => {
                let value = args.next().and_then(|v| v.parse::<usize>().ok());
                let Some(value) = value else {
                    eprintln!("--workers expects a positive integer");
                    usage_exit();
                };
                parsed.workers = value.max(1);
            }
            "--shard" => {
                let spec = args.next().unwrap_or_default();
                let parts: Option<(usize, usize)> = spec
                    .split_once('/')
                    .and_then(|(i, n)| Some((i.parse().ok()?, n.parse().ok()?)));
                // Reject degenerate shard specs explicitly: N == 0 would
                // divide the plan into nothing and I >= N would run an
                // undefined (empty) shard whose "report" could poison a
                // merge; neither may silently produce output.
                match parts {
                    Some((index, count)) if count > 0 && index < count => {
                        parsed.shard = Some((index, count));
                    }
                    Some((_, 0)) => {
                        eprintln!("--shard {spec}: shard count must be positive (N >= 1)");
                        usage_exit();
                    }
                    Some((index, count)) => {
                        eprintln!(
                            "--shard {spec}: shard index {index} out of range for {count} \
                             shard(s); valid indices are 0..{count}"
                        );
                        usage_exit();
                    }
                    None => {
                        eprintln!("--shard expects I/N with I < N (got {spec:?})");
                        usage_exit();
                    }
                }
            }
            "--cache-dir" => {
                let Some(dir) = args.next() else {
                    eprintln!("--cache-dir expects a directory path");
                    usage_exit();
                };
                parsed.cache_dir = Some(PathBuf::from(dir));
            }
            "--no-cache" => parsed.no_cache = true,
            "--canonical-out" => {
                let Some(file) = args.next() else {
                    eprintln!("--canonical-out expects a file path");
                    usage_exit();
                };
                parsed.canonical_out = Some(PathBuf::from(file));
            }
            "--out" => {
                parsed.out = args.next();
                if parsed.out.is_none() {
                    eprintln!("--out expects a file path");
                    usage_exit();
                }
            }
            "--merge" => {
                // Consume file paths up to the next flag, so `--merge a b
                // --quick` still sees --quick as a flag.
                while args.peek().is_some_and(|next| !next.starts_with("--")) {
                    parsed.merge.push(args.next().expect("peeked"));
                }
                if parsed.merge.is_empty() {
                    eprintln!("--merge expects one or more shard files");
                    usage_exit();
                }
            }
            "--verify-rerun" => parsed.verify_rerun = true,
            "--analyze" => parsed.analyze = true,
            other => {
                eprintln!("unknown argument: {other}");
                usage_exit();
            }
        }
    }
    if parsed.shard.is_some() && !parsed.merge.is_empty() {
        eprintln!("--shard and --merge are mutually exclusive");
        usage_exit();
    }
    if parsed.shard.is_some() && parsed.out.is_none() {
        eprintln!("--shard requires --out FILE");
        usage_exit();
    }
    if parsed.verify_rerun && parsed.merge.is_empty() {
        eprintln!("--verify-rerun only applies to --merge");
        usage_exit();
    }
    if parsed.no_cache && parsed.cache_dir.is_some() {
        eprintln!("--cache-dir and --no-cache are mutually exclusive");
        usage_exit();
    }
    if parsed.canonical_out.is_some() && (parsed.shard.is_some() || !parsed.merge.is_empty()) {
        eprintln!("--canonical-out only applies to the full-matrix run");
        usage_exit();
    }
    parsed
}

fn per_cell_table(report: &CampaignReport, configs: &[DeploymentConfig]) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (config_index, config) in configs.iter().enumerate() {
        let config_cells = report.cells_for_config_index(config_index);
        let mut world_labels: Vec<&str> = Vec::new();
        for cell in &config_cells {
            if !world_labels.contains(&cell.spec.world_label.as_str()) {
                world_labels.push(&cell.spec.world_label);
            }
        }
        for world in world_labels {
            let cells: Vec<_> = config_cells
                .iter()
                .filter(|c| c.spec.world_label == world)
                .collect();
            let detected = cells.iter().filter(|c| c.outcome.detected_attack()).count();
            let survived = cells.iter().filter(|c| c.outcome.exited_normally()).count();
            let judged: Vec<_> = cells.iter().filter(|c| c.verdict.is_some()).collect();
            let matched = judged
                .iter()
                .filter(|c| {
                    c.verdict
                        .as_ref()
                        .is_some_and(nvariant_campaign::CellVerdict::matches)
                })
                .count();
            let mut tally = nvariant_campaign::RequestTally::default();
            for cell in &cells {
                tally.absorb(&cell.tally());
            }
            let wall: std::time::Duration = cells.iter().map(|c| c.wall).sum();
            rows.push(vec![
                config.label(),
                world.to_string(),
                cells.len().to_string(),
                format!("{detected}/{}", cells.len()),
                format!("{survived}/{}", cells.len()),
                format!("{matched}/{}", judged.len()),
                format!(
                    "{}/{}/{}/{}",
                    tally.ok, tally.forbidden, tally.not_found, tally.other
                ),
                format!("{wall:.1?}"),
            ]);
        }
    }
    render_table(
        &[
            "Configuration",
            "World",
            "Cells",
            "Alarmed",
            "Survived",
            "Matched",
            "200/403/404/other",
            "Cell wall",
        ],
        &rows,
    )
}

fn measure_build_once_speedup() {
    // Compile the heaviest paper configuration from scratch, then compare
    // the cost of re-running the full pipeline with the cost of stamping
    // out another instance of the artifact.
    let full_build = Instant::now();
    let compiled = NVariantSystemBuilder::from_source(httpd_source())
        .expect("bundled httpd parses")
        .config(DeploymentConfig::TwoVariantUid)
        .compile()
        .expect("bundled httpd compiles");
    let build_cost = full_build.elapsed();

    let runs = 20u32;
    let instantiate = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(compiled.instantiate());
    }
    let instantiate_cost = instantiate.elapsed() / runs;
    let speedup = build_cost.as_secs_f64() / instantiate_cost.as_secs_f64().max(1e-9);
    println!(
        "Build-once/run-many: full pipeline {build_cost:.1?}, instantiate {instantiate_cost:.1?} \
         ({speedup:.0}x cheaper per run)"
    );
}

/// `--shard I/N --out FILE`: run one shard, write the interchange file.
fn run_shard_mode(plan: &CampaignPlan, index: usize, count: usize, workers: usize, out: &str) {
    let cells = plan.shard(index, count).len();
    println!(
        "Shard {index}/{count}: {cells} of {} cells on {workers} worker(s), plan hash {:#018x}",
        plan.cells().len(),
        plan.plan_hash()
    );
    let report = plan.run_shard(index, count, workers);
    if let Err(error) = std::fs::write(out, report.to_shard_text()) {
        eprintln!("cannot write shard file {out}: {error}");
        std::process::exit(1);
    }
    println!("{}", report.render_summary());
    print_artifact_store_stats();
    println!("Wrote shard report to {out}");
}

/// `--merge FILE...`: validate and merge shard files. Validation-only by
/// default — the plan hash gates the merge and the plan's cell matrix is
/// checked for coverage, so no cell is ever re-run. `--verify-rerun`
/// additionally re-runs the plan unsharded and byte-compares.
fn run_merge_mode(plan: &CampaignPlan, files: &[String], workers: usize, verify_rerun: bool) {
    let expected_hash = plan.plan_hash();
    let mut shards = Vec::with_capacity(files.len());
    for file in files {
        let text = std::fs::read_to_string(file).unwrap_or_else(|error| {
            eprintln!("cannot read shard file {file}: {error}");
            std::process::exit(1);
        });
        let report = CampaignReport::from_shard_text(&text).unwrap_or_else(|error| {
            eprintln!("{file}: {error}");
            std::process::exit(1);
        });
        // Gate on this coordinator's own plan before any aggregation: a
        // shard from a differently-shaped plan (or the wrong --quick
        // setting) is rejected here even if every *shard file* agrees.
        if report.plan_hash != expected_hash {
            eprintln!(
                "{file}: shard plan hash {:#018x} does not match this plan ({expected_hash:#018x}); \
                 was the worker run with a different --quick setting or plan version?",
                report.plan_hash
            );
            std::process::exit(1);
        }
        // The shape must be this plan's too: merge validates coverage
        // against the *declared* shape, so a tampered shape line could
        // otherwise shrink the expected matrix and pass a subset off as
        // complete.
        if report.shape != plan.shape() {
            eprintln!(
                "{file}: shard declares matrix shape {} but this plan is {}",
                report.shape,
                plan.shape()
            );
            std::process::exit(1);
        }
        println!(
            "Read {file}: {} cells, {:.1?} of shard wall",
            report.cells.len(),
            report.total_wall
        );
        shards.push(report);
    }
    let merged = CampaignReport::merge(shards).unwrap_or_else(|error| {
        eprintln!("merge failed: {error}");
        std::process::exit(1);
    });
    println!("\nMerged report (plan hash {:#018x}):", merged.plan_hash);
    println!("{}", merged.render_summary());

    let mismatches = merged.verdict_mismatches().len();
    if mismatches > 0 {
        println!("VERDICT MISMATCHES: {mismatches}");
        std::process::exit(1);
    }

    if verify_rerun {
        // The belt-and-braces cross-check: re-run the whole plan unsharded
        // in-process and demand byte identity.
        let whole = plan.run(workers);
        let identical = merged.canonical_text() == whole.canonical_text();
        println!(
            "Shard determinism check ({} shard file(s) vs unsharded re-run): {}",
            files.len(),
            if identical {
                "byte-identical canonical reports"
            } else {
                "MISMATCH"
            }
        );
        if !identical {
            std::process::exit(1);
        }
    } else {
        println!(
            "Validated {} shard file(s) against plan hash and cell matrix (no re-run; \
             pass --verify-rerun for the in-process byte-identity cross-check)",
            files.len()
        );
    }
}

/// One line of artifact-store effectiveness for operators (and the CI
/// cold/warm assertions).
fn print_artifact_store_stats() {
    let store = artifact_store();
    match store.disk_root() {
        Some(root) => println!("Artifact store ({}): {}", root.display(), store.stats()),
        None => println!("Artifact store (memory-only): {}", store.stats()),
    }
}

fn main() {
    let args = parse_args();
    // Resolve and install the cache configuration *before* the plan is
    // built — building it compiles the matrix's artifacts through the
    // process-wide store.
    let cache_dir = resolve_cache_dir(args.cache_dir.clone(), args.no_cache);
    init_artifact_store(cache_dir.clone());
    let (uncached_plan, configs, worlds) = report_matrix_plan(args.quick);
    let plan = match &cache_dir {
        Some(dir) => uncached_plan.clone().with_cache_dir(dir),
        None => uncached_plan.clone(),
    };

    if args.analyze {
        let findings = verify_diversity_gate(&configs);
        if findings > 0 {
            eprintln!(
                "refusing to run campaign cells: {findings} static diversity finding(s) — \
                 fix the transform before measuring the deployment"
            );
            std::process::exit(EXIT_ANALYSIS_FINDINGS);
        }
        println!();
    }

    if let Some((index, count)) = args.shard {
        run_shard_mode(
            &plan,
            index,
            count,
            args.workers,
            args.out.as_deref().unwrap(),
        );
        return;
    }
    if !args.merge.is_empty() {
        // Merge mode validates without executing cells; its opt-in
        // --verify-rerun is the *independent* recomputation cross-check, so
        // it runs on the uncached plan — a poisoned cache cannot vouch for
        // itself.
        run_merge_mode(&uncached_plan, &args.merge, args.workers, args.verify_rerun);
        return;
    }

    let attack_count = nvariant_apps::Attack::all().len();
    println!(
        "Campaign sweep: {} configurations x {} worlds x (2 benign workloads + {} attacks), \
         {} cells total, {} worker(s)",
        configs.len(),
        worlds.len(),
        attack_count,
        plan.cells().len(),
        args.workers
    );
    println!("==========================================================================\n");

    let report = plan.run(args.workers);
    println!("{}", per_cell_table(&report, &configs));
    println!("{}", report.render_summary());
    print_artifact_store_stats();

    if let Some(file) = &args.canonical_out {
        if let Err(error) = std::fs::write(file, report.canonical_text()) {
            eprintln!("cannot write canonical report {}: {error}", file.display());
            std::process::exit(1);
        }
        println!("Wrote canonical report to {}", file.display());
    }

    let mismatches = report.verdict_mismatches();
    if !mismatches.is_empty() {
        println!("VERDICT MISMATCHES:");
        for cell in &mismatches {
            println!("  {}", cell.canonical_line());
        }
    }

    // The determinism contract, part 1: the same plan at 1 worker must
    // produce byte-identical canonical output. (With caching enabled this
    // re-run is served from the cache the first run just wrote, so the
    // byte-identity assertion doubles as a cache-correctness check: a hit
    // must reproduce the cold cell exactly.)
    let serial = plan.run(1);
    let deterministic = serial.canonical_text() == report.canonical_text();
    println!(
        "Determinism check ({} workers vs 1): {}",
        args.workers,
        if deterministic {
            "identical per-cell outcomes"
        } else {
            "MISMATCH"
        }
    );

    // Part 2: an in-process shard + merge round trip (through the shard
    // interchange text format, exactly what separate processes exchange)
    // must reassemble the same bytes.
    let shard_texts: Vec<String> = (0..3)
        .map(|index| plan.run_shard(index, 3, args.workers).to_shard_text())
        .collect();
    let reparsed: Vec<CampaignReport> = shard_texts
        .iter()
        .map(|text| CampaignReport::from_shard_text(text).expect("own shard text parses"))
        .collect();
    let merged = CampaignReport::merge(reparsed).expect("own shards merge");
    let shard_deterministic = merged.canonical_text() == report.canonical_text();
    println!(
        "Shard determinism check (3 shards, codec round trip): {}",
        if shard_deterministic {
            "byte-identical canonical reports"
        } else {
            "MISMATCH"
        }
    );

    measure_build_once_speedup();

    if !deterministic || !shard_deterministic || !mismatches.is_empty() {
        std::process::exit(1);
    }
}
