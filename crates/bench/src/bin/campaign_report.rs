//! The full-matrix campaign sweep: every deployment configuration of the
//! security evaluation × every world template × (benign workloads + every
//! attack class), executed in parallel over build-once compiled artifacts —
//! runnable whole, or sharded across processes and merged.
//!
//! Usage:
//!
//! * `campaign_report [--quick] [--workers N]` — run the whole matrix,
//!   print the per-configuration/world table, and self-check determinism
//!   (serial vs. parallel, and an in-process shard+merge round trip).
//! * `campaign_report [--quick] --shard I/N --out FILE` — run only shard
//!   `I` of `N` and write the report to `FILE` in the shard interchange
//!   format.
//! * `campaign_report [--quick] --merge FILE...` — merge shard files
//!   written by `--shard`. Merging is **validation-only**: every shard must
//!   carry this plan's canonical hash, and the merged cell set must cover
//!   the plan's full matrix (missing or duplicated cells are named
//!   exactly) — no cell is ever re-run. The merge is *streamed*: a k-way
//!   merge over one [`ShardCursor`] per file folds every cell straight
//!   into a [`StreamingAggregator`], so peak memory holds one decoded cell
//!   per shard regardless of shard size. Pass `--verify-rerun` to
//!   additionally re-run the whole plan unsharded in-process and assert
//!   the merged canonical cell stream is **byte-identical** (compared via
//!   a running digest, so the merged cells are still never materialized).
//! * `campaign_report --surface` — additionally print the
//!   attack-success-probability surface: per (configuration, world,
//!   attack class), the success and detection rates over judged cells
//!   with the Wilson 95% interval on the success probability. Applies to
//!   the full-matrix run, `--merge`, and `--synthetic`; it is a usage
//!   error with `--shard` (a single shard's surface would be misleading —
//!   merge first). `--surface-out FILE` writes the same bytes to `FILE`.
//! * `campaign_report --synthetic [--replicate-factor N] [--materialized]`
//!   — run the in-process synthetic sweep (5 configs × 4 worlds × 3
//!   attack classes × N replicates, no VM, every cell judged) through the
//!   constant-memory streaming fold, or through the legacy
//!   materialize-then-aggregate path with `--materialized` (the control
//!   arm of the CI memory experiment: at 10^6 cells it exceeds an
//!   address-space cap the streamed fold runs comfortably under).
//!   `--synthetic --shard I/N --out FILE` writes one round-robin shard of
//!   the sweep as an interchange file through the streaming
//!   [`ShardWriter`] (one cell in memory at a time), and `--synthetic
//!   --merge FILE...` stream-merges such files gated by the synthetic
//!   plan's hash and shape, always cross-checking the merged canonical
//!   cell stream digest against an in-process regeneration — so the
//!   "merge peak memory is independent of shard size" experiment runs
//!   end-to-end under the same cap.
//!
//! `--replicate-factor N` also applies to the real matrix: it multiplies
//! the plan's replicate axis N-fold (changing the plan hash, like any
//! other axis change).
//!
//! Caching: `--cache-dir DIR` enables the two-level result cache under
//! `DIR` — compiled artifacts (`DIR/artifacts/`, skipping the parse →
//! transform → compile pipeline across processes) and completed campaign
//! cells (`DIR/cells/<plan_hash>/`, turning re-runs of identical plans
//! into file reads). Without the flag, the `NVARIANT_CACHE_DIR`
//! environment variable is honoured; `--no-cache` disables both layers'
//! disk side regardless. Caching never changes report content: a warm run
//! is byte-identical to a cold one (the canonical serialization can be
//! captured with `--canonical-out FILE` to prove it).
//!
//! All processes of a sharded run must use the same `--quick` setting: the
//! plan — its per-cell seeds *and* its plan hash, which gates the merge —
//! is derived from it.

use nvariant::{DeploymentConfig, NVariantSystemBuilder};
use nvariant_apps::campaigns::report_matrix_plan;
use nvariant_apps::httpd_source;
use nvariant_apps::scenarios::{artifact_store, init_artifact_store};
use nvariant_bench::{
    render_table, resolve_cache_dir, verify_diversity_gate, EXIT_ANALYSIS_FINDINGS,
};
use nvariant_campaign::{
    CampaignPlan, CampaignReport, PlanShape, ShardCursor, ShardHeader, ShardMerger, ShardWriter,
    StreamingAggregator, SyntheticSweep,
};
use nvariant_types::fnv::Fnv1a;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

// A CLI flag set: each bool mirrors one independent on/off flag.
#[allow(clippy::struct_excessive_bools)]
#[derive(Clone, Debug, Default)]
struct Args {
    quick: bool,
    workers: usize,
    shard: Option<(usize, usize)>,
    out: Option<String>,
    merge: Vec<String>,
    verify_rerun: bool,
    cache_dir: Option<PathBuf>,
    no_cache: bool,
    canonical_out: Option<PathBuf>,
    analyze: bool,
    surface: bool,
    surface_out: Option<PathBuf>,
    synthetic: bool,
    materialized: bool,
    replicate_factor: usize,
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: campaign_report [--quick] [--analyze] [--workers N] \
         [--cache-dir DIR | --no-cache] [--canonical-out FILE] \
         [--replicate-factor N] [--surface [--surface-out FILE]] \
         [--shard I/N --out FILE] [--merge FILE... [--verify-rerun]] \
         [--synthetic [--materialized | --shard I/N --out FILE | --merge FILE...]]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        // At least 4 workers even on small machines, so the determinism
        // check against the serial run always exercises a genuinely
        // parallel schedule.
        workers: std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .max(4),
        replicate_factor: 1,
        ..Args::default()
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => parsed.quick = true,
            "--workers" => {
                let value = args.next().and_then(|v| v.parse::<usize>().ok());
                let Some(value) = value else {
                    eprintln!("--workers expects a positive integer");
                    usage_exit();
                };
                parsed.workers = value.max(1);
            }
            "--shard" => {
                let spec = args.next().unwrap_or_default();
                let parts: Option<(usize, usize)> = spec
                    .split_once('/')
                    .and_then(|(i, n)| Some((i.parse().ok()?, n.parse().ok()?)));
                // Reject degenerate shard specs explicitly: N == 0 would
                // divide the plan into nothing and I >= N would run an
                // undefined (empty) shard whose "report" could poison a
                // merge; neither may silently produce output.
                match parts {
                    Some((index, count)) if count > 0 && index < count => {
                        parsed.shard = Some((index, count));
                    }
                    Some((_, 0)) => {
                        eprintln!("--shard {spec}: shard count must be positive (N >= 1)");
                        usage_exit();
                    }
                    Some((index, count)) => {
                        eprintln!(
                            "--shard {spec}: shard index {index} out of range for {count} \
                             shard(s); valid indices are 0..{count}"
                        );
                        usage_exit();
                    }
                    None => {
                        eprintln!("--shard expects I/N with I < N (got {spec:?})");
                        usage_exit();
                    }
                }
            }
            "--cache-dir" => {
                let Some(dir) = args.next() else {
                    eprintln!("--cache-dir expects a directory path");
                    usage_exit();
                };
                parsed.cache_dir = Some(PathBuf::from(dir));
            }
            "--no-cache" => parsed.no_cache = true,
            "--canonical-out" => {
                let Some(file) = args.next() else {
                    eprintln!("--canonical-out expects a file path");
                    usage_exit();
                };
                parsed.canonical_out = Some(PathBuf::from(file));
            }
            "--out" => {
                parsed.out = args.next();
                if parsed.out.is_none() {
                    eprintln!("--out expects a file path");
                    usage_exit();
                }
            }
            "--merge" => {
                // Consume file paths up to the next flag, so `--merge a b
                // --quick` still sees --quick as a flag.
                while args.peek().is_some_and(|next| !next.starts_with("--")) {
                    parsed.merge.push(args.next().expect("peeked"));
                }
                if parsed.merge.is_empty() {
                    eprintln!("--merge expects one or more shard files");
                    usage_exit();
                }
            }
            "--verify-rerun" => parsed.verify_rerun = true,
            "--analyze" => parsed.analyze = true,
            "--surface" => parsed.surface = true,
            "--surface-out" => {
                let Some(file) = args.next() else {
                    eprintln!("--surface-out expects a file path");
                    usage_exit();
                };
                parsed.surface = true;
                parsed.surface_out = Some(PathBuf::from(file));
            }
            "--synthetic" => parsed.synthetic = true,
            "--materialized" => parsed.materialized = true,
            "--replicate-factor" => {
                let value = args.next().and_then(|v| v.parse::<usize>().ok());
                match value {
                    Some(value) if value > 0 => parsed.replicate_factor = value,
                    _ => {
                        eprintln!("--replicate-factor expects a positive integer");
                        usage_exit();
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage_exit();
            }
        }
    }
    if parsed.shard.is_some() && !parsed.merge.is_empty() {
        eprintln!("--shard and --merge are mutually exclusive");
        usage_exit();
    }
    if parsed.shard.is_some() && parsed.out.is_none() {
        eprintln!("--shard requires --out FILE");
        usage_exit();
    }
    if parsed.verify_rerun && parsed.merge.is_empty() {
        eprintln!("--verify-rerun only applies to --merge");
        usage_exit();
    }
    if parsed.no_cache && parsed.cache_dir.is_some() {
        eprintln!("--cache-dir and --no-cache are mutually exclusive");
        usage_exit();
    }
    if parsed.canonical_out.is_some() && (parsed.shard.is_some() || !parsed.merge.is_empty()) {
        eprintln!("--canonical-out only applies to the full-matrix run");
        usage_exit();
    }
    if parsed.surface && parsed.shard.is_some() {
        eprintln!(
            "--surface does not apply to a single shard (a partial matrix would make the \
             success-probability surface misleading); merge the shards, then ask for the surface"
        );
        usage_exit();
    }
    if parsed.materialized && !parsed.synthetic {
        eprintln!("--materialized only applies to --synthetic");
        usage_exit();
    }
    if parsed.materialized && (parsed.shard.is_some() || !parsed.merge.is_empty()) {
        eprintln!("--materialized only applies to the whole in-process sweep, not --shard/--merge");
        usage_exit();
    }
    if parsed.synthetic
        && (parsed.analyze
            || parsed.cache_dir.is_some()
            || parsed.canonical_out.is_some()
            || parsed.verify_rerun)
    {
        eprintln!(
            "--synthetic runs the in-process synthetic sweep; it combines only with \
             --workers, --replicate-factor, --surface[-out], --materialized, \
             --shard I/N --out FILE and --merge FILE... (the synthetic merge \
             always cross-checks against a regenerated stream, so --verify-rerun \
             is implied, not accepted)"
        );
        usage_exit();
    }
    parsed
}

/// Prints (and optionally writes) the attack-success-probability surface,
/// exiting non-zero when the plan judged no cells — an empty surface is an
/// operator error, not a report.
fn emit_surface(aggregator: &StreamingAggregator, surface_out: Option<&Path>) {
    if aggregator.judged_cells() == 0 {
        eprintln!(
            "no judged cells: the attack-success surface is empty \
             (run a plan with attack scenarios)"
        );
        std::process::exit(1);
    }
    let surface = aggregator.render_surface();
    print!("{surface}");
    if let Some(file) = surface_out {
        if let Err(error) = std::fs::write(file, &surface) {
            eprintln!("cannot write surface report {}: {error}", file.display());
            std::process::exit(1);
        }
        println!("Wrote surface report to {}", file.display());
    }
}

/// `--synthetic`: the in-process synthetic sweep — the workload that
/// scales the streaming pipeline to millions of cells (no VM, no HTTP,
/// every cell judged). The streamed fold's memory is O(workers ×
/// aggregator); `--materialized` is the legacy per-cell-`Vec` control arm.
fn run_synthetic_mode(args: &Args) {
    let sweep = SyntheticSweep::new(args.replicate_factor);
    if let Some((index, count)) = args.shard {
        run_synthetic_shard(&sweep, index, count, args.out.as_deref().unwrap());
        return;
    }
    if !args.merge.is_empty() {
        run_synthetic_merge(
            &sweep,
            &args.merge,
            args.surface,
            args.surface_out.as_deref(),
        );
        return;
    }
    let shape = sweep.shape;
    println!(
        "Synthetic sweep: {} cells ({} configs x {} worlds x {} attacks x {} replicates), \
         plan hash {:#018x}, {} worker(s), {} path",
        sweep.cell_count(),
        shape.configs,
        shape.worlds,
        shape.scenarios,
        shape.replicates,
        sweep.plan_hash(),
        args.workers,
        if args.materialized {
            "materialized"
        } else {
            "streamed"
        }
    );
    let aggregator = if args.materialized {
        let report = sweep.run_materialized(args.workers);
        report.fold_aggregator()
    } else {
        sweep.run_streamed(args.workers)
    };
    println!("{}", aggregator.render_summary());
    if args.surface {
        emit_surface(&aggregator, args.surface_out.as_deref());
    }
}

fn per_cell_table(report: &CampaignReport, configs: &[DeploymentConfig]) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (config_index, config) in configs.iter().enumerate() {
        let config_cells = report.cells_for_config_index(config_index);
        let mut world_labels: Vec<&str> = Vec::new();
        for cell in &config_cells {
            if !world_labels.contains(&cell.spec.world_label.as_str()) {
                world_labels.push(&cell.spec.world_label);
            }
        }
        for world in world_labels {
            let cells: Vec<_> = config_cells
                .iter()
                .filter(|c| c.spec.world_label == world)
                .collect();
            let detected = cells.iter().filter(|c| c.outcome.detected_attack()).count();
            let survived = cells.iter().filter(|c| c.outcome.exited_normally()).count();
            let judged: Vec<_> = cells.iter().filter(|c| c.verdict.is_some()).collect();
            let matched = judged
                .iter()
                .filter(|c| {
                    c.verdict
                        .as_ref()
                        .is_some_and(nvariant_campaign::CellVerdict::matches)
                })
                .count();
            let mut tally = nvariant_campaign::RequestTally::default();
            for cell in &cells {
                tally.absorb(&cell.tally());
            }
            let wall: std::time::Duration = cells.iter().map(|c| c.wall).sum();
            rows.push(vec![
                config.label(),
                world.to_string(),
                cells.len().to_string(),
                format!("{detected}/{}", cells.len()),
                format!("{survived}/{}", cells.len()),
                format!("{matched}/{}", judged.len()),
                format!(
                    "{}/{}/{}/{}",
                    tally.ok, tally.forbidden, tally.not_found, tally.other
                ),
                format!("{wall:.1?}"),
            ]);
        }
    }
    render_table(
        &[
            "Configuration",
            "World",
            "Cells",
            "Alarmed",
            "Survived",
            "Matched",
            "200/403/404/other",
            "Cell wall",
        ],
        &rows,
    )
}

fn measure_build_once_speedup() {
    // Compile the heaviest paper configuration from scratch, then compare
    // the cost of re-running the full pipeline with the cost of stamping
    // out another instance of the artifact.
    let full_build = Instant::now();
    let compiled = NVariantSystemBuilder::from_source(httpd_source())
        .expect("bundled httpd parses")
        .config(DeploymentConfig::TwoVariantUid)
        .compile()
        .expect("bundled httpd compiles");
    let build_cost = full_build.elapsed();

    let runs = 20u32;
    let instantiate = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(compiled.instantiate());
    }
    let instantiate_cost = instantiate.elapsed() / runs;
    let speedup = build_cost.as_secs_f64() / instantiate_cost.as_secs_f64().max(1e-9);
    println!(
        "Build-once/run-many: full pipeline {build_cost:.1?}, instantiate {instantiate_cost:.1?} \
         ({speedup:.0}x cheaper per run)"
    );
}

/// `--shard I/N --out FILE`: run one shard, write the interchange file.
fn run_shard_mode(plan: &CampaignPlan, index: usize, count: usize, workers: usize, out: &str) {
    let cells = plan.shard(index, count).len();
    println!(
        "Shard {index}/{count}: {cells} of {} cells on {workers} worker(s), plan hash {:#018x}",
        plan.cells().len(),
        plan.plan_hash()
    );
    let report = plan.run_shard(index, count, workers);
    if let Err(error) = std::fs::write(out, report.to_shard_text()) {
        eprintln!("cannot write shard file {out}: {error}");
        std::process::exit(1);
    }
    println!("{}", report.render_summary());
    print_artifact_store_stats();
    println!("Wrote shard report to {out}");
}

/// The running digest of a canonical cell stream: FNV-1a over every cell's
/// canonical line (newline-terminated), in canonical order. Two reports
/// whose headers and cell counts match and whose stream digests agree are
/// byte-identical in canonical serialization — without either side holding
/// more than one cell at a time.
#[derive(Debug, Default)]
struct CanonicalDigest {
    hasher: Fnv1a,
    cells: usize,
}

impl CanonicalDigest {
    fn push(&mut self, line: &str) {
        self.hasher.write_str(line);
        self.hasher.write_str("\n");
        self.cells += 1;
    }

    fn finish(&self) -> (u64, usize) {
        (self.hasher.finish(), self.cells)
    }
}

/// Opens, gates, and k-way merges shard files into a fresh aggregator,
/// returning it alongside the running digest of the merged canonical cell
/// stream. Every validation or parse failure prints the offending file and
/// exits. Peak memory holds one decoded cell per shard however large the
/// shards are.
fn stream_merge_shards(
    files: &[String],
    expected_hash: u64,
    expected_shape: PlanShape,
) -> (StreamingAggregator, CanonicalDigest) {
    let mut cursors = Vec::with_capacity(files.len());
    for file in files {
        let cursor = ShardCursor::open(Path::new(file)).unwrap_or_else(|error| {
            eprintln!("{file}: {error}");
            std::process::exit(1);
        });
        let header = cursor.header();
        // Gate on this coordinator's own plan before any aggregation: a
        // shard from a differently-shaped plan (or the wrong --quick
        // setting) is rejected here even if every *shard file* agrees.
        if header.plan_hash != expected_hash {
            eprintln!(
                "{file}: shard plan hash {:#018x} does not match this plan ({expected_hash:#018x}); \
                 was the worker run with a different --quick setting or plan version?",
                header.plan_hash
            );
            std::process::exit(1);
        }
        // The shape must be this plan's too: merge validates coverage
        // against the *declared* shape, so a tampered shape line could
        // otherwise shrink the expected matrix and pass a subset off as
        // complete.
        if header.shape != expected_shape {
            eprintln!(
                "{file}: shard declares matrix shape {} but this plan is {expected_shape}",
                header.shape
            );
            std::process::exit(1);
        }
        println!(
            "Opened {file}: shard of plan {:#018x}, {:.1?} of shard wall",
            header.plan_hash, header.total_wall
        );
        cursors.push(cursor);
    }
    let mut merger = ShardMerger::new(cursors).unwrap_or_else(|error| {
        eprintln!("merge failed: {error}");
        std::process::exit(1);
    });
    let mut aggregator = StreamingAggregator::from_header(merger.header());
    let mut digest = CanonicalDigest::default();
    loop {
        match merger.next_cell() {
            Ok(Some(cell)) => {
                aggregator.absorb(&cell);
                digest.push(&cell.canonical_line());
            }
            Ok(None) => break,
            Err(error) => {
                eprintln!("merge failed: {error}");
                std::process::exit(1);
            }
        }
    }
    (aggregator, digest)
}

/// `--synthetic --shard I/N --out FILE`: write one round-robin shard of
/// the synthetic sweep as an interchange file, through the streaming
/// [`ShardWriter`] — the producer's peak memory is one cell, so even a
/// half-million-cell shard file can be generated under the CI memory cap.
fn run_synthetic_shard(sweep: &SyntheticSweep, index: usize, count: usize, out: &str) {
    let total = sweep.cell_count();
    let indices = || (index..total).step_by(count);
    println!(
        "Synthetic shard {index}/{count}: {} of {total} cells, plan hash {:#018x}",
        indices().count(),
        sweep.plan_hash()
    );
    // The header carries the shard's total wall, which precedes the cells
    // in the file — sum it in a first pass and regenerate the cells in the
    // second rather than holding them.
    let wall: Duration = indices().map(|linear| sweep.cell(linear).wall).sum();
    let header = ShardHeader {
        name: sweep.name.clone(),
        base_seed: sweep.base_seed,
        plan_hash: sweep.plan_hash(),
        shape: sweep.shape,
        workers: 1,
        total_wall: wall,
    };
    let fail = |error: &dyn std::fmt::Display| -> ! {
        eprintln!("cannot write shard file {out}: {error}");
        std::process::exit(1);
    };
    let file = std::fs::File::create(out).unwrap_or_else(|error| fail(&error));
    let mut writer =
        ShardWriter::new(BufWriter::new(file), &header).unwrap_or_else(|error| fail(&error));
    for linear in indices() {
        writer
            .push(&sweep.cell(linear))
            .unwrap_or_else(|error| fail(&error));
    }
    writer.finish().unwrap_or_else(|error| fail(&error));
    println!("Wrote synthetic shard report to {out}");
}

/// `--synthetic --merge FILE...`: stream-merge synthetic shard files,
/// gated by the synthetic plan's hash and shape. Because every synthetic
/// cell is regenerable in-process for the cost of a fold, the canonical
/// byte-identity cross-check that the real matrix gates behind
/// `--verify-rerun` runs unconditionally here — still in constant memory,
/// comparing running digests of the merged and regenerated cell streams.
fn run_synthetic_merge(
    sweep: &SyntheticSweep,
    files: &[String],
    surface: bool,
    surface_out: Option<&Path>,
) {
    let (aggregator, digest) = stream_merge_shards(files, sweep.plan_hash(), sweep.shape);
    println!(
        "\nMerged report (plan hash {:#018x}):",
        aggregator.plan_hash()
    );
    println!("{}", aggregator.render_summary());
    if surface {
        emit_surface(&aggregator, surface_out);
    }
    // Unlike the real matrix, verdict mismatches are *modeled data* in the
    // synthetic sweep (the surface reports them per group), not a failure.

    let mut regenerated = CanonicalDigest::default();
    for linear in 0..sweep.cell_count() {
        regenerated.push(&sweep.cell(linear).canonical_line());
    }
    let identical = regenerated.finish() == digest.finish();
    println!(
        "Synthetic determinism check ({} shard file(s) vs regenerated stream): {}",
        files.len(),
        if identical {
            "byte-identical canonical cell streams"
        } else {
            "MISMATCH"
        }
    );
    if !identical {
        std::process::exit(1);
    }
}

/// `--merge FILE...`: validate and merge shard files. Validation-only by
/// default — the plan hash gates the merge and the plan's cell matrix is
/// checked for coverage, so no cell is ever re-run. The merge itself
/// streams: one [`ShardCursor`] per file feeds a k-way [`ShardMerger`],
/// every merged cell folds into a [`StreamingAggregator`] and is dropped,
/// so peak memory holds one decoded cell per shard however large the
/// shards are. `--verify-rerun` additionally re-runs the plan unsharded
/// and compares canonical cell streams by running digest.
fn run_merge_mode(
    plan: &CampaignPlan,
    files: &[String],
    workers: usize,
    verify_rerun: bool,
    surface: bool,
    surface_out: Option<&Path>,
) {
    let (aggregator, digest) = stream_merge_shards(files, plan.plan_hash(), plan.shape());
    println!(
        "\nMerged report (plan hash {:#018x}):",
        aggregator.plan_hash()
    );
    println!("{}", aggregator.render_summary());
    if surface {
        emit_surface(&aggregator, surface_out);
    }

    let mismatches = aggregator.verdict_mismatches();
    if mismatches > 0 {
        println!("VERDICT MISMATCHES: {mismatches}");
        std::process::exit(1);
    }

    if verify_rerun {
        // The belt-and-braces cross-check: re-run the whole plan unsharded
        // in-process and demand canonical byte identity — compared as a
        // running digest over the canonical cell stream, so the merged
        // cells still never materialize.
        let whole = plan.run(workers);
        let mut whole_digest = CanonicalDigest::default();
        for cell in &whole.cells {
            whole_digest.push(&cell.canonical_line());
        }
        let identical = whole.plan_hash == aggregator.plan_hash()
            && whole.base_seed == aggregator.base_seed()
            && whole.shape == aggregator.shape()
            && whole_digest.finish() == digest.finish();
        println!(
            "Shard determinism check ({} shard file(s) vs unsharded re-run): {}",
            files.len(),
            if identical {
                "byte-identical canonical reports"
            } else {
                "MISMATCH"
            }
        );
        if !identical {
            std::process::exit(1);
        }
    } else {
        println!(
            "Validated {} shard file(s) against plan hash and cell matrix (no re-run; \
             pass --verify-rerun for the in-process byte-identity cross-check)",
            files.len()
        );
    }
}

/// One line of artifact-store effectiveness for operators (and the CI
/// cold/warm assertions).
fn print_artifact_store_stats() {
    let store = artifact_store();
    match store.disk_root() {
        Some(root) => println!("Artifact store ({}): {}", root.display(), store.stats()),
        None => println!("Artifact store (memory-only): {}", store.stats()),
    }
}

fn main() {
    let args = parse_args();
    // The synthetic sweep never touches the artifact store or the real
    // matrix: branch before any of that machinery allocates, so the CI
    // address-space experiment measures the pipeline, not the setup.
    if args.synthetic {
        run_synthetic_mode(&args);
        return;
    }
    // Resolve and install the cache configuration *before* the plan is
    // built — building it compiles the matrix's artifacts through the
    // process-wide store.
    let cache_dir = resolve_cache_dir(args.cache_dir.clone(), args.no_cache);
    init_artifact_store(cache_dir.clone());
    let (mut uncached_plan, configs, worlds) = report_matrix_plan(args.quick);
    if args.replicate_factor > 1 {
        let replicates = uncached_plan.shape().replicates * args.replicate_factor;
        uncached_plan = uncached_plan.replicates(replicates);
    }
    let plan = match &cache_dir {
        Some(dir) => uncached_plan.clone().with_cache_dir(dir),
        None => uncached_plan.clone(),
    };

    if args.analyze {
        let findings = verify_diversity_gate(&configs);
        if findings > 0 {
            eprintln!(
                "refusing to run campaign cells: {findings} static diversity finding(s) — \
                 fix the transform before measuring the deployment"
            );
            std::process::exit(EXIT_ANALYSIS_FINDINGS);
        }
        println!();
    }

    if let Some((index, count)) = args.shard {
        run_shard_mode(
            &plan,
            index,
            count,
            args.workers,
            args.out.as_deref().unwrap(),
        );
        return;
    }
    if !args.merge.is_empty() {
        // Merge mode validates without executing cells; its opt-in
        // --verify-rerun is the *independent* recomputation cross-check, so
        // it runs on the uncached plan — a poisoned cache cannot vouch for
        // itself.
        run_merge_mode(
            &uncached_plan,
            &args.merge,
            args.workers,
            args.verify_rerun,
            args.surface,
            args.surface_out.as_deref(),
        );
        return;
    }

    let attack_count = nvariant_apps::Attack::all().len();
    println!(
        "Campaign sweep: {} configurations x {} worlds x (2 benign workloads + {} attacks), \
         {} cells total, {} worker(s)",
        configs.len(),
        worlds.len(),
        attack_count,
        plan.cells().len(),
        args.workers
    );
    println!("==========================================================================\n");

    let report = plan.run(args.workers);
    println!("{}", per_cell_table(&report, &configs));
    println!("{}", report.render_summary());
    print_artifact_store_stats();
    if args.surface {
        emit_surface(&report.fold_aggregator(), args.surface_out.as_deref());
    }

    if let Some(file) = &args.canonical_out {
        if let Err(error) = std::fs::write(file, report.canonical_text()) {
            eprintln!("cannot write canonical report {}: {error}", file.display());
            std::process::exit(1);
        }
        println!("Wrote canonical report to {}", file.display());
    }

    let mismatches = report.verdict_mismatches();
    if !mismatches.is_empty() {
        println!("VERDICT MISMATCHES:");
        for cell in &mismatches {
            println!("  {}", cell.canonical_line());
        }
    }

    // The determinism contract, part 1: the same plan at 1 worker must
    // produce byte-identical canonical output. (With caching enabled this
    // re-run is served from the cache the first run just wrote, so the
    // byte-identity assertion doubles as a cache-correctness check: a hit
    // must reproduce the cold cell exactly.)
    let serial = plan.run(1);
    let deterministic = serial.canonical_text() == report.canonical_text();
    println!(
        "Determinism check ({} workers vs 1): {}",
        args.workers,
        if deterministic {
            "identical per-cell outcomes"
        } else {
            "MISMATCH"
        }
    );

    // Part 2: an in-process shard + merge round trip (through the shard
    // interchange text format, exactly what separate processes exchange)
    // must reassemble the same bytes.
    let shard_texts: Vec<String> = (0..3)
        .map(|index| plan.run_shard(index, 3, args.workers).to_shard_text())
        .collect();
    let reparsed: Vec<CampaignReport> = shard_texts
        .iter()
        .map(|text| CampaignReport::from_shard_text(text).expect("own shard text parses"))
        .collect();
    let merged = CampaignReport::merge(reparsed).expect("own shards merge");
    let shard_deterministic = merged.canonical_text() == report.canonical_text();
    println!(
        "Shard determinism check (3 shards, codec round trip): {}",
        if shard_deterministic {
            "byte-identical canonical reports"
        } else {
            "MISMATCH"
        }
    );

    measure_build_once_speedup();

    if !deterministic || !shard_deterministic || !mismatches.is_empty() {
        std::process::exit(1);
    }
}
