//! Static diversity verification of the compiled mini Apache: reconstruct
//! each variant pair's control-flow graphs, run the abstract interpreter of
//! `nvariant_analyze` over them, and check P-Residual (no UID constant
//! reaches a sink untransformed), P-Lockstep (variants identical modulo the
//! declared relation) and P-Boundary (syscall arguments in one reexpression
//! domain) over the paper's four configurations.
//!
//! Usage:
//!
//! * `nvariant_analyze [--config unmodified|transformed|address|uid|all]` —
//!   verify the selected configuration(s); prints one verdict block per
//!   configuration. Exits 0 when every pair is clean, 6 when any finding
//!   surfaces.
//! * `nvariant_analyze --weakened [...]` — verify artifacts built with the
//!   deliberately weakened transform (UID reexpression skips the
//!   `server_uid` global). This must *fail* with a P-Residual finding naming
//!   the exact pc; CI asserts the 6 exit and greps the diagnostic. It is the
//!   verifier's own regression mode, mirroring `nvariant_check --weakened`.
//!
//! Verification is deterministic: the same invocation prints byte-identical
//! reports.

use nvariant::analyze::verdict_is_clean;
use nvariant::{AnalysisReport, DeploymentConfig};
use nvariant_apps::checks::{httpd_analysis_reports, weakened_transform_analysis_reports};

/// Exit status when any property finding surfaces (0 = clean, 2 = usage).
const EXIT_FINDINGS: i32 = 6;

#[derive(Clone, Debug, Default)]
struct Args {
    configs: Vec<DeploymentConfig>,
    weakened: bool,
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: nvariant_analyze [--config unmodified|transformed|address|uid|all] [--weakened]"
    );
    std::process::exit(2);
}

fn parse_config(value: &str) -> Option<DeploymentConfig> {
    match value.to_ascii_lowercase().as_str() {
        "unmodified" => Some(DeploymentConfig::Unmodified),
        "transformed" => Some(DeploymentConfig::TransformedSingle),
        "address" => Some(DeploymentConfig::TwoVariantAddress),
        "uid" => Some(DeploymentConfig::TwoVariantUid),
        _ => None,
    }
}

fn parse_args() -> Args {
    let mut parsed = Args::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => {
                let Some(value) = args.next() else {
                    eprintln!("--config expects unmodified, transformed, address, uid or all");
                    usage_exit();
                };
                if value.eq_ignore_ascii_case("all") {
                    parsed.configs = DeploymentConfig::paper_configurations();
                } else {
                    let Some(config) = parse_config(&value) else {
                        eprintln!(
                            "unknown configuration {value:?} (expected unmodified, transformed, \
                             address, uid or all)"
                        );
                        usage_exit();
                    };
                    parsed.configs.push(config);
                }
            }
            "--weakened" => parsed.weakened = true,
            other => {
                eprintln!("unknown argument: {other}");
                usage_exit();
            }
        }
    }
    if parsed.configs.is_empty() {
        parsed.configs = DeploymentConfig::paper_configurations();
    }
    parsed
}

fn main() {
    let args = parse_args();
    let mode = if args.weakened {
        "weakened transform (UID reexpression skips server_uid)"
    } else {
        "paper transform"
    };
    println!("static diversity verification — {mode}");
    let mut total_findings = 0usize;
    for config in &args.configs {
        let reports: Vec<AnalysisReport> = if args.weakened {
            weakened_transform_analysis_reports(config)
        } else {
            httpd_analysis_reports(config)
        };
        let verdict = nvariant::analyze::combined_verdict(&reports);
        println!("\n== {} ==", config.label());
        println!("{verdict}");
        if !verdict_is_clean(&verdict) {
            for report in &reports {
                if !report.is_clean() {
                    println!("{}", report.render());
                    total_findings += report.findings.len();
                }
            }
        }
    }
    if total_findings > 0 {
        println!("\n{total_findings} finding(s) across the sweep");
        std::process::exit(EXIT_FINDINGS);
    }
    println!("\nall pairs clean");
}
