//! The single-process runner: executes one SimC process directly against the
//! simulated kernel, with no replication and no monitor.
//!
//! This is how the paper's Configuration 1 (unmodified Apache) and
//! Configuration 2 (UID-transformed Apache running as a single process) are
//! executed, and it doubles as the oracle the N-variant integration tests
//! compare against.

use crate::fault::Fault;
use crate::interp::TrapReason;
use crate::process::Process;
use nvariant_simos::{OpenFlags, OsKernel, SyscallRequest, Sysno};
use nvariant_types::{Errno, Fd, Gid, Pid, Port, Uid, Word};
use serde::{Deserialize, Serialize};

/// Execution limits for a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunLimits {
    /// Maximum bytecode instructions per system-call slice.
    pub max_steps_per_slice: u64,
    /// Maximum total system calls before the run is aborted.
    pub max_syscalls: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_steps_per_slice: 20_000_000,
            max_syscalls: 1_000_000,
        }
    }
}

/// The observable outcome of running a process to completion.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Exit status, if the process exited normally.
    pub exit_status: Option<i32>,
    /// The fault that terminated the process, if any.
    pub fault: Option<Fault>,
    /// Total bytecode instructions executed.
    pub instructions: u64,
    /// Total system calls issued.
    pub syscalls: u64,
    /// Total bytes moved by I/O system calls (read/write/recv/send).
    pub io_bytes: u64,
}

impl RunOutcome {
    /// Returns `true` if the process exited normally (with any status).
    #[must_use]
    pub fn exited_normally(&self) -> bool {
        self.exit_status.is_some() && self.fault.is_none()
    }
}

/// Runs a single process against a kernel, dispatching its system calls
/// directly (no variant replication, no equivalence checks).
///
/// # Example
///
/// ```
/// use nvariant_simos::{OsKernel, WorldBuilder};
/// use nvariant_types::Uid;
/// use nvariant_vm::{compile_program, parse_with_stdlib, MemoryLayout, Process, RunLimits, Runner};
///
/// let program = parse_with_stdlib(r#"
///     fn main() -> int {
///         var fd: int;
///         var text: buf[64];
///         fd = open("/etc/httpd.conf", 0);
///         if (fd < 0) { return 1; }
///         read(fd, &text, 63);
///         close(fd);
///         if (starts_with(&text, "Listen 80")) { return 0; }
///         return 2;
///     }
/// "#)?;
/// let compiled = compile_program(&program)?;
/// let mut process = Process::new(&compiled, MemoryLayout::default());
/// let mut kernel = WorldBuilder::standard().build();
/// let pid = kernel.spawn_process(Uid::ROOT);
/// let outcome = Runner::new(RunLimits::default()).run(&mut kernel, pid, &mut process);
/// assert_eq!(outcome.exit_status, Some(0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Runner {
    limits: RunLimits,
}

impl Runner {
    /// Creates a runner with the given limits.
    #[must_use]
    pub fn new(limits: RunLimits) -> Self {
        Runner { limits }
    }

    /// Runs `process` (as kernel process `pid`) to completion.
    pub fn run(&self, kernel: &mut OsKernel, pid: Pid, process: &mut Process) -> RunOutcome {
        let mut io_bytes = 0u64;
        let mut syscalls = 0u64;
        loop {
            match process.run_until_trap(self.limits.max_steps_per_slice) {
                TrapReason::Exited(status) => {
                    return RunOutcome {
                        exit_status: Some(status),
                        fault: None,
                        instructions: process.instructions_executed(),
                        syscalls,
                        io_bytes,
                    }
                }
                TrapReason::Faulted(fault) => {
                    return RunOutcome {
                        exit_status: None,
                        fault: Some(fault),
                        instructions: process.instructions_executed(),
                        syscalls,
                        io_bytes,
                    }
                }
                TrapReason::Syscall(request) => {
                    syscalls += 1;
                    if syscalls > self.limits.max_syscalls {
                        process.set_faulted(Fault::StepLimitExceeded);
                        continue;
                    }
                    if request.sysno == Sysno::Exit {
                        let status = request.arg(0).as_i32();
                        let _ = kernel.exit(pid, status);
                        process.set_exited(status);
                        continue;
                    }
                    let (ret, bytes) = dispatch_syscall(kernel, pid, &request, process);
                    io_bytes += bytes;
                    process.complete_syscall(ret);
                }
            }
        }
    }
}

/// Executes one system call against the kernel on behalf of a process,
/// returning the value to deliver to the program and the number of I/O bytes
/// moved.
///
/// Detection calls (Table 2) are no-ops in single-process mode: they return
/// the value their untransformed semantics dictate, so an untransformed and
/// a transformed program behave identically when run alone — the *normal
/// equivalence* property at the single-variant level.
pub fn dispatch_syscall(
    kernel: &mut OsKernel,
    pid: Pid,
    request: &SyscallRequest,
    process: &mut Process,
) -> (Word, u64) {
    let ret = do_dispatch(kernel, pid, request, process);
    match ret {
        Ok((value, bytes)) => (value, bytes),
        Err(errno) => (Word::from_i32(errno.as_syscall_ret()), 0),
    }
}

fn do_dispatch(
    kernel: &mut OsKernel,
    pid: Pid,
    request: &SyscallRequest,
    process: &mut Process,
) -> Result<(Word, u64), Errno> {
    let arg = |i: usize| request.arg(i);
    match request.sysno {
        Sysno::Exit => Ok((Word::ZERO, 0)),
        Sysno::GetUid => Ok((Word::from_uid(kernel.getuid(pid)?), 0)),
        Sysno::GetEuid => Ok((Word::from_uid(kernel.geteuid(pid)?), 0)),
        Sysno::GetGid => Ok((Word::from_u32(kernel.getgid(pid)?.as_u32()), 0)),
        Sysno::SetUid => {
            kernel.setuid(pid, arg(0).as_uid())?;
            Ok((Word::ZERO, 0))
        }
        Sysno::SetEuid => {
            kernel.seteuid(pid, arg(0).as_uid())?;
            Ok((Word::ZERO, 0))
        }
        Sysno::SetGid => {
            kernel.setgid(pid, Gid::new(arg(0).as_u32()))?;
            Ok((Word::ZERO, 0))
        }
        Sysno::SetReUid => {
            let decode = |w: Word| {
                if w.as_i32() == -1 {
                    None
                } else {
                    Some(w.as_uid())
                }
            };
            kernel.setreuid(pid, decode(arg(0)), decode(arg(1)))?;
            Ok((Word::ZERO, 0))
        }
        Sysno::Open => {
            let path_bytes = process
                .read_cstring(arg(0).as_addr(), 4096)
                .map_err(|_| Errno::Efault)?;
            let path = String::from_utf8_lossy(&path_bytes).to_string();
            let flags = OpenFlags::from_bits(arg(1).as_u32());
            let fd = kernel.open(pid, &path, flags)?;
            Ok((Word::from_u32(fd.as_u32()), 0))
        }
        Sysno::Read | Sysno::Recv => {
            let fd = Fd::new(arg(0).as_u32());
            let buf_addr = arg(1).as_addr();
            let count = arg(2).as_u32() as usize;
            let data = if request.sysno == Sysno::Read {
                kernel.read(pid, fd, count)?
            } else {
                kernel.recv(pid, fd, count)?
            };
            process
                .write_bytes(buf_addr, &data)
                .map_err(|_| Errno::Efault)?;
            Ok((Word::from_u32(data.len() as u32), data.len() as u64))
        }
        Sysno::Write | Sysno::Send => {
            let fd = Fd::new(arg(0).as_u32());
            let buf_addr = arg(1).as_addr();
            let count = arg(2).as_u32() as usize;
            let data = process
                .read_bytes(buf_addr, count)
                .map_err(|_| Errno::Efault)?;
            let written = if request.sysno == Sysno::Write {
                kernel.write(pid, fd, &data)?
            } else {
                kernel.send(pid, fd, &data)?
            };
            Ok((Word::from_u32(written as u32), written as u64))
        }
        Sysno::Close => {
            kernel.close(pid, Fd::new(arg(0).as_u32()))?;
            Ok((Word::ZERO, 0))
        }
        Sysno::Socket => Ok((Word::from_u32(kernel.socket(pid)?.as_u32()), 0)),
        Sysno::Bind => {
            let fd = Fd::new(arg(0).as_u32());
            let port = Port::new(arg(1).as_u32() as u16);
            kernel.bind(pid, fd, port)?;
            Ok((Word::ZERO, 0))
        }
        Sysno::Listen => {
            kernel.listen(pid, Fd::new(arg(0).as_u32()))?;
            Ok((Word::ZERO, 0))
        }
        Sysno::Accept => {
            let fd = kernel.accept(pid, Fd::new(arg(0).as_u32()))?;
            Ok((Word::from_u32(fd.as_u32()), 0))
        }
        Sysno::Time => Ok((Word::from_u32(kernel.time() as u32), 0)),
        // Detection calls degenerate to their plain semantics when no monitor
        // is attached.
        Sysno::UidValue => Ok((arg(0), 0)),
        Sysno::CondChk => Ok((Word::from_bool(arg(0).as_bool()), 0)),
        Sysno::CcEq => Ok((Word::from_bool(arg(0) == arg(1)), 0)),
        Sysno::CcNeq => Ok((Word::from_bool(arg(0) != arg(1)), 0)),
        Sysno::CcLt => Ok((Word::from_bool(arg(0).as_u32() < arg(1).as_u32()), 0)),
        Sysno::CcLeq => Ok((Word::from_bool(arg(0).as_u32() <= arg(1).as_u32()), 0)),
        Sysno::CcGt => Ok((Word::from_bool(arg(0).as_u32() > arg(1).as_u32()), 0)),
        Sysno::CcGeq => Ok((Word::from_bool(arg(0).as_u32() >= arg(1).as_u32()), 0)),
        // `Sysno` is non-exhaustive; unknown calls are rejected like a real
        // kernel would reject an unimplemented syscall number.
        _ => Err(Errno::Enosys),
    }
}

/// Convenience: runs `process` as a freshly spawned kernel process owned by
/// `uid` and returns the outcome.
pub fn run_as_user(
    kernel: &mut OsKernel,
    uid: Uid,
    process: &mut Process,
    limits: RunLimits,
) -> RunOutcome {
    let pid = kernel.spawn_process(uid);
    Runner::new(limits).run(kernel, pid, process)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_program;
    use crate::process::MemoryLayout;
    use crate::stdlib::parse_with_stdlib;
    use nvariant_simos::WorldBuilder;

    fn run_source(src: &str, uid: Uid) -> (RunOutcome, OsKernel, Pid) {
        let program = parse_with_stdlib(src).unwrap();
        let compiled = compile_program(&program).unwrap();
        let mut process = Process::new(&compiled, MemoryLayout::default());
        let mut kernel = WorldBuilder::standard().build();
        let pid = kernel.spawn_process(uid);
        let outcome = Runner::new(RunLimits::default()).run(&mut kernel, pid, &mut process);
        (outcome, kernel, pid)
    }

    #[test]
    fn identity_syscalls_round_trip() {
        let (outcome, _, _) = run_source(
            r"
            fn main() -> int {
                var uid: uid_t;
                uid = getuid();
                if (uid == 0) { return 1; }
                return 0;
            }
            ",
            Uid::ROOT,
        );
        assert_eq!(outcome.exit_status, Some(1));
        assert!(outcome.exited_normally());
    }

    #[test]
    fn privilege_drop_through_syscalls() {
        let (outcome, kernel, pid) = run_source(
            r"
            fn main() -> int {
                var rc: int;
                rc = setuid(48);
                if (rc != 0) { return 1; }
                rc = seteuid(0);
                if (rc == 0) { return 2; }
                return 0;
            }
            ",
            Uid::ROOT,
        );
        assert_eq!(outcome.exit_status, Some(0));
        assert_eq!(kernel.credentials(pid).unwrap().euid(), Uid::new(48));
    }

    #[test]
    fn file_io_against_the_standard_world() {
        let (outcome, _, _) = run_source(
            r#"
            fn main() -> int {
                var fd: int;
                var text: buf[256];
                fd = open("/etc/passwd", 0);
                if (fd < 0) { return 1; }
                read(fd, &text, 255);
                close(fd);
                if (str_contains(&text, "httpd")) { return 0; }
                return 2;
            }
            "#,
            Uid::new(48),
        );
        assert_eq!(outcome.exit_status, Some(0));
        assert!(outcome.io_bytes > 20);
    }

    #[test]
    fn permission_errors_reach_the_program_as_negative_errno() {
        let (outcome, _, _) = run_source(
            r#"
            fn main() -> int {
                var fd: int;
                fd = open("/etc/shadow", 0);
                if (fd == 0 - 13) { return 0; }
                return fd;
            }
            "#,
            Uid::new(48),
        );
        assert_eq!(outcome.exit_status, Some(0));
    }

    #[test]
    fn network_round_trip() {
        let program = parse_with_stdlib(
            r#"
            fn main() -> int {
                var sock: int;
                var conn: int;
                var request: buf[128];
                sock = socket();
                bind(sock, 80);
                listen(sock);
                conn = accept(sock);
                if (conn < 0) { return 1; }
                recv(conn, &request, 127);
                if (starts_with(&request, "GET /") == 0) { return 2; }
                send_str(conn, "HTTP/1.0 200 OK\r\n\r\nhello");
                close(conn);
                return 0;
            }
            "#,
        )
        .unwrap();
        let compiled = compile_program(&program).unwrap();

        // With no client staged, accept returns EAGAIN and the server exits 1.
        let mut idle_kernel = WorldBuilder::standard().build();
        let mut idle_process = Process::new(&compiled, MemoryLayout::default());
        let idle_pid = idle_kernel.spawn_process(Uid::ROOT);
        let idle =
            Runner::new(RunLimits::default()).run(&mut idle_kernel, idle_pid, &mut idle_process);
        assert_eq!(idle.exit_status, Some(1));

        // With a client request staged before the server starts, the full
        // request/response round trip completes.
        let mut kernel = WorldBuilder::standard().build();
        kernel
            .net_mut()
            .preload_request(Port::HTTP, b"GET / HTTP/1.0\r\n\r\n".to_vec());
        let mut process = Process::new(&compiled, MemoryLayout::default());
        let pid = kernel.spawn_process(Uid::ROOT);
        let outcome = Runner::new(RunLimits::default()).run(&mut kernel, pid, &mut process);
        assert_eq!(outcome.exit_status, Some(0));
        let conn = kernel.net().connections().next().unwrap();
        assert!(conn.response.starts_with(b"HTTP/1.0 200 OK"));
    }

    #[test]
    fn detection_calls_behave_transparently_without_a_monitor() {
        let (outcome, _, _) = run_source(
            r"
            fn main() -> int {
                var uid: uid_t;
                uid = uid_value(getuid());
                if (cc_eq(uid, 0) == 0) { return 1; }
                if (cc_neq(uid, 5) == 0) { return 2; }
                if (cc_lt(uid, 1) == 0) { return 3; }
                if (cc_leq(uid, 0) == 0) { return 4; }
                if (cc_gt(5, uid) == 0) { return 5; }
                if (cc_geq(uid, 0) == 0) { return 6; }
                if (cond_chk(uid == 0) == 0) { return 7; }
                return 0;
            }
            ",
            Uid::ROOT,
        );
        assert_eq!(outcome.exit_status, Some(0));
    }

    #[test]
    fn faults_are_reported_in_the_outcome() {
        let (outcome, _, _) = run_source(
            r"
            fn main() -> int {
                var p: ptr;
                p = 4;
                return *p;
            }
            ",
            Uid::ROOT,
        );
        assert_eq!(outcome.exit_status, None);
        assert!(matches!(outcome.fault, Some(Fault::Segfault { .. })));
        assert!(!outcome.exited_normally());
    }

    #[test]
    fn run_as_user_helper() {
        let program = parse_with_stdlib("fn main() -> int { return geteuid(); }").unwrap();
        let compiled = compile_program(&program).unwrap();
        let mut process = Process::new(&compiled, MemoryLayout::default());
        let mut kernel = WorldBuilder::standard().build();
        let outcome = run_as_user(
            &mut kernel,
            Uid::new(48),
            &mut process,
            RunLimits::default(),
        );
        assert_eq!(outcome.exit_status, Some(48));
    }

    #[test]
    fn console_output_via_write_str() {
        let (outcome, kernel, pid) = run_source(
            r#"
            fn main() -> int {
                write_str(1, "starting up\n");
                write_str(2, "warning: test\n");
                return 0;
            }
            "#,
            Uid::ROOT,
        );
        assert_eq!(outcome.exit_status, Some(0));
        let console = String::from_utf8(kernel.console_output(pid).unwrap().to_vec()).unwrap();
        assert!(console.contains("starting up"));
        assert!(console.contains("warning: test"));
    }
}
