//! The SimC recursive-descent parser.

use crate::ast::{BinOp, Expr, Function, GlobalDecl, LValue, Param, Program, Stmt, Type, UnOp};
use crate::lexer::{tokenize, LexError, SpannedToken, Token};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced while parsing SimC source.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line number (0 for end of input).
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parses SimC source text into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first lexical or syntactic
/// problem encountered.
///
/// # Example
///
/// ```
/// use nvariant_vm::parse_program;
///
/// let program = parse_program(r#"
///     var server_uid: uid_t;
///     fn main() -> int {
///         server_uid = getuid();
///         if (server_uid == 0) { return 1; }
///         return 0;
///     }
/// "#)?;
/// assert_eq!(program.functions.len(), 1);
/// # Ok::<(), nvariant_vm::ParseError>(())
/// ```
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(source)?;
    Parser::new(tokens).parse_program()
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<SpannedToken>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.tokens.get(self.pos).map_or(0, |t| t.line),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek_second(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|t| &t.token)
    }

    fn advance(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).map(|t| t.token.clone());
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn expect(&mut self, expected: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(token) if token == expected => {
                self.pos += 1;
                Ok(())
            }
            Some(token) => Err(self.error(format!("expected {expected}, found {token}"))),
            None => Err(self.error(format!("expected {expected}, found end of input"))),
        }
    }

    fn eat(&mut self, expected: &Token) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Some(Token::Ident(name)) => Ok(name),
            Some(other) => Err(ParseError {
                message: format!("expected identifier, found {other}"),
                line: self.tokens.get(self.pos - 1).map_or(0, |t| t.line),
            }),
            None => Err(self.error("expected identifier, found end of input")),
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::new();
        while let Some(token) = self.peek() {
            match token {
                Token::KwVar => program.globals.push(self.parse_global()?),
                Token::KwFn => program.functions.push(self.parse_function()?),
                other => return Err(self.error(format!("expected `var` or `fn`, found {other}"))),
            }
        }
        Ok(program)
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let name = self.expect_ident()?;
        match name.as_str() {
            "int" => Ok(Type::Int),
            "uid_t" => Ok(Type::UidT),
            "gid_t" => Ok(Type::GidT),
            "ptr" => Ok(Type::Ptr),
            "void" => Ok(Type::Void),
            "buf" => {
                self.expect(&Token::LBracket)?;
                let size = match self.advance() {
                    Some(Token::Int(n)) if n > 0 => n as u32,
                    _ => return Err(self.error("expected positive buffer size")),
                };
                self.expect(&Token::RBracket)?;
                Ok(Type::Buf(size))
            }
            other => Err(self.error(format!("unknown type `{other}`"))),
        }
    }

    fn parse_global(&mut self) -> Result<GlobalDecl, ParseError> {
        self.expect(&Token::KwVar)?;
        let name = self.expect_ident()?;
        self.expect(&Token::Colon)?;
        let ty = self.parse_type()?;
        let init = if self.eat(&Token::Assign) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect(&Token::Semicolon)?;
        Ok(GlobalDecl { name, ty, init })
    }

    fn parse_function(&mut self) -> Result<Function, ParseError> {
        self.expect(&Token::KwFn)?;
        let name = self.expect_ident()?;
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                let pname = self.expect_ident()?;
                self.expect(&Token::Colon)?;
                let ty = self.parse_type()?;
                params.push(Param { name: pname, ty });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        let ret = if self.eat(&Token::Arrow) {
            self.parse_type()?
        } else {
            Type::Void
        };
        let body = self.parse_block()?;
        Ok(Function {
            name,
            params,
            ret,
            body,
        })
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Token::RBrace) {
            if self.peek().is_none() {
                return Err(self.error("unterminated block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        self.expect(&Token::RBrace)?;
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Token::KwVar) => {
                self.advance();
                let name = self.expect_ident()?;
                self.expect(&Token::Colon)?;
                let ty = self.parse_type()?;
                let init = if self.eat(&Token::Assign) {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                self.expect(&Token::Semicolon)?;
                Ok(Stmt::VarDecl { name, ty, init })
            }
            Some(Token::KwIf) => {
                self.advance();
                self.expect(&Token::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                let then_body = self.parse_block()?;
                let else_body = if self.eat(&Token::KwElse) {
                    if self.peek() == Some(&Token::KwIf) {
                        vec![self.parse_stmt()?]
                    } else {
                        self.parse_block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            Some(Token::KwWhile) => {
                self.advance();
                self.expect(&Token::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                let body = self.parse_block()?;
                Ok(Stmt::While { cond, body })
            }
            Some(Token::KwReturn) => {
                self.advance();
                if self.eat(&Token::Semicolon) {
                    Ok(Stmt::Return(None))
                } else {
                    let value = self.parse_expr()?;
                    self.expect(&Token::Semicolon)?;
                    Ok(Stmt::Return(Some(value)))
                }
            }
            Some(Token::KwBreak) => {
                self.advance();
                self.expect(&Token::Semicolon)?;
                Ok(Stmt::Break)
            }
            Some(Token::KwContinue) => {
                self.advance();
                self.expect(&Token::Semicolon)?;
                Ok(Stmt::Continue)
            }
            Some(_) => {
                let expr = self.parse_expr()?;
                if self.eat(&Token::Assign) {
                    let target = match expr {
                        Expr::Ident(name) => LValue::Var(name),
                        Expr::Index(base, index) => LValue::Index(*base, *index),
                        Expr::Deref(inner) => LValue::Deref(*inner),
                        other => {
                            return Err(self.error(format!("invalid assignment target: {other:?}")))
                        }
                    };
                    let value = self.parse_expr()?;
                    self.expect(&Token::Semicolon)?;
                    Ok(Stmt::Assign { target, value })
                } else {
                    self.expect(&Token::Semicolon)?;
                    Ok(Stmt::Expr(expr))
                }
            }
            None => Err(self.error("expected statement, found end of input")),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_logical_or()
    }

    fn parse_logical_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_logical_and()?;
        while self.eat(&Token::OrOr) {
            let rhs = self.parse_logical_and()?;
            lhs = Expr::binary(BinOp::LogOr, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_logical_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_bit_or()?;
        while self.eat(&Token::AndAnd) {
            let rhs = self.parse_bit_or()?;
            lhs = Expr::binary(BinOp::LogAnd, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_bit_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_bit_xor()?;
        while self.eat(&Token::Pipe) {
            let rhs = self.parse_bit_xor()?;
            lhs = Expr::binary(BinOp::BitOr, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_bit_xor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_bit_and()?;
        while self.eat(&Token::Caret) {
            let rhs = self.parse_bit_and()?;
            lhs = Expr::binary(BinOp::BitXor, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_bit_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_equality()?;
        while self.peek() == Some(&Token::Amp) && !self.amp_is_addr_of() {
            self.advance();
            let rhs = self.parse_equality()?;
            lhs = Expr::binary(BinOp::BitAnd, lhs, rhs);
        }
        Ok(lhs)
    }

    /// Disambiguates binary `a & b` from unary address-of in contexts like
    /// `f(a, &b)`: after an operator or `(`/`,`, `&` is address-of and is
    /// handled by `parse_unary`, so this is only reached when `&` follows a
    /// complete operand and is therefore always binary. Kept as a hook for
    /// clarity.
    #[allow(clippy::unused_self)] // a method on purpose: the decision belongs to the parser
    fn amp_is_addr_of(&self) -> bool {
        false
    }

    fn parse_equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_relational()?;
        loop {
            let op = match self.peek() {
                Some(Token::EqEq) => BinOp::Eq,
                Some(Token::NotEq) => BinOp::Ne,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_relational()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_shift()?;
        loop {
            let op = match self.peek() {
                Some(Token::Lt) => BinOp::Lt,
                Some(Token::Le) => BinOp::Le,
                Some(Token::Gt) => BinOp::Gt,
                Some(Token::Ge) => BinOp::Ge,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_shift()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_shift(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                Some(Token::Shl) => BinOp::Shl,
                Some(Token::Shr) => BinOp::Shr,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_additive()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_unary()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Minus) => {
                self.advance();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.parse_unary()?)))
            }
            Some(Token::Bang) => {
                self.advance();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.parse_unary()?)))
            }
            Some(Token::Tilde) => {
                self.advance();
                Ok(Expr::Unary(UnOp::BitNot, Box::new(self.parse_unary()?)))
            }
            Some(Token::Star) => {
                self.advance();
                Ok(Expr::Deref(Box::new(self.parse_unary()?)))
            }
            Some(Token::Amp) => {
                self.advance();
                let name = self.expect_ident()?;
                Ok(Expr::AddrOf(name))
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_primary()?;
        while let Some(Token::LBracket) = self.peek() {
            self.advance();
            let index = self.parse_expr()?;
            self.expect(&Token::RBracket)?;
            expr = Expr::Index(Box::new(expr), Box::new(index));
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.advance() {
            Some(Token::Int(n)) => Ok(Expr::IntLit(n)),
            Some(Token::Str(s)) => Ok(Expr::StrLit(s)),
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::LParen) {
                    self.advance();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            Some(Token::LParen) => {
                let expr = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(expr)
            }
            Some(other) => Err(ParseError {
                message: format!("expected expression, found {other}"),
                line: self.tokens.get(self.pos - 1).map_or(0, |t| t.line),
            }),
            None => Err(self.error("expected expression, found end of input")),
        }
    }
}

// Suppress an unused-method lint path for `peek_second`, which exists for
// future lookahead needs of the transformation tooling.
impl Parser {
    #[allow(dead_code)]
    fn lookahead_is_assignment(&self) -> bool {
        matches!(self.peek_second(), Some(Token::Assign))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_globals_and_functions() {
        let program = parse_program(
            r"
            var logbuf: buf[128];
            var server_uid: uid_t;
            var count: int = 0;

            fn main() -> int {
                return count;
            }
            ",
        )
        .unwrap();
        assert_eq!(program.globals.len(), 3);
        assert_eq!(program.globals[0].ty, Type::Buf(128));
        assert_eq!(program.globals[1].ty, Type::UidT);
        assert_eq!(program.globals[2].init, Some(Expr::IntLit(0)));
        assert_eq!(program.functions.len(), 1);
        assert_eq!(program.functions[0].ret, Type::Int);
    }

    #[test]
    fn parses_params_and_void_functions() {
        let program =
            parse_program("fn log_request(conn: int, path: ptr) { write(1, path, strlen(path)); }")
                .unwrap();
        let f = &program.functions[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[1].ty, Type::Ptr);
        assert_eq!(f.ret, Type::Void);
        assert_eq!(f.body.len(), 1);
    }

    #[test]
    fn parses_if_else_chains_and_while() {
        let program = parse_program(
            r"
            fn classify(n: int) -> int {
                var i: int = 0;
                while (i < n) {
                    if (i == 3) { break; } else if (i == 5) { continue; } else { i = i + 1; }
                }
                return i;
            }
            ",
        )
        .unwrap();
        let f = &program.functions[0];
        match &f.body[1] {
            Stmt::While { body, .. } => match &body[0] {
                Stmt::If { else_body, .. } => {
                    assert!(matches!(else_body[0], Stmt::If { .. }));
                }
                other => panic!("expected if, got {other:?}"),
            },
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let program = parse_program("fn f() -> int { return 1 + 2 * 3 == 7 && 4 < 5; }").unwrap();
        // ((1 + (2*3)) == 7) && (4 < 5)
        match &program.functions[0].body[0] {
            Stmt::Return(Some(Expr::Binary(BinOp::LogAnd, lhs, rhs))) => {
                assert!(matches!(**lhs, Expr::Binary(BinOp::Eq, _, _)));
                assert!(matches!(**rhs, Expr::Binary(BinOp::Lt, _, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_pointer_and_index_forms() {
        let program = parse_program(
            r"
            fn f(p: ptr) -> int {
                var local: buf[16];
                *p = 4;
                local[0] = 65;
                p[1] = local[0];
                return *p + p[1];
            }
            ",
        )
        .unwrap();
        let f = &program.functions[0];
        assert!(matches!(
            &f.body[1],
            Stmt::Assign {
                target: LValue::Deref(_),
                ..
            }
        ));
        assert!(matches!(
            &f.body[2],
            Stmt::Assign {
                target: LValue::Index(_, _),
                ..
            }
        ));
    }

    #[test]
    fn parses_addr_of_and_calls() {
        let program =
            parse_program("fn f() -> int { var b: buf[8]; return recv(0, &b, 8); }").unwrap();
        match &program.functions[0].body[1] {
            Stmt::Return(Some(Expr::Call(name, args))) => {
                assert_eq!(name, "recv");
                assert_eq!(args.len(), 3);
                assert_eq!(args[1], Expr::AddrOf("b".into()));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_string_literals_and_bitops() {
        let program = parse_program(
            r#"fn f(u: uid_t) -> uid_t { write(1, "root\n", 5); return u ^ 0x7FFFFFFF; }"#,
        )
        .unwrap();
        match &program.functions[0].body[1] {
            Stmt::Return(Some(Expr::Binary(BinOp::BitXor, _, rhs))) => {
                assert_eq!(**rhs, Expr::IntLit(0x7FFF_FFFF));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn implicit_comparison_to_zero_via_not() {
        let program =
            parse_program("fn f() -> int { if (!getuid()) { return 1; } return 0; }").unwrap();
        match &program.functions[0].body[0] {
            Stmt::If { cond, .. } => {
                assert!(matches!(cond, Expr::Unary(UnOp::Not, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_programs() {
        assert!(parse_program("fn () {}").is_err());
        assert!(parse_program("var x: unknown_type;").is_err());
        assert!(parse_program("var x: buf[0];").is_err());
        assert!(parse_program("fn f() { 1 + ; }").is_err());
        assert!(parse_program("fn f() { return 1 }").is_err());
        assert!(parse_program("fn f() { 3 = x; }").is_err());
        assert!(parse_program("garbage").is_err());
        assert!(parse_program("fn f() { if (1) { return; }").is_err());
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let err = parse_program("var ok: int;\nfn broken( { }").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }
}
