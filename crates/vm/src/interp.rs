//! The bytecode interpreter: fetch, tag check, decode, execute.
//!
//! Execution proceeds one instruction at a time and *traps* to the caller on
//! every system call, exit or fault — the hook the single-process runner and
//! the N-variant monitor both build on.

use crate::bytecode::{Instr, Op, INSTR_SIZE};
use crate::fault::Fault;
use crate::process::{Process, ProcessState};
use nvariant_simos::{SyscallRequest, Sysno};
use nvariant_types::{VirtAddr, Word};
use serde::{Deserialize, Serialize};

/// The result of executing a single instruction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepResult {
    /// The instruction completed; execution may continue.
    Continue,
    /// The process issued a system call and is waiting for its result
    /// (deliver it with [`Process::complete_syscall`]).
    Syscall(SyscallRequest),
    /// The process halted.
    Exited(i32),
    /// The process faulted.
    Faulted(Fault),
}

/// Why [`Process::run_until_trap`] stopped.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrapReason {
    /// A system call was issued.
    Syscall(SyscallRequest),
    /// The process exited.
    Exited(i32),
    /// The process faulted.
    Faulted(Fault),
}

impl Process {
    /// Executes instructions until the process traps (system call, exit or
    /// fault) or `max_steps` instructions have been executed, whichever
    /// comes first.
    ///
    /// Exceeding the step budget is reported as a
    /// [`Fault::StepLimitExceeded`] — the monitor treats a runaway variant
    /// the same way it treats any other fault.
    pub fn run_until_trap(&mut self, max_steps: u64) -> TrapReason {
        for _ in 0..max_steps {
            match self.step() {
                StepResult::Continue => {}
                StepResult::Syscall(req) => return TrapReason::Syscall(req),
                StepResult::Exited(status) => return TrapReason::Exited(status),
                StepResult::Faulted(fault) => return TrapReason::Faulted(fault),
            }
        }
        self.set_faulted(Fault::StepLimitExceeded);
        TrapReason::Faulted(Fault::StepLimitExceeded)
    }

    /// Executes one instruction.
    pub fn step(&mut self) -> StepResult {
        match self.state {
            ProcessState::Running => {}
            ProcessState::Exited(status) => return StepResult::Exited(status),
            ProcessState::Faulted(fault) => return StepResult::Faulted(fault),
        }

        // Fetch. Fast path: an aligned, in-range pc indexes the predecoded
        // stream directly — no allocation, no re-decode. The tag check
        // reads the live tag byte from the (possibly retagged) code image,
        // not the stream, because the stream is shared across tags and
        // tests may restamp `expected_tag` out from under the image.
        let instr = {
            let off = self.pc.wrapping_sub(self.layout.code_base);
            let predecoded = match &self.instrs {
                Some(instrs)
                    if off.is_multiple_of(INSTR_SIZE) && (off as usize) < self.code.len() =>
                {
                    let found = self.code[off as usize];
                    if found == self.expected_tag {
                        Some(instrs[(off / INSTR_SIZE) as usize])
                    } else {
                        return self.fault(Fault::TagMismatch {
                            pc: VirtAddr::new(self.pc),
                            expected: self.expected_tag,
                            found,
                        });
                    }
                }
                _ => None,
            };
            if let Some(instr) = predecoded {
                instr
            } else {
                // Byte-accurate slow path: out-of-range or misaligned pc,
                // execution redirected into a data segment (the monitor's
                // code-injection scenarios), or an image that didn't
                // predecode. Faults exactly as a byte walk would.
                let pc = VirtAddr::new(self.pc);
                let mut raw = [0u8; INSTR_SIZE as usize];
                for (i, byte) in raw.iter_mut().enumerate() {
                    *byte = match self.read_byte(pc + i as u32) {
                        Ok(byte) => byte,
                        Err(fault) => return self.fault(fault),
                    };
                }
                let instr = match crate::bytecode::decode_slot(raw, pc.as_u32()) {
                    Ok(instr) => instr,
                    Err(failure) => {
                        return self.fault(Fault::IllegalInstruction {
                            pc,
                            raw: failure.raw,
                        });
                    }
                };
                if instr.tag != self.expected_tag {
                    return self.fault(Fault::TagMismatch {
                        pc,
                        expected: self.expected_tag,
                        found: instr.tag,
                    });
                }
                instr
            }
        };

        self.pc = self.pc.wrapping_add(INSTR_SIZE);
        self.instructions_executed += 1;
        self.execute(instr)
    }

    fn fault(&mut self, fault: Fault) -> StepResult {
        self.state = ProcessState::Faulted(fault);
        StepResult::Faulted(fault)
    }

    fn pop(&mut self) -> Result<Word, Fault> {
        self.ostack.pop().ok_or(Fault::OperandStackUnderflow)
    }

    fn execute(&mut self, instr: Instr) -> StepResult {
        macro_rules! try_fault {
            ($e:expr) => {
                match $e {
                    Ok(value) => value,
                    Err(fault) => return self.fault(fault),
                }
            };
        }

        let operand = instr.operand;
        match instr.op {
            Op::Nop => {}
            Op::Push => self.ostack.push(Word::from_u32(operand)),
            Op::Dup => {
                let top = try_fault!(self.pop());
                self.ostack.push(top);
                self.ostack.push(top);
            }
            Op::Pop => {
                try_fault!(self.pop());
            }
            Op::Swap => {
                let a = try_fault!(self.pop());
                let b = try_fault!(self.pop());
                self.ostack.push(a);
                self.ostack.push(b);
            }

            Op::LoadG => {
                let addr = VirtAddr::new(self.layout.globals_base.wrapping_add(operand));
                let value = try_fault!(self.read_word(addr));
                self.ostack.push(value);
            }
            Op::StoreG => {
                let value = try_fault!(self.pop());
                let addr = VirtAddr::new(self.layout.globals_base.wrapping_add(operand));
                try_fault!(self.write_word(addr, value));
            }
            Op::LoadL => {
                let addr = VirtAddr::new(self.fp.wrapping_sub(operand));
                let value = try_fault!(self.read_word(addr));
                self.ostack.push(value);
            }
            Op::StoreL => {
                let value = try_fault!(self.pop());
                let addr = VirtAddr::new(self.fp.wrapping_sub(operand));
                try_fault!(self.write_word(addr, value));
            }
            Op::LeaG => {
                self.ostack.push(Word::from_u32(
                    self.layout.globals_base.wrapping_add(operand),
                ));
            }
            Op::LeaL => {
                self.ostack
                    .push(Word::from_u32(self.fp.wrapping_sub(operand)));
            }
            Op::LoadW => {
                let addr = try_fault!(self.pop()).as_addr();
                let value = try_fault!(self.read_word(addr));
                self.ostack.push(value);
            }
            Op::StoreW => {
                let addr = try_fault!(self.pop()).as_addr();
                let value = try_fault!(self.pop());
                try_fault!(self.write_word(addr, value));
            }
            Op::LoadB => {
                let addr = try_fault!(self.pop()).as_addr();
                let value = try_fault!(self.read_byte(addr));
                self.ostack.push(Word::from_u32(u32::from(value)));
            }
            Op::StoreB => {
                let addr = try_fault!(self.pop()).as_addr();
                let value = try_fault!(self.pop());
                try_fault!(self.write_byte(addr, (value.as_u32() & 0xFF) as u8));
            }

            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Mod
            | Op::BitAnd
            | Op::BitOr
            | Op::BitXor
            | Op::Shl
            | Op::Shr
            | Op::Eq
            | Op::Ne
            | Op::Lt
            | Op::Le
            | Op::Gt
            | Op::Ge => {
                let rhs = try_fault!(self.pop());
                let lhs = try_fault!(self.pop());
                let result = match instr.op {
                    Op::Add => Word::from_u32(lhs.as_u32().wrapping_add(rhs.as_u32())),
                    Op::Sub => Word::from_u32(lhs.as_u32().wrapping_sub(rhs.as_u32())),
                    Op::Mul => Word::from_u32(lhs.as_u32().wrapping_mul(rhs.as_u32())),
                    Op::Div => {
                        if rhs.as_i32() == 0 {
                            return self.fault(Fault::DivideByZero);
                        }
                        Word::from_i32(lhs.as_i32().wrapping_div(rhs.as_i32()))
                    }
                    Op::Mod => {
                        if rhs.as_i32() == 0 {
                            return self.fault(Fault::DivideByZero);
                        }
                        Word::from_i32(lhs.as_i32().wrapping_rem(rhs.as_i32()))
                    }
                    Op::BitAnd => Word::from_u32(lhs.as_u32() & rhs.as_u32()),
                    Op::BitOr => Word::from_u32(lhs.as_u32() | rhs.as_u32()),
                    Op::BitXor => Word::from_u32(lhs.as_u32() ^ rhs.as_u32()),
                    Op::Shl => Word::from_u32(lhs.as_u32().wrapping_shl(rhs.as_u32() & 31)),
                    Op::Shr => Word::from_u32(lhs.as_u32().wrapping_shr(rhs.as_u32() & 31)),
                    Op::Eq => Word::from_bool(lhs == rhs),
                    Op::Ne => Word::from_bool(lhs != rhs),
                    Op::Lt => Word::from_bool(lhs.as_i32() < rhs.as_i32()),
                    Op::Le => Word::from_bool(lhs.as_i32() <= rhs.as_i32()),
                    Op::Gt => Word::from_bool(lhs.as_i32() > rhs.as_i32()),
                    Op::Ge => Word::from_bool(lhs.as_i32() >= rhs.as_i32()),
                    _ => unreachable!("covered by outer match arm"),
                };
                self.ostack.push(result);
            }
            Op::Neg => {
                let value = try_fault!(self.pop());
                self.ostack
                    .push(Word::from_i32(value.as_i32().wrapping_neg()));
            }
            Op::Not => {
                let value = try_fault!(self.pop());
                self.ostack.push(Word::from_bool(value.as_u32() == 0));
            }
            Op::BitNot => {
                let value = try_fault!(self.pop());
                self.ostack.push(Word::from_u32(!value.as_u32()));
            }

            Op::Jmp => self.pc = self.layout.code_base.wrapping_add(operand),
            Op::Jz => {
                let value = try_fault!(self.pop());
                if value.as_u32() == 0 {
                    self.pc = self.layout.code_base.wrapping_add(operand);
                }
            }
            Op::Jnz => {
                let value = try_fault!(self.pop());
                if value.as_u32() != 0 {
                    self.pc = self.layout.code_base.wrapping_add(operand);
                }
            }

            Op::Call => {
                let target = self.layout.code_base.wrapping_add(operand);
                try_fault!(self.push_frame(target));
            }
            Op::CallPtr => {
                let target = try_fault!(self.pop()).as_u32();
                try_fault!(self.push_frame(target));
            }
            Op::Enter => {
                self.sp = self.sp.wrapping_sub(operand);
                if self.sp < self.layout.stack_base() {
                    return self.fault(Fault::StackOverflow);
                }
            }
            Op::Ret => {
                let fp = VirtAddr::new(self.fp);
                let return_addr = try_fault!(self.read_word(fp));
                let saved_fp = try_fault!(self.read_word(fp + 4));
                self.sp = self.fp.wrapping_add(8);
                self.fp = saved_fp.as_u32();
                self.pc = return_addr.as_u32();
            }

            Op::Syscall => {
                let number = operand >> 8;
                let argc = (operand & 0xFF) as usize;
                let Some(sysno) = Sysno::from_u32(number) else {
                    return self.fault(Fault::InvalidSyscall { number });
                };
                let mut args = Vec::with_capacity(argc);
                for _ in 0..argc {
                    args.push(try_fault!(self.pop()));
                }
                args.reverse();
                self.syscalls_made += 1;
                return StepResult::Syscall(SyscallRequest::new(sysno, args));
            }

            Op::Halt => {
                self.state = ProcessState::Exited(0);
                return StepResult::Exited(0);
            }
        }
        StepResult::Continue
    }

    /// Pushes a call frame (return address and saved frame pointer) onto the
    /// memory stack and transfers control to `target`.
    fn push_frame(&mut self, target: u32) -> Result<(), Fault> {
        let new_sp = self.sp.wrapping_sub(8);
        if new_sp < self.layout.stack_base() {
            return Err(Fault::StackOverflow);
        }
        // Saved frame pointer at the higher address, return address below it:
        // a buffer overflow that writes upward reaches the return address
        // first, exactly like the classic stack-smash layout.
        self.write_word(VirtAddr::new(new_sp + 4), Word::from_u32(self.fp))?;
        self.write_word(VirtAddr::new(new_sp), Word::from_u32(self.pc))?;
        self.fp = new_sp;
        self.sp = new_sp;
        self.pc = target;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_program;
    use crate::parser::parse_program;
    use crate::process::MemoryLayout;

    fn process_for(src: &str) -> Process {
        let program = parse_program(src).unwrap();
        let compiled = compile_program(&program).unwrap();
        Process::new(&compiled, MemoryLayout::default())
    }

    /// Runs a process that makes no system calls other than the final exit
    /// and returns the exit status.
    fn run_to_exit(process: &mut Process) -> i32 {
        match process.run_until_trap(1_000_000) {
            TrapReason::Syscall(req) if req.sysno == Sysno::Exit => {
                let status = req.arg(0).as_i32();
                process.set_exited(status);
                status
            }
            TrapReason::Syscall(req) => panic!("unexpected syscall {req}"),
            TrapReason::Exited(status) => status,
            TrapReason::Faulted(fault) => panic!("unexpected fault: {fault}"),
        }
    }

    #[test]
    fn arithmetic_and_return_value() {
        let mut p = process_for("fn main() -> int { return (2 + 3) * 4 - 10 / 2; }");
        assert_eq!(run_to_exit(&mut p), 15);
    }

    #[test]
    fn signed_arithmetic_and_comparisons() {
        let mut p = process_for(
            r"
            fn main() -> int {
                var a: int = 0 - 7;
                var b: int = 3;
                if (a < b) {
                    if (a / b == 0 - 2) {
                        if (a % b == 0 - 1) { return 1; }
                    }
                }
                return 0;
            }
            ",
        );
        assert_eq!(run_to_exit(&mut p), 1);
    }

    #[test]
    fn while_loop_and_locals() {
        let mut p = process_for(
            r"
            fn main() -> int {
                var i: int = 0;
                var total: int = 0;
                while (i < 10) {
                    total = total + i;
                    i = i + 1;
                }
                return total;
            }
            ",
        );
        assert_eq!(run_to_exit(&mut p), 45);
    }

    #[test]
    fn break_and_continue() {
        let mut p = process_for(
            r"
            fn main() -> int {
                var i: int = 0;
                var total: int = 0;
                while (1) {
                    i = i + 1;
                    if (i > 10) { break; }
                    if (i % 2 == 0) { continue; }
                    total = total + i;
                }
                return total;
            }
            ",
        );
        assert_eq!(run_to_exit(&mut p), 25);
    }

    #[test]
    fn function_calls_with_arguments() {
        let mut p = process_for(
            r"
            fn add3(a: int, b: int, c: int) -> int { return a + b + c; }
            fn twice(x: int) -> int { return add3(x, x, 0); }
            fn main() -> int { return twice(7) + add3(1, 2, 3); }
            ",
        );
        assert_eq!(run_to_exit(&mut p), 20);
    }

    #[test]
    fn recursion() {
        let mut p = process_for(
            r"
            fn fib(n: int) -> int {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() -> int { return fib(10); }
            ",
        );
        assert_eq!(run_to_exit(&mut p), 55);
    }

    #[test]
    fn globals_buffers_and_pointers() {
        let mut p = process_for(
            r"
            var table: buf[16];
            var cursor: int = 0;
            fn put(value: int) {
                table[cursor] = value;
                cursor = cursor + 1;
            }
            fn main() -> int {
                var p: ptr;
                put(10);
                put(20);
                put(30);
                p = &cursor;
                *p = *p + 100;
                return table[0] + table[1] + table[2] + cursor;
            }
            ",
        );
        assert_eq!(run_to_exit(&mut p), 163);
    }

    #[test]
    fn logical_operators_short_circuit() {
        let mut p = process_for(
            r"
            var side_effects: int = 0;
            fn bump() -> int { side_effects = side_effects + 1; return 1; }
            fn main() -> int {
                if (0 && bump()) { return 100; }
                if (1 || bump()) {
                    if (side_effects == 0) { return 1; }
                }
                return 0;
            }
            ",
        );
        assert_eq!(run_to_exit(&mut p), 1);
    }

    #[test]
    fn division_by_zero_faults() {
        let mut p = process_for("fn main() -> int { var z: int = 0; return 5 / z; }");
        match p.run_until_trap(10_000) {
            TrapReason::Faulted(Fault::DivideByZero) => {}
            other => panic!("expected divide-by-zero, got {other:?}"),
        }
        assert!(matches!(p.state(), ProcessState::Faulted(_)));
    }

    #[test]
    fn wild_pointer_write_segfaults() {
        let mut p = process_for(
            r"
            fn main() -> int {
                var p: ptr;
                p = 0x40;
                *p = 7;
                return 0;
            }
            ",
        );
        match p.run_until_trap(10_000) {
            TrapReason::Faulted(Fault::Segfault { addr }) => {
                assert_eq!(addr.as_u32(), 0x40);
            }
            other => panic!("expected segfault, got {other:?}"),
        }
    }

    #[test]
    fn partitioned_variant_faults_on_low_half_absolute_address() {
        // The Figure 1 scenario: an absolute address valid for variant 0 is
        // unmapped in the partitioned variant.
        let program = parse_program(
            r"
            var target: int = 5;
            fn main() -> int {
                var p: ptr;
                p = 0x00100000;
                *p = 99;
                return target;
            }
            ",
        )
        .unwrap();
        let compiled = compile_program(&program).unwrap();
        let mut p0 = Process::new(&compiled, MemoryLayout::default());
        let mut p1 = Process::new(&compiled, MemoryLayout::default().with_partition_bit());
        assert_eq!(run_to_exit(&mut p0), 99);
        match p1.run_until_trap(10_000) {
            TrapReason::Faulted(Fault::Segfault { .. }) => {}
            other => panic!("expected segfault in partitioned variant, got {other:?}"),
        }
    }

    #[test]
    fn tag_mismatch_faults_immediately() {
        let program = parse_program("fn main() -> int { return 0; }").unwrap();
        let compiled = compile_program(&program).unwrap();
        // Code stamped with tag 0 but the variant expects tag 1.
        let mut p = Process::new(&compiled, MemoryLayout::default());
        p.expected_tag = 1;
        match p.step() {
            StepResult::Faulted(Fault::TagMismatch {
                expected, found, ..
            }) => {
                assert_eq!(expected, 1);
                assert_eq!(found, 0);
            }
            other => panic!("expected tag mismatch, got {other:?}"),
        }
    }

    #[test]
    fn syscall_traps_and_resumes() {
        let mut p = process_for("fn main() -> int { return getuid() + 1; }");
        match p.run_until_trap(10_000) {
            TrapReason::Syscall(req) => {
                assert_eq!(req.sysno, Sysno::GetUid);
                assert!(req.args.is_empty());
            }
            other => panic!("expected getuid trap, got {other:?}"),
        }
        p.complete_syscall(Word::from_u32(48));
        match p.run_until_trap(10_000) {
            TrapReason::Syscall(req) => {
                assert_eq!(req.sysno, Sysno::Exit);
                assert_eq!(req.arg(0).as_u32(), 49);
            }
            other => panic!("expected exit trap, got {other:?}"),
        }
    }

    #[test]
    fn step_limit_is_reported_as_fault() {
        let mut p = process_for("fn main() -> int { while (1) { } return 0; }");
        match p.run_until_trap(1_000) {
            TrapReason::Faulted(Fault::StepLimitExceeded) => {}
            other => panic!("expected step limit fault, got {other:?}"),
        }
    }

    #[test]
    fn deep_recursion_overflows_the_stack() {
        let mut p = process_for(
            r"
            fn spin(n: int) -> int { return spin(n + 1); }
            fn main() -> int { return spin(0); }
            ",
        );
        match p.run_until_trap(50_000_000) {
            TrapReason::Faulted(Fault::StackOverflow) => {}
            other => panic!("expected stack overflow, got {other:?}"),
        }
    }

    #[test]
    fn instruction_counter_advances() {
        let mut p = process_for("fn main() -> int { return 1 + 2; }");
        let _ = p.run_until_trap(10_000);
        assert!(p.instructions_executed() > 3);
        assert_eq!(p.syscalls_made(), 1);
    }

    #[test]
    fn exited_process_stays_exited() {
        let mut p = process_for("fn main() -> int { return 3; }");
        let _ = run_to_exit(&mut p);
        assert_eq!(p.step(), StepResult::Exited(3));
        assert_eq!(p.run_until_trap(10), TrapReason::Exited(3));
    }
}
