//! Name resolution and type checking for SimC.
//!
//! Besides rejecting malformed programs, the checker produces a [`TypeInfo`]
//! summary (declared type of every global and local, signatures of every
//! function) that the UID transformation in `nvariant-transform` consumes to
//! decide *which* values are UID-class data — exactly the "identify the
//! variables that contain UID values" step the paper describes in §4.

use crate::ast::{BinOp, Expr, Function, LValue, Program, Stmt, Type, UnOp};
use nvariant_simos::Sysno;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A function signature (parameter types and return type).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionSig {
    /// Parameter types in order.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
}

/// Errors detected by the type checker.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeError {
    /// Human-readable description of the problem.
    pub message: String,
    /// The function in which the problem occurred, if any.
    pub function: Option<String>,
}

impl TypeError {
    fn new(message: impl Into<String>, function: Option<&str>) -> Self {
        TypeError {
            message: message.into(),
            function: function.map(str::to_string),
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(function) => write!(f, "type error in `{function}`: {}", self.message),
            None => write!(f, "type error: {}", self.message),
        }
    }
}

impl std::error::Error for TypeError {}

/// The type environment produced by a successful check.
///
/// # Example
///
/// ```
/// use nvariant_vm::{parse_program, typecheck_program, Type};
///
/// let program = parse_program(r#"
///     var server_uid: uid_t;
///     fn main() -> int {
///         var n: int = 3;
///         server_uid = getuid();
///         return n;
///     }
/// "#)?;
/// let info = typecheck_program(&program)?;
/// assert_eq!(info.var_type("main", "server_uid"), Some(Type::UidT));
/// assert_eq!(info.var_type("main", "n"), Some(Type::Int));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeInfo {
    /// Declared type of every global.
    pub globals: BTreeMap<String, Type>,
    /// Signature of every user-defined function.
    pub functions: BTreeMap<String, FunctionSig>,
    /// Per-function table of locals and parameters.
    pub locals: BTreeMap<String, BTreeMap<String, Type>>,
}

impl TypeInfo {
    /// Looks up the declared type of `name` as seen from inside `function`:
    /// locals and parameters shadow globals.
    #[must_use]
    pub fn var_type(&self, function: &str, name: &str) -> Option<Type> {
        if let Some(locals) = self.locals.get(function) {
            if let Some(ty) = locals.get(name) {
                return Some(*ty);
            }
        }
        self.globals.get(name).copied()
    }

    /// Returns the signature of a user-defined or built-in function.
    #[must_use]
    pub fn signature(&self, name: &str) -> Option<FunctionSig> {
        self.functions
            .get(name)
            .cloned()
            .or_else(|| builtin_signature(name))
    }

    /// Best-effort static type of an expression evaluated inside `function`.
    ///
    /// The rules mirror how the paper's transformation reasons about UID
    /// data: comparisons and logical operators produce `int`; arithmetic and
    /// bitwise operators propagate UID-ness from either operand (so
    /// `uid ^ 0x7FFFFFFF` is still a UID); calls take their declared return
    /// type; everything unresolvable defaults to `int`.
    #[must_use]
    pub fn expr_type(&self, function: &str, expr: &Expr) -> Type {
        match expr {
            Expr::IntLit(_) => Type::Int,
            Expr::StrLit(_) => Type::Ptr,
            Expr::Ident(name) => self.var_type(function, name).unwrap_or(Type::Int),
            Expr::AddrOf(_) => Type::Ptr,
            Expr::Deref(_) | Expr::Index(_, _) => Type::Int,
            Expr::Unary(UnOp::Not, _) => Type::Int,
            Expr::Unary(_, inner) => self.expr_type(function, inner),
            Expr::Binary(op, lhs, rhs) => {
                if op.is_comparison() || matches!(op, BinOp::LogAnd | BinOp::LogOr) {
                    Type::Int
                } else {
                    let lt = self.expr_type(function, lhs);
                    let rt = self.expr_type(function, rhs);
                    if lt.is_uid_class() {
                        lt
                    } else if rt.is_uid_class() {
                        rt
                    } else {
                        Type::Int
                    }
                }
            }
            Expr::Call(name, _) => self.signature(name).map_or(Type::Int, |sig| sig.ret),
        }
    }

    /// Returns `true` if the expression statically denotes UID-class data.
    #[must_use]
    pub fn is_uid_expr(&self, function: &str, expr: &Expr) -> bool {
        self.expr_type(function, expr).is_uid_class()
    }
}

/// The signature of a built-in system call, if `name` names one.
///
/// These are the signatures the paper's §4 dataflow analysis relies on
/// ("functions returning a known uid value (e.g. getuid) or … a function
/// expecting a user id (e.g. setuid)").
#[must_use]
pub fn builtin_signature(name: &str) -> Option<FunctionSig> {
    let sysno = Sysno::from_name(name)?;
    let sig = match sysno {
        Sysno::Exit => FunctionSig {
            params: vec![Type::Int],
            ret: Type::Void,
        },
        Sysno::GetUid | Sysno::GetEuid => FunctionSig {
            params: vec![],
            ret: Type::UidT,
        },
        Sysno::GetGid => FunctionSig {
            params: vec![],
            ret: Type::GidT,
        },
        Sysno::SetUid | Sysno::SetEuid => FunctionSig {
            params: vec![Type::UidT],
            ret: Type::Int,
        },
        Sysno::SetGid => FunctionSig {
            params: vec![Type::GidT],
            ret: Type::Int,
        },
        Sysno::SetReUid => FunctionSig {
            params: vec![Type::UidT, Type::UidT],
            ret: Type::Int,
        },
        Sysno::Open => FunctionSig {
            params: vec![Type::Ptr, Type::Int],
            ret: Type::Int,
        },
        Sysno::Read | Sysno::Write | Sysno::Recv | Sysno::Send => FunctionSig {
            params: vec![Type::Int, Type::Ptr, Type::Int],
            ret: Type::Int,
        },
        Sysno::Close | Sysno::Listen | Sysno::Accept => FunctionSig {
            params: vec![Type::Int],
            ret: Type::Int,
        },
        Sysno::Socket | Sysno::Time => FunctionSig {
            params: vec![],
            ret: Type::Int,
        },
        Sysno::Bind => FunctionSig {
            params: vec![Type::Int, Type::Int],
            ret: Type::Int,
        },
        Sysno::UidValue => FunctionSig {
            params: vec![Type::UidT],
            ret: Type::UidT,
        },
        Sysno::CondChk => FunctionSig {
            params: vec![Type::Int],
            ret: Type::Int,
        },
        Sysno::CcEq | Sysno::CcNeq | Sysno::CcLt | Sysno::CcLeq | Sysno::CcGt | Sysno::CcGeq => {
            FunctionSig {
                params: vec![Type::UidT, Type::UidT],
                ret: Type::Int,
            }
        }
        // `Sysno` is non-exhaustive; new calls default to unavailable until a
        // signature is added here.
        _ => return None,
    };
    Some(sig)
}

/// Type-checks a program.
///
/// # Errors
///
/// Returns the first [`TypeError`] found: duplicate definitions, references
/// to undefined variables or functions, calls with the wrong number of
/// arguments, direct assignment to buffer variables, or use of `void` in a
/// value position.
pub fn typecheck_program(program: &Program) -> Result<TypeInfo, TypeError> {
    let mut info = TypeInfo::default();

    for global in &program.globals {
        if global.ty == Type::Void {
            return Err(TypeError::new(
                format!("global `{}` cannot have type void", global.name),
                None,
            ));
        }
        if info
            .globals
            .insert(global.name.clone(), global.ty)
            .is_some()
        {
            return Err(TypeError::new(
                format!("duplicate global `{}`", global.name),
                None,
            ));
        }
        if let Some(init) = &global.init {
            match init {
                Expr::IntLit(_) | Expr::StrLit(_) => {}
                other => {
                    return Err(TypeError::new(
                        format!(
                            "global `{}` initializer must be a constant, found {other:?}",
                            global.name
                        ),
                        None,
                    ))
                }
            }
        }
    }

    for function in &program.functions {
        if builtin_signature(&function.name).is_some() {
            return Err(TypeError::new(
                format!(
                    "function `{}` shadows a built-in system call",
                    function.name
                ),
                None,
            ));
        }
        let sig = FunctionSig {
            params: function.params.iter().map(|p| p.ty).collect(),
            ret: function.ret,
        };
        if info.functions.insert(function.name.clone(), sig).is_some() {
            return Err(TypeError::new(
                format!("duplicate function `{}`", function.name),
                None,
            ));
        }
    }

    for function in &program.functions {
        check_function(program, &mut info, function)?;
    }

    Ok(info)
}

fn check_function(
    _program: &Program,
    info: &mut TypeInfo,
    function: &Function,
) -> Result<(), TypeError> {
    let mut locals: BTreeMap<String, Type> = BTreeMap::new();
    for param in &function.params {
        if param.ty == Type::Void {
            return Err(TypeError::new(
                format!("parameter `{}` cannot have type void", param.name),
                Some(&function.name),
            ));
        }
        if matches!(param.ty, Type::Buf(_)) {
            return Err(TypeError::new(
                format!(
                    "parameter `{}` cannot be a buffer; pass a pointer instead",
                    param.name
                ),
                Some(&function.name),
            ));
        }
        if locals.insert(param.name.clone(), param.ty).is_some() {
            return Err(TypeError::new(
                format!("duplicate parameter `{}`", param.name),
                Some(&function.name),
            ));
        }
    }
    // Two passes over the body: first collect declarations (SimC requires
    // declaration before use, enforced during the statement walk below), then
    // validate statements with the accumulating scope.
    check_block(info, function, &mut locals, &function.body)?;
    info.locals.insert(function.name.clone(), locals);
    Ok(())
}

fn check_block(
    info: &TypeInfo,
    function: &Function,
    locals: &mut BTreeMap<String, Type>,
    stmts: &[Stmt],
) -> Result<(), TypeError> {
    for stmt in stmts {
        check_stmt(info, function, locals, stmt)?;
    }
    Ok(())
}

fn check_stmt(
    info: &TypeInfo,
    function: &Function,
    locals: &mut BTreeMap<String, Type>,
    stmt: &Stmt,
) -> Result<(), TypeError> {
    let fname = Some(function.name.as_str());
    match stmt {
        Stmt::VarDecl { name, ty, init } => {
            if *ty == Type::Void {
                return Err(TypeError::new(
                    format!("local `{name}` cannot have type void"),
                    fname,
                ));
            }
            if locals.insert(name.clone(), *ty).is_some() {
                return Err(TypeError::new(format!("duplicate local `{name}`"), fname));
            }
            if let Some(init) = init {
                if matches!(ty, Type::Buf(_)) {
                    return Err(TypeError::new(
                        format!("buffer `{name}` cannot have an initializer"),
                        fname,
                    ));
                }
                check_expr(info, function, locals, init)?;
            }
            Ok(())
        }
        Stmt::Assign { target, value } => {
            match target {
                LValue::Var(name) => {
                    let ty = locals
                        .get(name)
                        .copied()
                        .or_else(|| info.globals.get(name).copied())
                        .ok_or_else(|| {
                            TypeError::new(
                                format!("assignment to undefined variable `{name}`"),
                                fname,
                            )
                        })?;
                    if matches!(ty, Type::Buf(_)) {
                        return Err(TypeError::new(
                            format!("cannot assign directly to buffer `{name}`; index it instead"),
                            fname,
                        ));
                    }
                }
                LValue::Index(base, index) => {
                    check_expr(info, function, locals, base)?;
                    check_expr(info, function, locals, index)?;
                }
                LValue::Deref(inner) => check_expr(info, function, locals, inner)?,
            }
            check_expr(info, function, locals, value)
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            check_expr(info, function, locals, cond)?;
            check_block(info, function, locals, then_body)?;
            check_block(info, function, locals, else_body)
        }
        Stmt::While { cond, body } => {
            check_expr(info, function, locals, cond)?;
            check_block(info, function, locals, body)
        }
        Stmt::Return(value) => {
            if let Some(value) = value {
                check_expr(info, function, locals, value)?;
            } else if function.ret != Type::Void {
                return Err(TypeError::new(
                    "return without a value in a non-void function",
                    fname,
                ));
            }
            Ok(())
        }
        Stmt::Expr(expr) => check_expr(info, function, locals, expr),
        Stmt::Break | Stmt::Continue => Ok(()),
    }
}

fn check_expr(
    info: &TypeInfo,
    function: &Function,
    locals: &BTreeMap<String, Type>,
    expr: &Expr,
) -> Result<(), TypeError> {
    let fname = Some(function.name.as_str());
    match expr {
        Expr::IntLit(_) | Expr::StrLit(_) => Ok(()),
        Expr::Ident(name) => {
            if locals.contains_key(name) || info.globals.contains_key(name) {
                Ok(())
            } else {
                Err(TypeError::new(
                    format!("reference to undefined variable `{name}`"),
                    fname,
                ))
            }
        }
        Expr::AddrOf(name) => {
            if locals.contains_key(name) || info.globals.contains_key(name) {
                Ok(())
            } else {
                Err(TypeError::new(
                    format!("address-of undefined variable `{name}`"),
                    fname,
                ))
            }
        }
        Expr::Unary(_, inner) | Expr::Deref(inner) => check_expr(info, function, locals, inner),
        Expr::Binary(_, lhs, rhs) | Expr::Index(lhs, rhs) => {
            check_expr(info, function, locals, lhs)?;
            check_expr(info, function, locals, rhs)
        }
        Expr::Call(name, args) => {
            let sig = info
                .functions
                .get(name)
                .cloned()
                .or_else(|| builtin_signature(name));
            let Some(sig) = sig else {
                return Err(TypeError::new(
                    format!("call to undefined function `{name}`"),
                    fname,
                ));
            };
            if sig.params.len() != args.len() {
                return Err(TypeError::new(
                    format!(
                        "`{name}` expects {} argument(s), found {}",
                        sig.params.len(),
                        args.len()
                    ),
                    fname,
                ));
            }
            for arg in args {
                check_expr(info, function, locals, arg)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<TypeInfo, TypeError> {
        typecheck_program(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_well_typed_program() {
        let info = check(
            r#"
            var server_uid: uid_t;
            var logbuf: buf[32];
            fn lookup(name: ptr) -> uid_t {
                var uid: uid_t;
                uid = getuid();
                return uid;
            }
            fn main() -> int {
                server_uid = lookup("httpd");
                if (server_uid == 0) { return 1; }
                return 0;
            }
            "#,
        )
        .unwrap();
        assert_eq!(info.globals.get("server_uid"), Some(&Type::UidT));
        assert_eq!(info.var_type("lookup", "uid"), Some(Type::UidT));
        assert_eq!(info.var_type("lookup", "name"), Some(Type::Ptr));
        assert_eq!(info.signature("lookup").unwrap().ret, Type::UidT);
        assert_eq!(info.signature("getuid").unwrap().ret, Type::UidT);
    }

    #[test]
    fn rejects_undefined_names() {
        assert!(check("fn f() -> int { return missing; }").is_err());
        assert!(check("fn f() -> int { return nosuchfn(); }").is_err());
        assert!(check("fn f() -> int { return *(&missing); }").is_err());
    }

    #[test]
    fn rejects_duplicates_and_shadowing_builtins() {
        assert!(check("var x: int; var x: int; fn main() -> int { return 0; }").is_err());
        assert!(check("fn f(a: int, a: int) -> int { return a; }").is_err());
        assert!(check("fn f() -> int { var a: int; var a: int; return a; }").is_err());
        assert!(check("fn getuid() -> uid_t { return 0; }").is_err());
        assert!(check("fn f() -> int { return 0; } fn f() -> int { return 1; }").is_err());
    }

    #[test]
    fn rejects_arity_mismatch() {
        assert!(check("fn f() -> int { return setuid(); }").is_err());
        assert!(check("fn f() -> int { return setuid(1, 2); }").is_err());
        assert!(check("fn g(a: int) -> int { return a; } fn f() -> int { return g(); }").is_err());
    }

    #[test]
    fn rejects_buffer_misuse() {
        assert!(check("fn f() { var b: buf[8]; b = 3; }").is_err());
        assert!(check("fn f(b: buf[8]) { }").is_err());
        assert!(check("fn f() { var b: buf[8] = 1; }").is_err());
        // Indexing a buffer is fine.
        assert!(check("fn f() -> int { var b: buf[8]; b[0] = 1; return b[0]; }").is_ok());
    }

    #[test]
    fn rejects_void_misuse_and_bad_globals() {
        assert!(check("var g: void; fn main() -> int { return 0; }").is_err());
        assert!(check("fn f(x: void) { }").is_err());
        assert!(check("fn f() { var v: void; }").is_err());
        assert!(check("var g: int = getuid(); fn main() -> int { return 0; }").is_err());
        assert!(check("fn f() -> int { return; }").is_err());
    }

    #[test]
    fn expr_type_propagates_uid_class() {
        use crate::ast::Expr;
        let info = check(
            r"
            var server_uid: uid_t;
            fn f(u: uid_t, n: int) -> int {
                return 0;
            }
            ",
        )
        .unwrap();
        // uid ^ mask is still a UID.
        let xor = Expr::binary(BinOp::BitXor, Expr::ident("u"), Expr::int(0x7FFF_FFFF));
        assert_eq!(info.expr_type("f", &xor), Type::UidT);
        assert!(info.is_uid_expr("f", &Expr::call("getuid", vec![])));
        // Comparisons yield int even over UIDs.
        let cmp = Expr::binary(BinOp::Eq, Expr::ident("u"), Expr::int(0));
        assert_eq!(info.expr_type("f", &cmp), Type::Int);
        assert!(!info.is_uid_expr("f", &Expr::ident("n")));
        // Globals are visible from any function.
        assert!(info.is_uid_expr("f", &Expr::ident("server_uid")));
    }

    #[test]
    fn builtin_signatures_cover_detection_calls() {
        assert_eq!(builtin_signature("uid_value").unwrap().ret, Type::UidT);
        assert_eq!(builtin_signature("cc_geq").unwrap().params.len(), 2);
        assert_eq!(
            builtin_signature("cond_chk").unwrap().params,
            vec![Type::Int]
        );
        assert!(builtin_signature("strcpy").is_none());
    }

    #[test]
    fn locals_shadow_globals() {
        let info = check(
            r"
            var uid: int;
            fn f() -> uid_t { var uid: uid_t; uid = getuid(); return uid; }
            fn g() -> int { return uid; }
            ",
        )
        .unwrap();
        assert_eq!(info.var_type("f", "uid"), Some(Type::UidT));
        assert_eq!(info.var_type("g", "uid"), Some(Type::Int));
    }
}
