//! SimC: a small C-like language and bytecode machine used as the
//! *application substrate* of the *Security through Redundant Data
//! Diversity* reproduction.
//!
//! The paper's UID data variation is a **source-to-source transformation**
//! over typed C programs (Apache), and its threat model is memory corruption
//! in those programs. Reproducing either faithfully requires owning the
//! whole chain from source text to executed instructions, so this crate
//! provides:
//!
//! * a parser and type checker for SimC, a C subset with `uid_t`/`gid_t`
//!   types, byte buffers, pointers and unchecked copy routines ([`ast`],
//!   [`lexer`], [`parser`], [`typecheck`]),
//! * a compiler to a fixed-width, byte-encoded bytecode in which every
//!   instruction carries a *tag* byte (the hook for instruction-set tagging,
//!   Table 1 of the paper) ([`bytecode`], [`compile`]),
//! * a process image with a classic memory layout — code, globals + rodata,
//!   and a downward-growing stack holding return addresses — so relative
//!   overflows, absolute writes and return-address smashes behave as they do
//!   on the paper's real targets ([`process`]),
//! * a step interpreter that yields at system-call boundaries, which is what
//!   the N-variant monitor synchronizes on ([`interp`]),
//! * a SimC standard library (`strcpy`, `memcpy`, `atoi`, …) written in SimC
//!   ([`stdlib`]), and
//! * a single-process runner used for the paper's Configurations 1 and 2
//!   ([`runner`]).
//!
//! # Example
//!
//! ```
//! use nvariant_simos::OsKernel;
//! use nvariant_types::Uid;
//! use nvariant_vm::{compile_program, parse_program, MemoryLayout, Process, RunLimits, Runner};
//!
//! let source = r#"
//!     fn main() -> int {
//!         var uid: uid_t;
//!         uid = getuid();
//!         if (uid == 0) { return 1; }
//!         return 0;
//!     }
//! "#;
//! let program = parse_program(source)?;
//! let compiled = compile_program(&program)?;
//! let mut process = Process::new(&compiled, MemoryLayout::default());
//!
//! let mut kernel = OsKernel::new();
//! let pid = kernel.spawn_process(Uid::ROOT);
//! let outcome = Runner::new(RunLimits::default()).run(&mut kernel, pid, &mut process);
//! assert_eq!(outcome.exit_status, Some(1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod bytecode;
pub mod compile;
pub mod fault;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod process;
pub mod runner;
pub mod stdlib;
pub mod typecheck;

pub use ast::{BinOp, Expr, Function, GlobalDecl, LValue, Param, Program, Stmt, Type, UnOp};
pub use bytecode::{decode_slot, decode_slot_at, DecodeFailure, Instr, Op, INSTR_SIZE};
pub use compile::{compile_program, CompileError, CompiledProgram};
pub use fault::Fault;
pub use interp::{StepResult, TrapReason};
pub use lexer::{LexError, Token};
pub use parser::{parse_program, ParseError};
pub use pretty::pretty_print;
pub use process::{MemoryLayout, Process, ProcessState};
pub use runner::{RunLimits, RunOutcome, Runner};
pub use stdlib::{parse_with_stdlib, stdlib_source};
pub use typecheck::{typecheck_program, FunctionSig, TypeError, TypeInfo};
