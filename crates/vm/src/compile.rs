//! The SimC compiler: AST to byte-encoded bytecode.

use crate::ast::{BinOp, Expr, Function, LValue, Program, Stmt, Type, UnOp};
use crate::bytecode::{decode_all, encode_all, retag_code, Instr, Op, INSTR_SIZE};
use crate::typecheck::{typecheck_program, TypeError, TypeInfo};
use nvariant_simos::Sysno;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors produced by the compiler.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CompileError {
    /// The program failed type checking.
    Type(TypeError),
    /// The program has no `main` function.
    MissingMain,
    /// A global had an initializer the compiler cannot place in the image.
    UnsupportedGlobalInit(String),
    /// `break` or `continue` appeared outside a loop.
    LoopControlOutsideLoop(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Type(e) => write!(f, "{e}"),
            CompileError::MissingMain => write!(f, "program has no `main` function"),
            CompileError::UnsupportedGlobalInit(name) => {
                write!(f, "global `{name}` has an unsupported initializer")
            }
            CompileError::LoopControlOutsideLoop(which) => {
                write!(f, "`{which}` outside of a loop")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<TypeError> for CompileError {
    fn from(e: TypeError) -> Self {
        CompileError::Type(e)
    }
}

/// The output of compilation: a position-independent code image (jump and
/// call operands are code-segment offsets), the initial globals/rodata
/// image, and symbol tables.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompiledProgram {
    /// Encoded instructions (all stamped with tag 0), reference-counted so
    /// every process instantiated from this program shares one image.
    code: Arc<[u8]>,
    /// The code image predecoded once at construction: instruction `i`
    /// covers bytes `i * INSTR_SIZE ..`. `None` when the image does not
    /// decode cleanly (possible for a corrupted artifact-store entry whose
    /// hex still parses) — the interpreter then falls back to its
    /// byte-accurate fetch path.
    stream: Option<Arc<[Instr]>>,
    /// Initial contents of the globals + rodata segment.
    pub globals_image: Vec<u8>,
    /// Offset and declared type of each global within the globals segment.
    pub globals_map: BTreeMap<String, (u32, Type)>,
    /// Code-segment offset of each function's first instruction.
    pub functions: BTreeMap<String, u32>,
    /// Code-segment offset where execution starts (the start stub).
    pub entry_offset: u32,
    /// The type information computed during compilation.
    pub type_info: TypeInfo,
}

impl CompiledProgram {
    /// Assembles a compiled program from its parts, predecoding the code
    /// image once so instruction fetch never re-decodes per step.
    #[must_use]
    pub fn new(
        code: Vec<u8>,
        globals_image: Vec<u8>,
        globals_map: BTreeMap<String, (u32, Type)>,
        functions: BTreeMap<String, u32>,
        entry_offset: u32,
        type_info: TypeInfo,
    ) -> Self {
        let stream = decode_all(&code).map(Arc::from);
        CompiledProgram {
            code: Arc::from(code),
            stream,
            globals_image,
            globals_map,
            functions,
            entry_offset,
            type_info,
        }
    }

    /// The encoded code image (all instructions stamped with tag 0).
    #[must_use]
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// A shared handle to the code image restamped with `tag`. Tag 0 is
    /// the image's own tag, so it returns the already-shared image without
    /// copying a byte; other tags copy once per call — callers that
    /// instantiate many processes at one tag (the campaign engine) hold on
    /// to the returned handle instead of re-calling.
    #[must_use]
    pub fn retagged_image(&self, tag: u8) -> Arc<[u8]> {
        if tag == 0 {
            Arc::clone(&self.code)
        } else {
            Arc::from(retag_code(&self.code, tag))
        }
    }

    /// The predecoded instruction stream, when the image decodes cleanly.
    /// Tags are *not* authoritative here: the interpreter reads the live
    /// tag byte from the (possibly retagged) code image, so one stream
    /// serves every variant — retagging changes only byte 0 of each
    /// instruction, never the opcode or operand.
    pub(crate) fn stream(&self) -> Option<Arc<[Instr]>> {
        self.stream.clone()
    }

    /// Number of encoded instructions in the code image.
    #[must_use]
    pub fn instruction_count(&self) -> usize {
        self.code.len() / INSTR_SIZE as usize
    }
}

/// Compiles a type-checked SimC program to bytecode.
///
/// # Errors
///
/// Returns a [`CompileError`] if the program fails type checking, has no
/// `main`, uses `break`/`continue` outside a loop, or has a global
/// initializer that cannot be placed into the data image.
///
/// # Example
///
/// ```
/// use nvariant_vm::{compile_program, parse_program};
///
/// let program = parse_program("fn main() -> int { return 2 + 3; }")?;
/// let compiled = compile_program(&program)?;
/// assert!(compiled.instruction_count() > 3);
/// assert!(compiled.functions.contains_key("main"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile_program(program: &Program) -> Result<CompiledProgram, CompileError> {
    let type_info = typecheck_program(program)?;
    if program.function("main").is_none() {
        return Err(CompileError::MissingMain);
    }
    let mut compiler = Compiler::new(program, type_info);
    compiler.layout_globals()?;
    compiler.emit_start_stub();
    for function in &program.functions {
        compiler.compile_function(function)?;
    }
    Ok(compiler.finish())
}

/// Where a named variable lives, as seen by the code generator.
#[derive(Clone, Copy, Debug)]
enum Slot {
    /// Displacement below the frame pointer.
    Local(u32, Type),
    /// Offset within the globals segment.
    Global(u32, Type),
}

struct LoopLabels {
    start: usize,
    end: usize,
}

struct Compiler<'a> {
    program: &'a Program,
    type_info: TypeInfo,
    instrs: Vec<Instr>,
    globals_image: Vec<u8>,
    globals_map: BTreeMap<String, (u32, Type)>,
    functions: BTreeMap<String, u32>,
    call_fixups: Vec<(usize, String)>,
    jump_fixups: Vec<(usize, usize)>,
    labels: Vec<Option<usize>>,
    string_pool: BTreeMap<String, u32>,
    locals: BTreeMap<String, Slot>,
    loop_stack: Vec<LoopLabels>,
    current_function: String,
}

impl<'a> Compiler<'a> {
    fn new(program: &'a Program, type_info: TypeInfo) -> Self {
        Compiler {
            program,
            type_info,
            instrs: Vec::new(),
            globals_image: Vec::new(),
            globals_map: BTreeMap::new(),
            functions: BTreeMap::new(),
            call_fixups: Vec::new(),
            jump_fixups: Vec::new(),
            labels: Vec::new(),
            string_pool: BTreeMap::new(),
            locals: BTreeMap::new(),
            loop_stack: Vec::new(),
            current_function: String::new(),
        }
    }

    // ----- labels and emission -------------------------------------------------

    fn emit(&mut self, op: Op, operand: u32) -> usize {
        self.instrs.push(Instr::new(op, operand));
        self.instrs.len() - 1
    }

    fn new_label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn bind_label(&mut self, label: usize) {
        self.labels[label] = Some(self.instrs.len());
    }

    fn emit_jump(&mut self, op: Op, label: usize) {
        let index = self.emit(op, 0);
        self.jump_fixups.push((index, label));
    }

    // ----- data layout ------------------------------------------------------------

    fn layout_globals(&mut self) -> Result<(), CompileError> {
        for global in &self.program.globals {
            let size = round_up(global.ty.size(), 4);
            let offset = self.globals_image.len() as u32;
            self.globals_map
                .insert(global.name.clone(), (offset, global.ty));
            let mut bytes = vec![0u8; size as usize];
            match &global.init {
                None => {}
                Some(Expr::IntLit(value)) => {
                    bytes[..4].copy_from_slice(&(*value as u32).to_le_bytes());
                }
                Some(_) => return Err(CompileError::UnsupportedGlobalInit(global.name.clone())),
            }
            self.globals_image.extend_from_slice(&bytes);
        }
        Ok(())
    }

    fn intern_string(&mut self, value: &str) -> u32 {
        if let Some(&offset) = self.string_pool.get(value) {
            return offset;
        }
        let offset = self.globals_image.len() as u32;
        self.globals_image.extend_from_slice(value.as_bytes());
        self.globals_image.push(0);
        // Keep words aligned for anything placed afterwards.
        while !self.globals_image.len().is_multiple_of(4) {
            self.globals_image.push(0);
        }
        self.string_pool.insert(value.to_string(), offset);
        offset
    }

    // ----- program structure -------------------------------------------------------

    fn emit_start_stub(&mut self) {
        // call main; exit(main's return value); halt.
        let call_index = self.emit(Op::Call, 0);
        self.call_fixups.push((call_index, "main".to_string()));
        self.emit(Op::Syscall, (Sysno::Exit.as_u32() << 8) | 1);
        self.emit(Op::Halt, 0);
    }

    fn compile_function(&mut self, function: &Function) -> Result<(), CompileError> {
        self.current_function.clone_from(&function.name);
        let offset = (self.instrs.len() as u32) * INSTR_SIZE;
        self.functions.insert(function.name.clone(), offset);

        // Assign frame slots: parameters first, then every local declared
        // anywhere in the body, in declaration order.
        self.locals.clear();
        let mut displacement = 0u32;
        let mut assign = |name: &str, ty: Type, locals: &mut BTreeMap<String, Slot>| {
            let size = round_up(ty.size(), 4);
            displacement += size;
            locals.insert(name.to_string(), Slot::Local(displacement, ty));
            displacement
        };
        for param in &function.params {
            assign(&param.name, param.ty, &mut self.locals);
        }
        collect_locals(&function.body, &mut |name, ty| {
            assign(name, ty, &mut self.locals);
        });
        let frame_size = round_up(displacement, 8);

        self.emit(Op::Enter, frame_size);
        // Parameters were pushed left-to-right by the caller, so the last one
        // is on top of the operand stack: store them in reverse.
        for param in function.params.iter().rev() {
            let slot = self.locals[&param.name];
            if let Slot::Local(disp, _) = slot {
                self.emit(Op::StoreL, disp);
            }
        }

        self.compile_block(&function.body)?;

        // Fallthrough return (also the only return for void functions).
        self.emit(Op::Push, 0);
        self.emit(Op::Ret, 0);
        Ok(())
    }

    fn compile_block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for stmt in stmts {
            self.compile_stmt(stmt)?;
        }
        Ok(())
    }

    fn slot(&self, name: &str) -> Option<Slot> {
        if let Some(slot) = self.locals.get(name) {
            return Some(*slot);
        }
        self.globals_map
            .get(name)
            .map(|(offset, ty)| Slot::Global(*offset, *ty))
    }

    fn compile_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::VarDecl { name, init, .. } => {
                if let Some(init) = init {
                    self.compile_expr(init)?;
                    match self.slot(name) {
                        Some(Slot::Local(disp, _)) => {
                            self.emit(Op::StoreL, disp);
                        }
                        _ => unreachable!("locals are always assigned slots"),
                    }
                }
                Ok(())
            }
            Stmt::Assign { target, value } => {
                match target {
                    LValue::Var(name) => {
                        self.compile_expr(value)?;
                        match self.slot(name) {
                            Some(Slot::Local(disp, _)) => {
                                self.emit(Op::StoreL, disp);
                            }
                            Some(Slot::Global(offset, _)) => {
                                self.emit(Op::StoreG, offset);
                            }
                            None => unreachable!("checked by typechecker"),
                        }
                    }
                    LValue::Index(base, index) => {
                        self.compile_expr(value)?;
                        self.compile_address_of_index(base, index)?;
                        self.emit(Op::StoreB, 0);
                    }
                    LValue::Deref(inner) => {
                        self.compile_expr(value)?;
                        self.compile_expr(inner)?;
                        self.emit(Op::StoreW, 0);
                    }
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let else_label = self.new_label();
                let end_label = self.new_label();
                self.compile_expr(cond)?;
                self.emit_jump(Op::Jz, else_label);
                self.compile_block(then_body)?;
                self.emit_jump(Op::Jmp, end_label);
                self.bind_label(else_label);
                self.compile_block(else_body)?;
                self.bind_label(end_label);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let start_label = self.new_label();
                let end_label = self.new_label();
                self.bind_label(start_label);
                self.compile_expr(cond)?;
                self.emit_jump(Op::Jz, end_label);
                self.loop_stack.push(LoopLabels {
                    start: start_label,
                    end: end_label,
                });
                self.compile_block(body)?;
                self.loop_stack.pop();
                self.emit_jump(Op::Jmp, start_label);
                self.bind_label(end_label);
                Ok(())
            }
            Stmt::Return(value) => {
                match value {
                    Some(value) => self.compile_expr(value)?,
                    None => {
                        self.emit(Op::Push, 0);
                    }
                }
                self.emit(Op::Ret, 0);
                Ok(())
            }
            Stmt::Expr(expr) => {
                self.compile_expr(expr)?;
                self.emit(Op::Pop, 0);
                Ok(())
            }
            Stmt::Break => {
                let Some(labels) = self.loop_stack.last() else {
                    return Err(CompileError::LoopControlOutsideLoop("break".to_string()));
                };
                let end = labels.end;
                self.emit_jump(Op::Jmp, end);
                Ok(())
            }
            Stmt::Continue => {
                let Some(labels) = self.loop_stack.last() else {
                    return Err(CompileError::LoopControlOutsideLoop("continue".to_string()));
                };
                let start = labels.start;
                self.emit_jump(Op::Jmp, start);
                Ok(())
            }
        }
    }

    /// Compiles the address computation for `base[index]`, leaving the byte
    /// address on the operand stack.
    fn compile_address_of_index(&mut self, base: &Expr, index: &Expr) -> Result<(), CompileError> {
        self.compile_base_address(base)?;
        self.compile_expr(index)?;
        self.emit(Op::Add, 0);
        Ok(())
    }

    /// Compiles `base` so its *address value* ends up on the operand stack:
    /// buffers decay to their address, pointers are loaded, everything else
    /// is evaluated as an address-valued expression.
    fn compile_base_address(&mut self, base: &Expr) -> Result<(), CompileError> {
        if let Expr::Ident(name) = base {
            match self.slot(name) {
                Some(Slot::Local(disp, Type::Buf(_))) => {
                    self.emit(Op::LeaL, disp);
                    return Ok(());
                }
                Some(Slot::Global(offset, Type::Buf(_))) => {
                    self.emit(Op::LeaG, offset);
                    return Ok(());
                }
                _ => {}
            }
        }
        self.compile_expr(base)
    }

    fn compile_expr(&mut self, expr: &Expr) -> Result<(), CompileError> {
        match expr {
            Expr::IntLit(value) => {
                self.emit(Op::Push, *value as u32);
                Ok(())
            }
            Expr::StrLit(value) => {
                let offset = self.intern_string(value);
                self.emit(Op::LeaG, offset);
                Ok(())
            }
            Expr::Ident(name) => {
                match self.slot(name) {
                    Some(Slot::Local(disp, ty)) => {
                        if matches!(ty, Type::Buf(_)) {
                            self.emit(Op::LeaL, disp);
                        } else {
                            self.emit(Op::LoadL, disp);
                        }
                    }
                    Some(Slot::Global(offset, ty)) => {
                        if matches!(ty, Type::Buf(_)) {
                            self.emit(Op::LeaG, offset);
                        } else {
                            self.emit(Op::LoadG, offset);
                        }
                    }
                    None => unreachable!("checked by typechecker"),
                }
                Ok(())
            }
            Expr::AddrOf(name) => {
                match self.slot(name) {
                    Some(Slot::Local(disp, _)) => {
                        self.emit(Op::LeaL, disp);
                    }
                    Some(Slot::Global(offset, _)) => {
                        self.emit(Op::LeaG, offset);
                    }
                    None => unreachable!("checked by typechecker"),
                }
                Ok(())
            }
            Expr::Deref(inner) => {
                self.compile_expr(inner)?;
                self.emit(Op::LoadW, 0);
                Ok(())
            }
            Expr::Index(base, index) => {
                self.compile_address_of_index(base, index)?;
                self.emit(Op::LoadB, 0);
                Ok(())
            }
            Expr::Unary(op, inner) => {
                self.compile_expr(inner)?;
                match op {
                    UnOp::Neg => self.emit(Op::Neg, 0),
                    UnOp::Not => self.emit(Op::Not, 0),
                    UnOp::BitNot => self.emit(Op::BitNot, 0),
                };
                Ok(())
            }
            Expr::Binary(BinOp::LogAnd, lhs, rhs) => {
                let false_label = self.new_label();
                let end_label = self.new_label();
                self.compile_expr(lhs)?;
                self.emit_jump(Op::Jz, false_label);
                self.compile_expr(rhs)?;
                self.emit_jump(Op::Jz, false_label);
                self.emit(Op::Push, 1);
                self.emit_jump(Op::Jmp, end_label);
                self.bind_label(false_label);
                self.emit(Op::Push, 0);
                self.bind_label(end_label);
                Ok(())
            }
            Expr::Binary(BinOp::LogOr, lhs, rhs) => {
                let true_label = self.new_label();
                let end_label = self.new_label();
                self.compile_expr(lhs)?;
                self.emit_jump(Op::Jnz, true_label);
                self.compile_expr(rhs)?;
                self.emit_jump(Op::Jnz, true_label);
                self.emit(Op::Push, 0);
                self.emit_jump(Op::Jmp, end_label);
                self.bind_label(true_label);
                self.emit(Op::Push, 1);
                self.bind_label(end_label);
                Ok(())
            }
            Expr::Binary(op, lhs, rhs) => {
                self.compile_expr(lhs)?;
                self.compile_expr(rhs)?;
                let machine_op = match op {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::Mod => Op::Mod,
                    BinOp::BitAnd => Op::BitAnd,
                    BinOp::BitOr => Op::BitOr,
                    BinOp::BitXor => Op::BitXor,
                    BinOp::Shl => Op::Shl,
                    BinOp::Shr => Op::Shr,
                    BinOp::Eq => Op::Eq,
                    BinOp::Ne => Op::Ne,
                    BinOp::Lt => Op::Lt,
                    BinOp::Le => Op::Le,
                    BinOp::Gt => Op::Gt,
                    BinOp::Ge => Op::Ge,
                    BinOp::LogAnd | BinOp::LogOr => unreachable!("handled above"),
                };
                self.emit(machine_op, 0);
                Ok(())
            }
            Expr::Call(name, args) => {
                for arg in args {
                    self.compile_expr(arg)?;
                }
                if let Some(sysno) = Sysno::from_name(name) {
                    self.emit(Op::Syscall, (sysno.as_u32() << 8) | args.len() as u32);
                } else {
                    let index = self.emit(Op::Call, 0);
                    self.call_fixups.push((index, name.clone()));
                }
                Ok(())
            }
        }
    }

    fn finish(mut self) -> CompiledProgram {
        // Resolve call targets.
        for (index, name) in &self.call_fixups {
            let offset = self.functions[name];
            self.instrs[*index].operand = offset;
        }
        // Resolve jump labels.
        for (index, label) in &self.jump_fixups {
            let target_index = self.labels[*label].expect("label bound before finish");
            self.instrs[*index].operand = target_index as u32 * INSTR_SIZE;
        }
        CompiledProgram::new(
            encode_all(&self.instrs),
            self.globals_image,
            self.globals_map,
            self.functions,
            0,
            self.type_info,
        )
    }
}

fn round_up(value: u32, to: u32) -> u32 {
    value.div_ceil(to) * to
}

fn collect_locals(stmts: &[Stmt], visit: &mut impl FnMut(&str, Type)) {
    for stmt in stmts {
        match stmt {
            Stmt::VarDecl { name, ty, .. } => visit(name, *ty),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_locals(then_body, visit);
                collect_locals(else_body, visit);
            }
            Stmt::While { body, .. } => collect_locals(body, visit),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::decode_all;
    use crate::parser::parse_program;

    fn compile(src: &str) -> CompiledProgram {
        compile_program(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn compiles_minimal_program() {
        let c = compile("fn main() -> int { return 42; }");
        assert!(c.functions.contains_key("main"));
        assert_eq!(c.entry_offset, 0);
        let instrs = decode_all(c.code()).unwrap();
        // Start stub: Call main, Syscall exit, Halt.
        assert_eq!(instrs[0].op, Op::Call);
        assert_eq!(instrs[1].op, Op::Syscall);
        assert_eq!(instrs[2].op, Op::Halt);
        // main starts with Enter.
        let main_offset = c.functions["main"] as usize / INSTR_SIZE as usize;
        assert_eq!(instrs[main_offset].op, Op::Enter);
    }

    #[test]
    fn missing_main_is_rejected() {
        let program = parse_program("fn helper() -> int { return 1; }").unwrap();
        assert!(matches!(
            compile_program(&program),
            Err(CompileError::MissingMain)
        ));
    }

    #[test]
    fn type_errors_are_propagated() {
        let program = parse_program("fn main() -> int { return missing; }").unwrap();
        assert!(matches!(
            compile_program(&program),
            Err(CompileError::Type(_))
        ));
    }

    #[test]
    fn globals_layout_is_declaration_order() {
        let c = compile(
            r"
            var first: int = 5;
            var logbuf: buf[10];
            var server_uid: uid_t = 48;
            fn main() -> int { return first; }
            ",
        );
        let (first_off, _) = c.globals_map["first"];
        let (buf_off, buf_ty) = c.globals_map["logbuf"];
        let (uid_off, _) = c.globals_map["server_uid"];
        assert_eq!(first_off, 0);
        assert_eq!(buf_off, 4);
        // Buffer rounded up to a word multiple.
        assert_eq!(uid_off, 4 + 12);
        assert_eq!(buf_ty, Type::Buf(10));
        // Initializers are placed in the image.
        assert_eq!(&c.globals_image[0..4], &5u32.to_le_bytes());
        assert_eq!(
            &c.globals_image[uid_off as usize..uid_off as usize + 4],
            &48u32.to_le_bytes()
        );
    }

    #[test]
    fn string_literals_are_interned_and_deduplicated() {
        let c = compile(
            r#"fn main() -> int { write(1, "hello", 5); write(1, "hello", 5); write(1, "bye", 3); return 0; }"#,
        );
        let image = String::from_utf8_lossy(&c.globals_image).to_string();
        assert_eq!(image.matches("hello").count(), 1);
        assert_eq!(image.matches("bye").count(), 1);
    }

    #[test]
    fn syscalls_encode_number_and_argc() {
        let c = compile("fn main() -> int { return setuid(48); }");
        let instrs = decode_all(c.code()).unwrap();
        let syscall = instrs
            .iter()
            .find(|i| i.op == Op::Syscall && (i.operand >> 8) == Sysno::SetUid.as_u32())
            .expect("setuid syscall emitted");
        assert_eq!(syscall.operand & 0xFF, 1);
    }

    #[test]
    fn loop_control_outside_loop_is_rejected() {
        let program = parse_program("fn main() -> int { break; return 0; }").unwrap();
        assert!(matches!(
            compile_program(&program),
            Err(CompileError::LoopControlOutsideLoop(_))
        ));
        let program = parse_program("fn main() -> int { continue; return 0; }").unwrap();
        assert!(matches!(
            compile_program(&program),
            Err(CompileError::LoopControlOutsideLoop(_))
        ));
    }

    #[test]
    fn string_global_initializers_are_unsupported() {
        let program =
            parse_program(r#"var name: ptr = "httpd"; fn main() -> int { return 0; }"#).unwrap();
        assert!(matches!(
            compile_program(&program),
            Err(CompileError::UnsupportedGlobalInit(_))
        ));
    }

    #[test]
    fn jumps_are_resolved_to_code_offsets() {
        let c = compile(
            r"
            fn main() -> int {
                var i: int = 0;
                while (i < 10) { i = i + 1; }
                if (i == 10) { return 1; } else { return 2; }
            }
            ",
        );
        let instrs = decode_all(c.code()).unwrap();
        for instr in &instrs {
            if matches!(instr.op, Op::Jmp | Op::Jz | Op::Jnz) {
                assert_eq!(instr.operand % INSTR_SIZE, 0);
                assert!((instr.operand as usize) < c.code().len());
            }
        }
    }

    #[test]
    fn instruction_count_reflects_code_size() {
        let c = compile("fn main() -> int { return 1 + 2 + 3; }");
        assert_eq!(c.instruction_count() * INSTR_SIZE as usize, c.code().len());
    }
}
