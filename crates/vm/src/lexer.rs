//! The SimC lexer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Tokens produced by the lexer.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Token {
    /// Identifier or keyword-like type name.
    Ident(String),
    /// Integer literal (decimal, hexadecimal, or character constant).
    Int(i64),
    /// String literal (unescaped contents).
    Str(String),
    /// `fn`
    KwFn,
    /// `var`
    KwVar,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Int(n) => write!(f, "integer {n}"),
            Token::Str(s) => write!(f, "string {s:?}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token together with the source line it started on (for diagnostics).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// 1-based source line number.
    pub line: usize,
}

/// Errors produced while tokenizing SimC source.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line number.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes SimC source text.
///
/// # Errors
///
/// Returns a [`LexError`] for unterminated strings or characters, malformed
/// numbers, or bytes that start no token.
///
/// # Example
///
/// ```
/// use nvariant_vm::lexer::{tokenize, Token};
///
/// let tokens = tokenize("uid = getuid();")?;
/// assert_eq!(tokens[0].token, Token::Ident("uid".into()));
/// assert_eq!(tokens[1].token, Token::Assign);
/// # Ok::<(), nvariant_vm::LexError>(())
/// ```
pub fn tokenize(source: &str) -> Result<Vec<SpannedToken>, LexError> {
    let bytes: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;

    let err = |message: &str, line: usize| LexError {
        message: message.to_string(),
        line,
    };

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '*' => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err("unterminated block comment", line));
                    }
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                let token = match word.as_str() {
                    "fn" => Token::KwFn,
                    "var" => Token::KwVar,
                    "if" => Token::KwIf,
                    "else" => Token::KwElse,
                    "while" => Token::KwWhile,
                    "return" => Token::KwReturn,
                    "break" => Token::KwBreak,
                    "continue" => Token::KwContinue,
                    _ => Token::Ident(word),
                };
                tokens.push(SpannedToken { token, line });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] == 'x' || bytes[i + 1] == 'X') {
                    i += 2;
                    let hex_start = i;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    if hex_start == i {
                        return Err(err("malformed hexadecimal literal", line));
                    }
                    let text: String = bytes[hex_start..i].iter().collect();
                    let value = i64::from_str_radix(&text, 16)
                        .map_err(|_| err("hexadecimal literal out of range", line))?;
                    tokens.push(SpannedToken {
                        token: Token::Int(value),
                        line,
                    });
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text: String = bytes[start..i].iter().collect();
                    let value = text
                        .parse::<i64>()
                        .map_err(|_| err("decimal literal out of range", line))?;
                    tokens.push(SpannedToken {
                        token: Token::Int(value),
                        line,
                    });
                }
            }
            '"' => {
                i += 1;
                let mut value = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(err("unterminated string literal", line));
                    }
                    match bytes[i] {
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\\' => {
                            if i + 1 >= bytes.len() {
                                return Err(err("unterminated escape sequence", line));
                            }
                            let escaped = match bytes[i + 1] {
                                'n' => '\n',
                                'r' => '\r',
                                't' => '\t',
                                '0' => '\0',
                                '\\' => '\\',
                                '"' => '"',
                                other => {
                                    return Err(err(
                                        &format!("unknown escape sequence \\{other}"),
                                        line,
                                    ))
                                }
                            };
                            value.push(escaped);
                            i += 2;
                        }
                        '\n' => return Err(err("newline in string literal", line)),
                        other => {
                            value.push(other);
                            i += 1;
                        }
                    }
                }
                tokens.push(SpannedToken {
                    token: Token::Str(value),
                    line,
                });
            }
            '\'' => {
                if i + 2 >= bytes.len() {
                    return Err(err("unterminated character literal", line));
                }
                let (value, consumed) = if bytes[i + 1] == '\\' {
                    let escaped = match bytes[i + 2] {
                        'n' => b'\n',
                        'r' => b'\r',
                        't' => b'\t',
                        '0' => 0,
                        '\\' => b'\\',
                        '\'' => b'\'',
                        other => {
                            return Err(err(&format!("unknown escape sequence \\{other}"), line))
                        }
                    };
                    (escaped, 4)
                } else {
                    (bytes[i + 1] as u8, 3)
                };
                if i + consumed > bytes.len() || bytes[i + consumed - 1] != '\'' {
                    return Err(err("unterminated character literal", line));
                }
                tokens.push(SpannedToken {
                    token: Token::Int(i64::from(value)),
                    line,
                });
                i += consumed;
            }
            '(' => {
                tokens.push(SpannedToken {
                    token: Token::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                tokens.push(SpannedToken {
                    token: Token::RParen,
                    line,
                });
                i += 1;
            }
            '{' => {
                tokens.push(SpannedToken {
                    token: Token::LBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                tokens.push(SpannedToken {
                    token: Token::RBrace,
                    line,
                });
                i += 1;
            }
            '[' => {
                tokens.push(SpannedToken {
                    token: Token::LBracket,
                    line,
                });
                i += 1;
            }
            ']' => {
                tokens.push(SpannedToken {
                    token: Token::RBracket,
                    line,
                });
                i += 1;
            }
            ',' => {
                tokens.push(SpannedToken {
                    token: Token::Comma,
                    line,
                });
                i += 1;
            }
            ':' => {
                tokens.push(SpannedToken {
                    token: Token::Colon,
                    line,
                });
                i += 1;
            }
            ';' => {
                tokens.push(SpannedToken {
                    token: Token::Semicolon,
                    line,
                });
                i += 1;
            }
            '+' => {
                tokens.push(SpannedToken {
                    token: Token::Plus,
                    line,
                });
                i += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '>' {
                    tokens.push(SpannedToken {
                        token: Token::Arrow,
                        line,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Minus,
                        line,
                    });
                    i += 1;
                }
            }
            '*' => {
                tokens.push(SpannedToken {
                    token: Token::Star,
                    line,
                });
                i += 1;
            }
            '/' => {
                tokens.push(SpannedToken {
                    token: Token::Slash,
                    line,
                });
                i += 1;
            }
            '%' => {
                tokens.push(SpannedToken {
                    token: Token::Percent,
                    line,
                });
                i += 1;
            }
            '~' => {
                tokens.push(SpannedToken {
                    token: Token::Tilde,
                    line,
                });
                i += 1;
            }
            '^' => {
                tokens.push(SpannedToken {
                    token: Token::Caret,
                    line,
                });
                i += 1;
            }
            '&' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '&' {
                    tokens.push(SpannedToken {
                        token: Token::AndAnd,
                        line,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Amp,
                        line,
                    });
                    i += 1;
                }
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '|' {
                    tokens.push(SpannedToken {
                        token: Token::OrOr,
                        line,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Pipe,
                        line,
                    });
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    tokens.push(SpannedToken {
                        token: Token::NotEq,
                        line,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Bang,
                        line,
                    });
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    tokens.push(SpannedToken {
                        token: Token::EqEq,
                        line,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Assign,
                        line,
                    });
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    tokens.push(SpannedToken {
                        token: Token::Le,
                        line,
                    });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == '<' {
                    tokens.push(SpannedToken {
                        token: Token::Shl,
                        line,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Lt,
                        line,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    tokens.push(SpannedToken {
                        token: Token::Ge,
                        line,
                    });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == '>' {
                    tokens.push(SpannedToken {
                        token: Token::Shr,
                        line,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Gt,
                        line,
                    });
                    i += 1;
                }
            }
            other => {
                return Err(err(&format!("unexpected character {other:?}"), line));
            }
        }
    }

    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            toks("fn var if else while return break continue uid_t foo_1"),
            vec![
                Token::KwFn,
                Token::KwVar,
                Token::KwIf,
                Token::KwElse,
                Token::KwWhile,
                Token::KwReturn,
                Token::KwBreak,
                Token::KwContinue,
                Token::Ident("uid_t".into()),
                Token::Ident("foo_1".into()),
            ]
        );
    }

    #[test]
    fn numbers_decimal_hex_char() {
        assert_eq!(
            toks("0 42 0x7FFFFFFF 'A' '\\n' '\\0'"),
            vec![
                Token::Int(0),
                Token::Int(42),
                Token::Int(0x7FFF_FFFF),
                Token::Int(65),
                Token::Int(10),
                Token::Int(0),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""GET / HTTP/1.0\r\n""#),
            vec![Token::Str("GET / HTTP/1.0\r\n".into())]
        );
    }

    #[test]
    fn operators_multi_char() {
        assert_eq!(
            toks("== != <= >= << >> && || -> = < >"),
            vec![
                Token::EqEq,
                Token::NotEq,
                Token::Le,
                Token::Ge,
                Token::Shl,
                Token::Shr,
                Token::AndAnd,
                Token::OrOr,
                Token::Arrow,
                Token::Assign,
                Token::Lt,
                Token::Gt,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // comment\n b /* block\n comment */ c"),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn line_numbers_are_tracked() {
        let tokens = tokenize("a\nb\n\nc").unwrap();
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[1].line, 2);
        assert_eq!(tokens[2].line, 4);
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let err = tokenize("ok\n\"unterminated").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unterminated"));
        assert!(tokenize("@").is_err());
        assert!(tokenize("/* never closed").is_err());
        assert!(tokenize("'x").is_err());
        assert!(tokenize("0x").is_err());
    }

    #[test]
    fn full_statement() {
        assert_eq!(
            toks("if (uid == 0) { send(fd, buf, 8); }"),
            vec![
                Token::KwIf,
                Token::LParen,
                Token::Ident("uid".into()),
                Token::EqEq,
                Token::Int(0),
                Token::RParen,
                Token::LBrace,
                Token::Ident("send".into()),
                Token::LParen,
                Token::Ident("fd".into()),
                Token::Comma,
                Token::Ident("buf".into()),
                Token::Comma,
                Token::Int(8),
                Token::RParen,
                Token::Semicolon,
                Token::RBrace,
            ]
        );
    }
}
