//! Variant process images: memory layout, segments, registers and counters.
//!
//! The layout is the classic one the paper's attack classes assume:
//!
//! ```text
//!   high addresses
//!   +--------------------+  stack_top
//!   |  stack (grows ↓)   |  return addresses & saved frame pointers live here
//!   +--------------------+  stack_top - stack_size
//!   |        ...         |
//!   +--------------------+  globals_base + globals.len()
//!   |  globals + rodata  |  declaration order fixes adjacency
//!   +--------------------+  globals_base
//!   |        ...         |
//!   +--------------------+  code_base + code.len()
//!   |   code (tagged)    |  read-only
//!   +--------------------+  code_base
//!   low addresses
//! ```
//!
//! Address-space partitioning is realized by shifting every base by the
//! partition bit (`0x8000_0000`), so the same program runs at disjoint
//! addresses in the two variants.

use crate::bytecode::Instr;
use crate::compile::CompiledProgram;
use crate::fault::Fault;
use nvariant_simos::ProcessMem;
use nvariant_types::{Errno, VirtAddr, Word};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Placement of the code, globals and stack segments in the 32-bit virtual
/// address space of one variant.
///
/// # Example
///
/// ```
/// use nvariant_vm::MemoryLayout;
///
/// let base = MemoryLayout::default();
/// let partitioned = base.with_partition_bit();
/// assert_eq!(partitioned.code_base, base.code_base | 0x8000_0000);
/// assert_eq!(partitioned.stack_top, base.stack_top | 0x8000_0000);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryLayout {
    /// Base address of the (read-only) code segment.
    pub code_base: u32,
    /// Base address of the globals + rodata segment.
    pub globals_base: u32,
    /// Address one past the top of the stack (the stack grows downward from
    /// here).
    pub stack_top: u32,
    /// Size of the stack segment in bytes.
    pub stack_size: u32,
}

impl Default for MemoryLayout {
    fn default() -> Self {
        MemoryLayout {
            code_base: 0x0000_1000,
            globals_base: 0x0010_0000,
            stack_top: 0x0080_0000,
            stack_size: 0x0002_0000,
        }
    }
}

impl MemoryLayout {
    /// Returns the layout shifted into the upper half of the address space
    /// (the `R1(a) = a + 0x80000000` reexpression of Table 1).
    #[must_use]
    pub fn with_partition_bit(self) -> Self {
        MemoryLayout {
            code_base: self.code_base | 0x8000_0000,
            globals_base: self.globals_base | 0x8000_0000,
            stack_top: self.stack_top | 0x8000_0000,
            stack_size: self.stack_size,
        }
    }

    /// Returns the layout shifted by an additional byte offset, as in the
    /// *extended* address-space partitioning of Bruschi et al. (Table 1).
    #[must_use]
    pub fn with_offset(self, offset: u32) -> Self {
        MemoryLayout {
            code_base: self.code_base.wrapping_add(offset),
            globals_base: self.globals_base.wrapping_add(offset),
            stack_top: self.stack_top.wrapping_add(offset),
            stack_size: self.stack_size,
        }
    }

    /// Lowest stack address.
    #[must_use]
    pub fn stack_base(&self) -> u32 {
        self.stack_top - self.stack_size
    }
}

/// Execution state of a variant process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcessState {
    /// The process is runnable.
    Running,
    /// The process exited with the given status.
    Exited(i32),
    /// The process was terminated by a fault.
    Faulted(Fault),
}

/// A variant process: one compiled program instantiated at one memory layout
/// with one instruction tag.
///
/// # Example
///
/// ```
/// use nvariant_vm::{compile_program, parse_program, MemoryLayout, Process};
///
/// let program = parse_program("var x: int = 7; fn main() -> int { return x; }")?;
/// let compiled = compile_program(&program)?;
/// let process = Process::new(&compiled, MemoryLayout::default());
/// let addr = process.global_addr("x").unwrap();
/// assert_eq!(process.read_word(addr).unwrap().as_i32(), 7);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Process {
    pub(crate) layout: MemoryLayout,
    /// The (possibly retagged) code image, shared with the compiled program
    /// and every sibling process at the same tag — code is write-protected,
    /// so one reference-counted image serves them all.
    pub(crate) code: Arc<[u8]>,
    /// Predecoded view of `code`: instruction `i` covers bytes
    /// `i * INSTR_SIZE ..`. Opcode and operand are tag-independent, so the
    /// tag-0 stream serves every retagged image; the fetch stage reads the
    /// live tag byte from `code`. `None` falls back to byte decoding.
    pub(crate) instrs: Option<Arc<[Instr]>>,
    pub(crate) globals: Vec<u8>,
    pub(crate) stack: Vec<u8>,
    pub(crate) pc: u32,
    pub(crate) sp: u32,
    pub(crate) fp: u32,
    pub(crate) ostack: Vec<Word>,
    pub(crate) state: ProcessState,
    pub(crate) expected_tag: u8,
    pub(crate) instructions_executed: u64,
    pub(crate) syscalls_made: u64,
    symbols: BTreeMap<String, (u32, u32)>,
    functions: BTreeMap<String, u32>,
}

impl Process {
    /// Instantiates a process from a compiled program with instruction tag 0.
    #[must_use]
    pub fn new(compiled: &CompiledProgram, layout: MemoryLayout) -> Self {
        Self::with_tag(compiled, layout, 0)
    }

    /// Instantiates a process whose code image is stamped with `tag` and
    /// whose fetch stage requires that tag (instruction-set tagging).
    ///
    /// Retags the image on every call for tags other than 0; batch
    /// instantiators (the campaign engine) retag once via
    /// [`CompiledProgram::retagged_image`] and use [`Process::with_image`].
    #[must_use]
    pub fn with_tag(compiled: &CompiledProgram, layout: MemoryLayout, tag: u8) -> Self {
        Self::with_image(compiled, layout, tag, compiled.retagged_image(tag))
    }

    /// Instantiates a process around an already-retagged shared code image
    /// (obtained from [`CompiledProgram::retagged_image`] with the same
    /// `tag`), so instantiating many sibling processes copies no code.
    #[must_use]
    pub fn with_image(
        compiled: &CompiledProgram,
        layout: MemoryLayout,
        tag: u8,
        image: Arc<[u8]>,
    ) -> Self {
        debug_assert_eq!(image.len(), compiled.code().len());
        Process {
            layout,
            code: image,
            instrs: compiled.stream(),
            globals: compiled.globals_image.clone(),
            stack: vec![0; layout.stack_size as usize],
            pc: layout.code_base + compiled.entry_offset,
            sp: layout.stack_top,
            fp: layout.stack_top,
            ostack: Vec::new(),
            state: ProcessState::Running,
            expected_tag: tag,
            instructions_executed: 0,
            syscalls_made: 0,
            symbols: compiled
                .globals_map
                .iter()
                .map(|(name, (offset, ty))| (name.clone(), (*offset, ty.size())))
                .collect(),
            functions: compiled.functions.clone(),
        }
    }

    /// The memory layout this process runs at.
    #[must_use]
    pub fn layout(&self) -> MemoryLayout {
        self.layout
    }

    /// Current execution state.
    #[must_use]
    pub fn state(&self) -> ProcessState {
        self.state
    }

    /// The current program counter.
    #[must_use]
    pub fn pc(&self) -> VirtAddr {
        VirtAddr::new(self.pc)
    }

    /// The instruction tag this process' fetch stage requires.
    #[must_use]
    pub fn expected_tag(&self) -> u8 {
        self.expected_tag
    }

    /// Number of bytecode instructions executed so far.
    #[must_use]
    pub fn instructions_executed(&self) -> u64 {
        self.instructions_executed
    }

    /// Number of system calls issued so far.
    #[must_use]
    pub fn syscalls_made(&self) -> u64 {
        self.syscalls_made
    }

    /// Marks the process as exited (used by the kernel's `exit` handling).
    pub fn set_exited(&mut self, status: i32) {
        self.state = ProcessState::Exited(status);
    }

    /// Marks the process as faulted (used by the monitor when it terminates a
    /// divergent variant).
    pub fn set_faulted(&mut self, fault: Fault) {
        self.state = ProcessState::Faulted(fault);
    }

    /// The virtual address of a named global variable, if it exists.
    #[must_use]
    pub fn global_addr(&self, name: &str) -> Option<VirtAddr> {
        self.symbols
            .get(name)
            .map(|(offset, _)| VirtAddr::new(self.layout.globals_base + offset))
    }

    /// The size in bytes of a named global variable, if it exists.
    #[must_use]
    pub fn global_size(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).map(|(_, size)| *size)
    }

    /// The virtual address of a named function's first instruction.
    #[must_use]
    pub fn function_addr(&self, name: &str) -> Option<VirtAddr> {
        self.functions
            .get(name)
            .map(|offset| VirtAddr::new(self.layout.code_base + offset))
    }

    /// Pushes a value onto the operand stack (used to deliver system-call
    /// results).
    pub fn complete_syscall(&mut self, value: Word) {
        self.ostack.push(value);
    }

    /// Folds the process' mutable execution state — registers, operand
    /// stack, globals and stack images, execution state and instruction tag
    /// — into `digest`.
    ///
    /// Deliberately excluded: the code image (write-protected, fixed at
    /// construction and implied by the tag), the symbol tables (immutable),
    /// and the `instructions_executed` / `syscalls_made` counters (monotone
    /// bookkeeping whose inclusion would make every state look new and
    /// defeat the model checker's visited-state pruning).
    pub fn digest_into(&self, digest: &mut nvariant_types::Fnv1a) {
        digest.write_u32(self.pc);
        digest.write_u32(self.sp);
        digest.write_u32(self.fp);
        digest.write_u8(self.expected_tag);
        digest.write_str(&format!("{:?}", self.state));
        digest.write_usize(self.ostack.len());
        for word in &self.ostack {
            digest.write_u32(word.as_u32());
        }
        digest.write_usize(self.globals.len());
        digest.write(&self.globals);
        digest.write_usize(self.stack.len());
        digest.write(&self.stack);
    }

    // ----- memory access ------------------------------------------------------

    fn segment_for(&self, addr: u32) -> Option<(Segment, usize)> {
        let code_end = self.layout.code_base + self.code.len() as u32;
        let globals_end = self.layout.globals_base + self.globals.len() as u32;
        let stack_base = self.layout.stack_base();
        if addr >= self.layout.code_base && addr < code_end {
            Some((Segment::Code, (addr - self.layout.code_base) as usize))
        } else if addr >= self.layout.globals_base && addr < globals_end {
            Some((Segment::Globals, (addr - self.layout.globals_base) as usize))
        } else if addr >= stack_base && addr < self.layout.stack_top {
            Some((Segment::Stack, (addr - stack_base) as usize))
        } else {
            None
        }
    }

    /// Reads one byte of process memory.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Segfault`] if the address is unmapped.
    pub fn read_byte(&self, addr: VirtAddr) -> Result<u8, Fault> {
        match self.segment_for(addr.as_u32()) {
            Some((Segment::Code, off)) => Ok(self.code[off]),
            Some((Segment::Globals, off)) => Ok(self.globals[off]),
            Some((Segment::Stack, off)) => Ok(self.stack[off]),
            None => Err(Fault::Segfault { addr }),
        }
    }

    /// Writes one byte of process memory.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Segfault`] for unmapped addresses and
    /// [`Fault::WriteProtection`] for the read-only code segment.
    pub fn write_byte(&mut self, addr: VirtAddr, value: u8) -> Result<(), Fault> {
        match self.segment_for(addr.as_u32()) {
            Some((Segment::Code, _)) => Err(Fault::WriteProtection { addr }),
            Some((Segment::Globals, off)) => {
                self.globals[off] = value;
                Ok(())
            }
            Some((Segment::Stack, off)) => {
                self.stack[off] = value;
                Ok(())
            }
            None => Err(Fault::Segfault { addr }),
        }
    }

    /// Reads a little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Segfault`] if any of the four bytes is unmapped.
    pub fn read_word(&self, addr: VirtAddr) -> Result<Word, Fault> {
        if let Ok(bytes) = self.read_slice(addr, 4) {
            Ok(Word::from_le_bytes([
                bytes[0], bytes[1], bytes[2], bytes[3],
            ]))
        } else {
            // Byte-accurate slow path: the range straddles a segment end,
            // so fault (or succeed, under adjacent custom layouts) exactly
            // where a byte-at-a-time walk would.
            let mut bytes = [0u8; 4];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = self.read_byte(addr + i as u32)?;
            }
            Ok(Word::from_le_bytes(bytes))
        }
    }

    /// Writes a little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Segfault`] or [`Fault::WriteProtection`] as for
    /// [`Process::write_byte`].
    pub fn write_word(&mut self, addr: VirtAddr, value: Word) -> Result<(), Fault> {
        if let Some(span) = self.write_span(addr, 4) {
            span.copy_from_slice(&value.to_le_bytes());
            return Ok(());
        }
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_byte(addr + i as u32, *b)?;
        }
        Ok(())
    }

    /// Borrows `len` bytes of process memory without copying, when the
    /// whole range lies within a single segment — the common case for
    /// word accesses, syscall buffers and string reads. Ranges that cross
    /// a segment boundary are refused (even if every byte is mapped under
    /// an adjacent custom layout, a contiguous borrow cannot exist);
    /// callers needing byte-exact semantics fall back to
    /// [`Process::read_bytes`], which does.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Segfault`] naming the first byte that does not fit
    /// in the segment containing `addr` (or `addr` itself if unmapped).
    pub fn read_slice(&self, addr: VirtAddr, len: usize) -> Result<&[u8], Fault> {
        let (segment, off) = self
            .segment_for(addr.as_u32())
            .ok_or(Fault::Segfault { addr })?;
        let bytes = match segment {
            Segment::Code => &self.code[..],
            Segment::Globals => &self.globals,
            Segment::Stack => &self.stack,
        };
        match bytes.get(off..off + len) {
            Some(slice) => Ok(slice),
            None => Err(Fault::Segfault {
                addr: addr + (bytes.len() - off) as u32,
            }),
        }
    }

    /// Mutably borrows `len` bytes when the whole range lies within one
    /// *writable* segment; `None` sends the caller to the byte-at-a-time
    /// path, which reports [`Fault::WriteProtection`] / [`Fault::Segfault`]
    /// byte-accurately.
    fn write_span(&mut self, addr: VirtAddr, len: usize) -> Option<&mut [u8]> {
        let (segment, off) = self.segment_for(addr.as_u32())?;
        let bytes = match segment {
            Segment::Code => return None,
            Segment::Globals => &mut self.globals,
            Segment::Stack => &mut self.stack,
        };
        bytes.get_mut(off..off + len)
    }

    /// Reads `len` bytes of process memory.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Segfault`] if any byte is unmapped.
    pub fn read_bytes(&self, addr: VirtAddr, len: usize) -> Result<Vec<u8>, Fault> {
        if let Ok(slice) = self.read_slice(addr, len) {
            return Ok(slice.to_vec());
        }
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            out.push(self.read_byte(addr + i as u32)?);
        }
        Ok(out)
    }

    /// Writes a byte slice into process memory.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Segfault`] or [`Fault::WriteProtection`] as for
    /// [`Process::write_byte`].
    pub fn write_bytes(&mut self, addr: VirtAddr, data: &[u8]) -> Result<(), Fault> {
        if let Some(span) = self.write_span(addr, data.len()) {
            span.copy_from_slice(data);
            return Ok(());
        }
        for (i, b) in data.iter().enumerate() {
            self.write_byte(addr + i as u32, *b)?;
        }
        Ok(())
    }

    /// Reads a NUL-terminated string (excluding the terminator).
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Segfault`] if the string runs off mapped memory
    /// before a terminator is found within `max` bytes.
    pub fn read_cstring(&self, addr: VirtAddr, max: usize) -> Result<Vec<u8>, Fault> {
        // Fast path: scan the containing segment directly. Valid only when
        // the segment holds the full `max` window or terminates the string
        // within it — otherwise the byte walk decides what lies beyond the
        // segment end.
        if let Some((segment, off)) = self.segment_for(addr.as_u32()) {
            let bytes = match segment {
                Segment::Code => &self.code[..],
                Segment::Globals => &self.globals,
                Segment::Stack => &self.stack,
            };
            let window = &bytes[off..bytes.len().min(off + max)];
            match window.iter().position(|&b| b == 0) {
                Some(nul) => return Ok(window[..nul].to_vec()),
                None if window.len() == max => return Ok(window.to_vec()),
                None => {}
            }
        }
        let mut out = Vec::new();
        for i in 0..max {
            let b = self.read_byte(addr + i as u32)?;
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
        }
        Ok(out)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Segment {
    Code,
    Globals,
    Stack,
}

impl ProcessMem for Process {
    fn read_mem(&self, addr: u32, len: usize) -> Result<Vec<u8>, Errno> {
        self.read_bytes(VirtAddr::new(addr), len)
            .map_err(|_| Errno::Efault)
    }

    fn write_mem(&mut self, addr: u32, data: &[u8]) -> Result<(), Errno> {
        self.write_bytes(VirtAddr::new(addr), data)
            .map_err(|_| Errno::Efault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_program;
    use crate::parser::parse_program;

    fn compiled() -> CompiledProgram {
        let program = parse_program(
            r"
            var logbuf: buf[16];
            var server_uid: uid_t = 48;
            fn main() -> int { return 0; }
            ",
        )
        .unwrap();
        compile_program(&program).unwrap()
    }

    #[test]
    fn layout_partitioning_and_offset() {
        let layout = MemoryLayout::default();
        assert!(layout.code_base < layout.globals_base);
        assert!(layout.globals_base < layout.stack_base());
        let hi = layout.with_partition_bit();
        assert_eq!(hi.globals_base & 0x8000_0000, 0x8000_0000);
        assert_eq!(hi.stack_size, layout.stack_size);
        let extended = hi.with_offset(0x40);
        assert_eq!(extended.code_base, hi.code_base + 0x40);
    }

    #[test]
    fn globals_are_initialized_and_addressable() {
        let c = compiled();
        let p = Process::new(&c, MemoryLayout::default());
        let uid_addr = p.global_addr("server_uid").unwrap();
        assert_eq!(p.read_word(uid_addr).unwrap().as_u32(), 48);
        assert_eq!(p.global_size("logbuf"), Some(16));
        // Declaration order fixes adjacency: the buffer sits below the UID.
        let buf_addr = p.global_addr("logbuf").unwrap();
        assert!(buf_addr < uid_addr);
        assert_eq!(uid_addr.offset_from(buf_addr), Some(16));
        assert!(p.global_addr("missing").is_none());
    }

    #[test]
    fn partitioned_variant_reads_same_logical_data_at_different_addresses() {
        let c = compiled();
        let p0 = Process::new(&c, MemoryLayout::default());
        let p1 = Process::new(&c, MemoryLayout::default().with_partition_bit());
        let a0 = p0.global_addr("server_uid").unwrap();
        let a1 = p1.global_addr("server_uid").unwrap();
        assert_ne!(a0, a1);
        assert_eq!(a1.without_high_bit(), a0);
        assert_eq!(p0.read_word(a0).unwrap(), p1.read_word(a1).unwrap());
        // An address valid in variant 1 is unmapped in variant 0.
        assert!(p0.read_word(a1).is_err());
        assert!(p1.read_word(a0).is_err());
    }

    #[test]
    fn memory_faults() {
        let c = compiled();
        let mut p = Process::new(&c, MemoryLayout::default());
        assert!(matches!(
            p.read_byte(VirtAddr::new(0x0000_0004)),
            Err(Fault::Segfault { .. })
        ));
        let code_addr = VirtAddr::new(p.layout().code_base);
        assert!(matches!(
            p.write_byte(code_addr, 0),
            Err(Fault::WriteProtection { .. })
        ));
        // Stack is writable.
        let stack_addr = VirtAddr::new(p.layout().stack_top - 8);
        p.write_word(stack_addr, Word::from_u32(0xAABB_CCDD))
            .unwrap();
        assert_eq!(p.read_word(stack_addr).unwrap().as_u32(), 0xAABB_CCDD);
    }

    #[test]
    fn cstring_reads() {
        let c = compiled();
        let mut p = Process::new(&c, MemoryLayout::default());
        let addr = p.global_addr("logbuf").unwrap();
        p.write_bytes(addr, b"GET /index.html\0").unwrap();
        assert_eq!(p.read_cstring(addr, 64).unwrap(), b"GET /index.html");
        // A max that stops before the terminator returns the prefix.
        assert_eq!(p.read_cstring(addr, 3).unwrap(), b"GET");
    }

    #[test]
    fn process_mem_trait_maps_faults_to_efault() {
        let c = compiled();
        let mut p = Process::new(&c, MemoryLayout::default());
        assert_eq!(p.read_mem(0x4, 1), Err(Errno::Efault));
        assert_eq!(p.write_mem(0x4, b"x"), Err(Errno::Efault));
        let addr = p.global_addr("logbuf").unwrap().as_u32();
        assert!(p.write_mem(addr, b"ok\0").is_ok());
        assert_eq!(p.read_cstr(addr, 16).unwrap(), b"ok");
    }

    #[test]
    fn tagging_restamps_code() {
        let c = compiled();
        let p0 = Process::new(&c, MemoryLayout::default());
        let p1 = Process::with_tag(&c, MemoryLayout::default(), 1);
        assert_eq!(p0.expected_tag(), 0);
        assert_eq!(p1.expected_tag(), 1);
        // First code byte is the tag of the first instruction.
        assert_eq!(p0.code[0], 0);
        assert_eq!(p1.code[0], 1);
        // Operands are untouched.
        assert_eq!(p0.code[1..6], p1.code[1..6]);
    }

    #[test]
    fn function_addresses_are_exposed() {
        let c = compiled();
        let p = Process::new(&c, MemoryLayout::default());
        let main_addr = p.function_addr("main").unwrap();
        assert!(main_addr.as_u32() >= p.layout().code_base);
        assert!(p.function_addr("nope").is_none());
    }
}
