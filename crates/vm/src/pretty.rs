//! Pretty-printer that renders a [`Program`] back into SimC source text.
//!
//! Used to inspect transformed variants (the output of `nvariant-transform`)
//! and in round-trip tests of the parser.

use crate::ast::{Expr, Function, GlobalDecl, LValue, Program, Stmt};
use std::fmt::Write as _;

/// Renders a program as SimC source text.
///
/// The output parses back to an equivalent AST (see the round-trip tests),
/// which makes it suitable for diffing an original program against its
/// UID-transformed variant.
///
/// # Example
///
/// ```
/// use nvariant_vm::{parse_program, pretty_print};
///
/// let program = parse_program("fn main() -> int { return 1 + 2; }")?;
/// let text = pretty_print(&program);
/// assert!(text.contains("fn main() -> int {"));
/// assert!(text.contains("return (1 + 2);"));
/// # Ok::<(), nvariant_vm::ParseError>(())
/// ```
#[must_use]
pub fn pretty_print(program: &Program) -> String {
    let mut out = String::new();
    for global in &program.globals {
        print_global(&mut out, global);
    }
    if !program.globals.is_empty() {
        out.push('\n');
    }
    for (i, function) in program.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function(&mut out, function);
    }
    out
}

fn print_global(out: &mut String, global: &GlobalDecl) {
    let _ = write!(out, "var {}: {}", global.name, global.ty);
    if let Some(init) = &global.init {
        let _ = write!(out, " = {}", expr_to_string(init));
    }
    out.push_str(";\n");
}

fn print_function(out: &mut String, function: &Function) {
    let params: Vec<String> = function
        .params
        .iter()
        .map(|p| format!("{}: {}", p.name, p.ty))
        .collect();
    let _ = write!(out, "fn {}({})", function.name, params.join(", "));
    if function.ret != crate::ast::Type::Void {
        let _ = write!(out, " -> {}", function.ret);
    }
    out.push_str(" {\n");
    for stmt in &function.body {
        print_stmt(out, stmt, 1);
    }
    out.push_str("}\n");
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    indent(out, level);
    match stmt {
        Stmt::VarDecl { name, ty, init } => {
            let _ = write!(out, "var {name}: {ty}");
            if let Some(init) = init {
                let _ = write!(out, " = {}", expr_to_string(init));
            }
            out.push_str(";\n");
        }
        Stmt::Assign { target, value } => {
            let target_text = match target {
                LValue::Var(name) => name.clone(),
                LValue::Index(base, index) => {
                    format!("{}[{}]", expr_to_string(base), expr_to_string(index))
                }
                LValue::Deref(inner) => format!("*{}", expr_to_string(inner)),
            };
            let _ = writeln!(out, "{target_text} = {};", expr_to_string(value));
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "if ({}) {{", expr_to_string(cond));
            for s in then_body {
                print_stmt(out, s, level + 1);
            }
            indent(out, level);
            if else_body.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for s in else_body {
                    print_stmt(out, s, level + 1);
                }
                indent(out, level);
                out.push_str("}\n");
            }
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", expr_to_string(cond));
            for s in body {
                print_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Return(None) => out.push_str("return;\n"),
        Stmt::Return(Some(value)) => {
            let _ = writeln!(out, "return {};", expr_to_string(value));
        }
        Stmt::Expr(expr) => {
            let _ = writeln!(out, "{};", expr_to_string(expr));
        }
        Stmt::Break => out.push_str("break;\n"),
        Stmt::Continue => out.push_str("continue;\n"),
    }
}

/// Renders an expression as SimC source (fully parenthesized for binary
/// operations, so precedence never changes on re-parse).
#[must_use]
pub fn expr_to_string(expr: &Expr) -> String {
    match expr {
        Expr::IntLit(n) => {
            // Large constants read better in hex (e.g. the reexpression mask).
            if *n > 0xFFFF {
                format!("{n:#x}")
            } else {
                format!("{n}")
            }
        }
        Expr::StrLit(s) => format!("{:?}", s),
        Expr::Ident(name) => name.clone(),
        Expr::Unary(op, inner) => format!("{op}{}", expr_to_string(inner)),
        Expr::Binary(op, lhs, rhs) => {
            format!("({} {op} {})", expr_to_string(lhs), expr_to_string(rhs))
        }
        Expr::Call(name, args) => {
            let rendered: Vec<String> = args.iter().map(expr_to_string).collect();
            format!("{name}({})", rendered.join(", "))
        }
        Expr::Index(base, index) => {
            format!("{}[{}]", expr_to_string(base), expr_to_string(index))
        }
        Expr::Deref(inner) => format!("*{}", expr_to_string(inner)),
        Expr::AddrOf(name) => format!("&{name}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const SAMPLE: &str = r#"
        var logbuf: buf[64];
        var server_uid: uid_t;

        fn check(uid: uid_t) -> int {
            if (uid == 0) {
                return 1;
            } else {
                while (uid > 100) {
                    uid = uid - 100;
                }
            }
            logbuf[0] = 'x';
            *(&server_uid) = uid;
            write(1, "done\n", 5);
            return 0;
        }

        fn main() -> int {
            return check(getuid());
        }
    "#;

    #[test]
    fn round_trip_through_parser() {
        let original = parse_program(SAMPLE).unwrap();
        let printed = pretty_print(&original);
        let reparsed = parse_program(&printed).unwrap();
        // Pretty-printing normalizes formatting but must preserve structure:
        // a second print of the reparsed program is identical.
        assert_eq!(pretty_print(&reparsed), printed);
        assert_eq!(reparsed.globals.len(), original.globals.len());
        assert_eq!(reparsed.functions.len(), original.functions.len());
        assert_eq!(reparsed.statement_count(), original.statement_count());
    }

    #[test]
    fn hex_rendering_of_large_constants() {
        let program = parse_program("fn f(u: uid_t) -> uid_t { return u ^ 0x7FFFFFFF; }").unwrap();
        let printed = pretty_print(&program);
        assert!(printed.contains("0x7fffffff"));
    }

    #[test]
    fn string_literals_are_escaped() {
        let program = parse_program(r#"fn f() { write(1, "a\nb", 3); }"#).unwrap();
        let printed = pretty_print(&program);
        assert!(printed.contains(r#""a\nb""#));
        // And the escaped form re-parses.
        assert!(parse_program(&printed).is_ok());
    }

    #[test]
    fn void_functions_omit_arrow() {
        let program = parse_program("fn f() { return; }").unwrap();
        let printed = pretty_print(&program);
        assert!(printed.contains("fn f() {"));
        assert!(!printed.contains("->"));
    }
}
