//! The SimC bytecode: a fixed-width, byte-encoded instruction set.
//!
//! Every instruction is encoded as six bytes:
//!
//! ```text
//! +--------+--------+----------------------------------+
//! |  tag   | opcode |        operand (u32, LE)         |
//! +--------+--------+----------------------------------+
//! ```
//!
//! The leading **tag** byte exists to support the *instruction-set tagging*
//! variation of Table 1: each variant's code image is stamped with a
//! different tag, the fetch stage checks the tag before decoding, and
//! injected instructions (which necessarily carry a single concrete tag)
//! therefore fault in at least one variant.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size in bytes of one encoded instruction.
pub const INSTR_SIZE: u32 = 6;

/// Operation codes of the SimC machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
#[repr(u8)]
pub enum Op {
    /// Do nothing.
    Nop = 0,
    /// Push the operand as an immediate word.
    Push = 1,
    /// Push the word at `globals_base + operand`.
    LoadG = 2,
    /// Pop a word and store it at `globals_base + operand`.
    StoreG = 3,
    /// Push the word at `fp - operand` (a local slot).
    LoadL = 4,
    /// Pop a word and store it at `fp - operand`.
    StoreL = 5,
    /// Pop an address and push the word it points to.
    LoadW = 6,
    /// Pop an address, then a value, and store the value at the address.
    StoreW = 7,
    /// Pop an address and push the byte it points to (zero-extended).
    LoadB = 8,
    /// Pop an address, then a value, and store its low byte at the address.
    StoreB = 9,
    /// Push the address `globals_base + operand`.
    LeaG = 10,
    /// Push the address `fp - operand`.
    LeaL = 11,
    /// Pop two words, push their sum.
    Add = 12,
    /// Pop two words, push their difference.
    Sub = 13,
    /// Pop two words, push their product.
    Mul = 14,
    /// Pop two words, push their signed quotient.
    Div = 15,
    /// Pop two words, push their signed remainder.
    Mod = 16,
    /// Bitwise and.
    BitAnd = 17,
    /// Bitwise or.
    BitOr = 18,
    /// Bitwise xor.
    BitXor = 19,
    /// Shift left.
    Shl = 20,
    /// Logical shift right.
    Shr = 21,
    /// Arithmetic negation.
    Neg = 22,
    /// Logical not (0 becomes 1, everything else 0).
    Not = 23,
    /// Bitwise complement.
    BitNot = 24,
    /// Signed comparisons pushing 0 or 1.
    Eq = 25,
    /// Not equal.
    Ne = 26,
    /// Less than.
    Lt = 27,
    /// Less or equal.
    Le = 28,
    /// Greater than.
    Gt = 29,
    /// Greater or equal.
    Ge = 30,
    /// Unconditional jump to the absolute code address in the operand.
    Jmp = 31,
    /// Pop a word; jump if it is zero.
    Jz = 32,
    /// Pop a word; jump if it is non-zero.
    Jnz = 33,
    /// Call the function at the absolute code address in the operand.
    Call = 34,
    /// Pop an address and call it (indirect call).
    CallPtr = 35,
    /// Reserve `operand` bytes of locals (function prologue).
    Enter = 36,
    /// Return to the caller, leaving the return value on the operand stack.
    Ret = 37,
    /// System call; operand encodes `sysno << 8 | argc`.
    Syscall = 38,
    /// Duplicate the top of the operand stack.
    Dup = 39,
    /// Discard the top of the operand stack.
    Pop = 40,
    /// Swap the two top operand stack entries.
    Swap = 41,
    /// Halt the machine (only reachable from the start stub).
    Halt = 42,
}

impl Op {
    /// All opcodes in numbering order.
    pub const ALL: &'static [Op] = &[
        Op::Nop,
        Op::Push,
        Op::LoadG,
        Op::StoreG,
        Op::LoadL,
        Op::StoreL,
        Op::LoadW,
        Op::StoreW,
        Op::LoadB,
        Op::StoreB,
        Op::LeaG,
        Op::LeaL,
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Div,
        Op::Mod,
        Op::BitAnd,
        Op::BitOr,
        Op::BitXor,
        Op::Shl,
        Op::Shr,
        Op::Neg,
        Op::Not,
        Op::BitNot,
        Op::Eq,
        Op::Ne,
        Op::Lt,
        Op::Le,
        Op::Gt,
        Op::Ge,
        Op::Jmp,
        Op::Jz,
        Op::Jnz,
        Op::Call,
        Op::CallPtr,
        Op::Enter,
        Op::Ret,
        Op::Syscall,
        Op::Dup,
        Op::Pop,
        Op::Swap,
        Op::Halt,
    ];

    /// Numeric opcode.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes an opcode byte.
    #[must_use]
    pub fn from_u8(byte: u8) -> Option<Op> {
        Op::ALL.iter().copied().find(|o| o.as_u8() == byte)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One decoded instruction.
///
/// # Example
///
/// ```
/// use nvariant_vm::{Instr, Op, INSTR_SIZE};
///
/// let instr = Instr::new(Op::Push, 42).with_tag(1);
/// let bytes = instr.encode();
/// assert_eq!(bytes.len() as u32, INSTR_SIZE);
/// assert_eq!(Instr::decode(&bytes).unwrap(), instr);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instr {
    /// The variant tag stamped on this instruction.
    pub tag: u8,
    /// The operation.
    pub op: Op,
    /// The 32-bit operand (meaning depends on the operation).
    pub operand: u32,
}

impl Instr {
    /// Creates an instruction with tag 0.
    #[must_use]
    pub fn new(op: Op, operand: u32) -> Self {
        Instr {
            tag: 0,
            op,
            operand,
        }
    }

    /// Creates an instruction with no operand and tag 0.
    #[must_use]
    pub fn simple(op: Op) -> Self {
        Instr::new(op, 0)
    }

    /// Returns the instruction with the given tag.
    #[must_use]
    pub fn with_tag(mut self, tag: u8) -> Self {
        self.tag = tag;
        self
    }

    /// Encodes the instruction into its six-byte representation.
    #[must_use]
    pub fn encode(&self) -> [u8; INSTR_SIZE as usize] {
        let operand = self.operand.to_le_bytes();
        [
            self.tag,
            self.op.as_u8(),
            operand[0],
            operand[1],
            operand[2],
            operand[3],
        ]
    }

    /// Decodes an instruction from six bytes. Returns `None` if the opcode
    /// byte is not a valid operation (the caller converts this into an
    /// illegal-instruction fault).
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Instr> {
        if bytes.len() < INSTR_SIZE as usize {
            return None;
        }
        let op = Op::from_u8(bytes[1])?;
        let operand = u32::from_le_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]);
        Some(Instr {
            tag: bytes[0],
            op,
            operand,
        })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} {:#x}", self.tag, self.op, self.operand)
    }
}

/// An instruction slot that failed to decode: the offending program counter
/// and the raw bytes found there.
///
/// Both the interpreter's fetch fallback and the static analyzer's stream
/// walk report undecodable slots through this one type, so a bad opcode byte
/// renders identically whether it is hit at run time or at verify time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodeFailure {
    /// The program counter (or code-segment byte offset) of the bad slot.
    pub pc: u32,
    /// The six raw bytes of the slot (zero-padded past the end of the image).
    pub raw: [u8; INSTR_SIZE as usize],
}

impl DecodeFailure {
    /// The canonical one-line rendering shared by the interpreter fault
    /// display and the analyzer diagnostics.
    #[must_use]
    pub fn describe(&self) -> String {
        let bytes: Vec<String> = self.raw.iter().map(|b| format!("{b:02x}")).collect();
        format!(
            "illegal instruction at {:#010x}: raw bytes {} (opcode byte {:#04x} does not decode)",
            self.pc,
            bytes.join(" "),
            self.raw[1]
        )
    }
}

impl fmt::Display for DecodeFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Decodes the six bytes of one slot, carrying the offending `pc` and the
/// raw bytes into the failure so callers can report them verbatim.
pub fn decode_slot(raw: [u8; INSTR_SIZE as usize], pc: u32) -> Result<Instr, DecodeFailure> {
    Instr::decode(&raw).ok_or(DecodeFailure { pc, raw })
}

/// Decodes the slot at byte offset `pc` of a flat code image. Bytes past the
/// end of the image read as zero, matching what a freshly mapped page holds.
pub fn decode_slot_at(code: &[u8], pc: u32) -> Result<Instr, DecodeFailure> {
    let mut raw = [0u8; INSTR_SIZE as usize];
    for (i, byte) in raw.iter_mut().enumerate() {
        *byte = code.get(pc as usize + i).copied().unwrap_or(0);
    }
    decode_slot(raw, pc)
}

/// Encodes a sequence of instructions into a flat code image.
#[must_use]
pub fn encode_all(instrs: &[Instr]) -> Vec<u8> {
    let mut out = Vec::with_capacity(instrs.len() * INSTR_SIZE as usize);
    for i in instrs {
        out.extend_from_slice(&i.encode());
    }
    out
}

/// Decodes a flat code image back into instructions.
///
/// Returns `None` if any instruction fails to decode or the image length is
/// not a multiple of [`INSTR_SIZE`].
#[must_use]
pub fn decode_all(code: &[u8]) -> Option<Vec<Instr>> {
    if !code.len().is_multiple_of(INSTR_SIZE as usize) {
        return None;
    }
    code.chunks(INSTR_SIZE as usize)
        .map(Instr::decode)
        .collect()
}

/// Re-stamps every instruction in a code image with `tag`, returning the new
/// image. This is the code-transformation half of the instruction-set
/// tagging variation.
#[must_use]
pub fn retag_code(code: &[u8], tag: u8) -> Vec<u8> {
    let mut out = code.to_vec();
    let mut i = 0;
    while i < out.len() {
        out[i] = tag;
        i += INSTR_SIZE as usize;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_round_trip() {
        for &op in Op::ALL {
            assert_eq!(Op::from_u8(op.as_u8()), Some(op));
        }
        assert_eq!(Op::from_u8(200), None);
    }

    #[test]
    fn opcode_numbers_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for &op in Op::ALL {
            assert!(seen.insert(op.as_u8()), "duplicate opcode for {op}");
        }
    }

    #[test]
    fn instruction_encode_decode_round_trip() {
        let cases = [
            Instr::new(Op::Push, 0xDEAD_BEEF).with_tag(3),
            Instr::simple(Op::Ret),
            Instr::new(Op::Syscall, (9 << 8) | 3),
            Instr::new(Op::Jmp, 0x1234),
        ];
        for instr in cases {
            assert_eq!(Instr::decode(&instr.encode()), Some(instr));
        }
    }

    #[test]
    fn decode_rejects_short_or_invalid_input() {
        assert_eq!(Instr::decode(&[0, 1, 2]), None);
        let mut bytes = Instr::simple(Op::Nop).encode();
        bytes[1] = 0xFF;
        assert_eq!(Instr::decode(&bytes), None);
    }

    #[test]
    fn encode_all_decode_all_round_trip() {
        let instrs = vec![
            Instr::new(Op::Push, 1),
            Instr::new(Op::Push, 2),
            Instr::simple(Op::Add),
            Instr::simple(Op::Ret),
        ];
        let code = encode_all(&instrs);
        assert_eq!(code.len(), 4 * INSTR_SIZE as usize);
        assert_eq!(decode_all(&code), Some(instrs));
        assert_eq!(decode_all(&code[..7]), None);
    }

    #[test]
    fn retag_changes_only_tags() {
        let instrs = vec![Instr::new(Op::Push, 7), Instr::simple(Op::Halt)];
        let code = encode_all(&instrs);
        let tagged = retag_code(&code, 1);
        let decoded = decode_all(&tagged).unwrap();
        assert!(decoded.iter().all(|i| i.tag == 1));
        assert_eq!(decoded[0].op, Op::Push);
        assert_eq!(decoded[0].operand, 7);
        assert_eq!(decoded[1].op, Op::Halt);
    }

    #[test]
    fn decode_slot_carries_pc_and_raw_bytes() {
        let mut bytes = Instr::new(Op::Push, 0xAABB).encode();
        bytes[1] = 0xFF;
        let failure = decode_slot(bytes, 0x2A).unwrap_err();
        assert_eq!(failure.pc, 0x2A);
        assert_eq!(failure.raw, bytes);
        let text = failure.describe();
        assert!(text.contains("0x0000002a"), "{text}");
        assert!(text.contains("0xff"), "{text}");
        assert!(text.contains("ff"), "{text}");
    }

    #[test]
    fn decode_slot_at_zero_pads_past_image_end() {
        let code = encode_all(&[Instr::simple(Op::Halt)]);
        // One full slot past the end: all-zero bytes decode as tag-0 Nop.
        assert_eq!(
            decode_slot_at(&code, INSTR_SIZE).unwrap(),
            Instr::simple(Op::Nop)
        );
        // A bad opcode inside the image reports its own bytes.
        let mut bad = code.clone();
        bad[1] = 0xEE;
        let failure = decode_slot_at(&bad, 0).unwrap_err();
        assert_eq!(failure.raw[1], 0xEE);
        assert_eq!(failure.pc, 0);
    }

    #[test]
    fn display_contains_tag_and_op() {
        let text = Instr::new(Op::Push, 16).with_tag(1).to_string();
        assert!(text.contains("Push"));
        assert!(text.contains("[1]"));
        assert!(text.contains("0x10"));
    }
}
