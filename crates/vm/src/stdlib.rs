//! The SimC standard library, written in SimC itself.
//!
//! These are the moral equivalents of the libc routines the paper's case
//! study depends on. `strcpy` is intentionally unbounded — it is the classic
//! unsafe copy through which the case-study server's non-control-data
//! vulnerability is exercised.

use crate::ast::Program;
use crate::parser::{parse_program, ParseError};

/// SimC source of the standard library.
#[must_use]
pub fn stdlib_source() -> &'static str {
    r"
// ---------------------------------------------------------------------------
// SimC standard library: string and memory routines.
// ---------------------------------------------------------------------------

fn strlen(s: ptr) -> int {
    var n: int = 0;
    while (s[n] != 0) { n = n + 1; }
    return n;
}

// Unbounded copy, faithful to C's strcpy: the destination size is never
// consulted, which is exactly how the case-study overflow happens.
fn strcpy(dst: ptr, src: ptr) -> int {
    var i: int = 0;
    while (src[i] != 0) {
        dst[i] = src[i];
        i = i + 1;
    }
    dst[i] = 0;
    return i;
}

fn strncpy(dst: ptr, src: ptr, n: int) -> int {
    var i: int = 0;
    while (i < n - 1 && src[i] != 0) {
        dst[i] = src[i];
        i = i + 1;
    }
    dst[i] = 0;
    return i;
}

fn strcat(dst: ptr, src: ptr) -> int {
    var off: int = strlen(dst);
    var i: int = 0;
    while (src[i] != 0) {
        dst[off + i] = src[i];
        i = i + 1;
    }
    dst[off + i] = 0;
    return off + i;
}

fn strcmp(a: ptr, b: ptr) -> int {
    var i: int = 0;
    while (a[i] != 0 && b[i] != 0) {
        if (a[i] != b[i]) { return a[i] - b[i]; }
        i = i + 1;
    }
    return a[i] - b[i];
}

fn strncmp(a: ptr, b: ptr, n: int) -> int {
    var i: int = 0;
    while (i < n) {
        if (a[i] != b[i]) { return a[i] - b[i]; }
        if (a[i] == 0) { return 0; }
        i = i + 1;
    }
    return 0;
}

fn memcpy(dst: ptr, src: ptr, n: int) -> int {
    var i: int = 0;
    while (i < n) {
        dst[i] = src[i];
        i = i + 1;
    }
    return n;
}

fn memset(dst: ptr, value: int, n: int) -> int {
    var i: int = 0;
    while (i < n) {
        dst[i] = value;
        i = i + 1;
    }
    return n;
}

fn atoi(s: ptr) -> int {
    var i: int = 0;
    var value: int = 0;
    var negative: int = 0;
    if (s[0] == '-') {
        negative = 1;
        i = 1;
    }
    while (s[i] >= '0' && s[i] <= '9') {
        value = value * 10 + (s[i] - '0');
        i = i + 1;
    }
    if (negative) { return 0 - value; }
    return value;
}

// Renders a non-negative integer into dst, returning the length written.
fn utoa(value: int, dst: ptr) -> int {
    var tmp: buf[16];
    var i: int = 0;
    var n: int = 0;
    if (value == 0) {
        dst[0] = '0';
        dst[1] = 0;
        return 1;
    }
    while (value > 0) {
        tmp[i] = '0' + value % 10;
        value = value / 10;
        i = i + 1;
    }
    while (i > 0) {
        i = i - 1;
        dst[n] = tmp[i];
        n = n + 1;
    }
    dst[n] = 0;
    return n;
}

// Index of the first occurrence of c in s, or -1.
fn find_char(s: ptr, c: int) -> int {
    var i: int = 0;
    while (s[i] != 0) {
        if (s[i] == c) { return i; }
        i = i + 1;
    }
    return 0 - 1;
}

fn starts_with(s: ptr, prefix: ptr) -> int {
    var i: int = 0;
    while (prefix[i] != 0) {
        if (s[i] != prefix[i]) { return 0; }
        i = i + 1;
    }
    return 1;
}

// Returns 1 if needle occurs anywhere in s.
fn str_contains(s: ptr, needle: ptr) -> int {
    var i: int = 0;
    if (needle[0] == 0) { return 1; }
    while (s[i] != 0) {
        var j: int = 0;
        while (needle[j] != 0 && s[i + j] == needle[j]) {
            j = j + 1;
        }
        if (needle[j] == 0) { return 1; }
        i = i + 1;
    }
    return 0;
}

// Writes a NUL-terminated string to a descriptor.
fn write_str(fd: int, s: ptr) -> int {
    return write(fd, s, strlen(s));
}

// Writes a NUL-terminated string to a connection.
fn send_str(fd: int, s: ptr) -> int {
    return send(fd, s, strlen(s));
}
"
}

/// Parses application source text and links it with the standard library.
///
/// # Errors
///
/// Returns a [`ParseError`] if either the application source or (in debug
/// builds, impossibly) the library source fails to parse.
///
/// # Example
///
/// ```
/// use nvariant_vm::parse_with_stdlib;
///
/// let program = parse_with_stdlib(r#"
///     fn main() -> int {
///         var b: buf[16];
///         strcpy(&b, "hi");
///         return strlen(&b);
///     }
/// "#)?;
/// assert!(program.function("strcpy").is_some());
/// assert!(program.function("main").is_some());
/// # Ok::<(), nvariant_vm::ParseError>(())
/// ```
pub fn parse_with_stdlib(application_source: &str) -> Result<Program, ParseError> {
    let mut program = parse_program(application_source)?;
    let library = parse_program(stdlib_source())?;
    program.merge(library);
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_program;
    use crate::interp::TrapReason;
    use crate::process::{MemoryLayout, Process};
    use nvariant_simos::Sysno;

    /// Compiles `src` linked against the stdlib and runs it until exit,
    /// returning the exit status. The program must not use any system call
    /// other than the implicit `exit`.
    fn run(src: &str) -> i32 {
        let program = parse_with_stdlib(src).unwrap();
        let compiled = compile_program(&program).unwrap();
        let mut process = Process::new(&compiled, MemoryLayout::default());
        match process.run_until_trap(10_000_000) {
            TrapReason::Syscall(req) if req.sysno == Sysno::Exit => req.arg(0).as_i32(),
            other => panic!("unexpected trap: {other:?}"),
        }
    }

    #[test]
    fn stdlib_parses_and_typechecks_alone() {
        let lib = parse_program(stdlib_source()).unwrap();
        assert!(lib.function("strcpy").is_some());
        assert!(lib.function("atoi").is_some());
        assert!(crate::typecheck::typecheck_program(&lib).is_ok());
    }

    #[test]
    fn strlen_strcpy_strcat() {
        let status = run(r#"
            fn main() -> int {
                var a: buf[32];
                var b: buf[32];
                strcpy(&a, "GET /index");
                strcpy(&b, ".html");
                strcat(&a, &b);
                if (strcmp(&a, "GET /index.html") == 0) { return strlen(&a); }
                return 0 - 1;
            }
            "#);
        assert_eq!(status, 15);
    }

    #[test]
    fn strncpy_bounds_and_termination() {
        let status = run(r#"
            fn main() -> int {
                var dst: buf[8];
                strncpy(&dst, "abcdefghij", 8);
                if (dst[7] == 0) {
                    if (strlen(&dst) == 7) { return 1; }
                }
                return 0;
            }
            "#);
        assert_eq!(status, 1);
    }

    #[test]
    fn strcmp_orders_strings() {
        let status = run(r#"
            fn main() -> int {
                if (strcmp("abc", "abc") != 0) { return 1; }
                if (strcmp("abc", "abd") >= 0) { return 2; }
                if (strcmp("abd", "abc") <= 0) { return 3; }
                if (strncmp("abcdef", "abcxyz", 3) != 0) { return 4; }
                if (strncmp("abcdef", "abcxyz", 4) == 0) { return 5; }
                return 0;
            }
            "#);
        assert_eq!(status, 0);
    }

    #[test]
    fn memcpy_and_memset() {
        let status = run(r"
            fn main() -> int {
                var a: buf[16];
                var b: buf[16];
                memset(&a, 'x', 15);
                a[15] = 0;
                memcpy(&b, &a, 16);
                if (b[0] == 'x' && b[14] == 'x' && b[15] == 0) { return strlen(&b); }
                return 0 - 1;
            }
            ");
        assert_eq!(status, 15);
    }

    #[test]
    fn atoi_and_utoa_round_trip() {
        let status = run(r#"
            fn main() -> int {
                var text: buf[16];
                if (atoi("48") != 48) { return 1; }
                if (atoi("-7") != 0 - 7) { return 2; }
                if (atoi("0") != 0) { return 3; }
                if (atoi("2147483647") != 0x7FFFFFFF) { return 4; }
                utoa(1234, &text);
                if (strcmp(&text, "1234") != 0) { return 5; }
                utoa(0, &text);
                if (strcmp(&text, "0") != 0) { return 6; }
                if (atoi("123abc") != 123) { return 7; }
                return 0;
            }
            "#);
        assert_eq!(status, 0);
    }

    #[test]
    fn searching_helpers() {
        let status = run(r#"
            fn main() -> int {
                if (find_char("GET /", ' ') != 3) { return 1; }
                if (find_char("GET", 'x') != 0 - 1) { return 2; }
                if (starts_with("GET /index.html", "GET ") != 1) { return 3; }
                if (starts_with("POST /", "GET ") != 0) { return 4; }
                if (str_contains("/var/www/../etc/shadow", "..") != 1) { return 5; }
                if (str_contains("/var/www/index.html", "..") != 0) { return 6; }
                if (str_contains("abc", "") != 1) { return 7; }
                return 0;
            }
            "#);
        assert_eq!(status, 0);
    }

    #[test]
    fn strcpy_is_genuinely_unbounded() {
        // Overflowing a small buffer with strcpy corrupts the adjacent
        // global — this is the primitive the attack library builds on.
        let status = run(r#"
            var small: buf[4];
            var sentinel: int = 7;
            fn main() -> int {
                strcpy(&small, "AAAAAAAA");
                return sentinel;
            }
            "#);
        // The sentinel's low bytes now hold "AAAA"'s continuation, not 7.
        assert_ne!(status, 7);
        assert_eq!(status & 0xFF, i32::from(b'A'));
    }
}
