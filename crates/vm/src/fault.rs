//! Hardware-level faults raised by the simulated machine.
//!
//! Faults are first-class in the N-variant model: address-space partitioning
//! turns an injected absolute address into a [`Fault::Segfault`] in one
//! variant, and instruction-set tagging turns injected code into a
//! [`Fault::TagMismatch`]; the monitor interprets either as divergence.

use nvariant_types::VirtAddr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fault that terminates a variant process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Fault {
    /// An access to unmapped memory.
    Segfault {
        /// The offending address.
        addr: VirtAddr,
    },
    /// The byte at the program counter does not decode to an instruction.
    IllegalInstruction {
        /// The program counter at the time of the fault.
        pc: VirtAddr,
        /// The six raw bytes of the undecodable slot.
        raw: [u8; crate::bytecode::INSTR_SIZE as usize],
    },
    /// The instruction's tag byte does not match the variant's expected tag
    /// (instruction-set tagging, Table 1 of the paper).
    TagMismatch {
        /// The program counter at the time of the fault.
        pc: VirtAddr,
        /// The tag this variant requires.
        expected: u8,
        /// The tag found in memory.
        found: u8,
    },
    /// The memory stack grew past its reserved region.
    StackOverflow,
    /// The operand stack was popped while empty (indicates a compiler or
    /// injected-code error).
    OperandStackUnderflow,
    /// Integer division or remainder by zero.
    DivideByZero,
    /// A `syscall` instruction named an unknown call number.
    InvalidSyscall {
        /// The unknown call number.
        number: u32,
    },
    /// A write targeted the read-only code or rodata region.
    WriteProtection {
        /// The offending address.
        addr: VirtAddr,
    },
    /// The configured step budget was exhausted (runaway loop guard).
    StepLimitExceeded,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Segfault { addr } => write!(f, "segmentation fault at {addr}"),
            Fault::IllegalInstruction { pc, raw } => {
                // One renderer for undecodable slots, shared with the static
                // analyzer, so run-time and verify-time reports agree.
                let failure = crate::bytecode::DecodeFailure {
                    pc: pc.as_u32(),
                    raw: *raw,
                };
                f.write_str(&failure.describe())
            }
            Fault::TagMismatch {
                pc,
                expected,
                found,
            } => write!(
                f,
                "instruction tag mismatch at {pc}: expected {expected}, found {found}"
            ),
            Fault::StackOverflow => write!(f, "stack overflow"),
            Fault::OperandStackUnderflow => write!(f, "operand stack underflow"),
            Fault::DivideByZero => write!(f, "division by zero"),
            Fault::InvalidSyscall { number } => write!(f, "invalid system call number {number}"),
            Fault::WriteProtection { addr } => write!(f, "write to protected memory at {addr}"),
            Fault::StepLimitExceeded => write!(f, "step limit exceeded"),
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let text = Fault::Segfault {
            addr: VirtAddr::new(0x8000_1234),
        }
        .to_string();
        assert!(text.contains("0x80001234"));
        let text = Fault::TagMismatch {
            pc: VirtAddr::new(0x1000),
            expected: 1,
            found: 0,
        }
        .to_string();
        assert!(text.contains("expected 1"));
        assert!(text.contains("found 0"));
        assert!(Fault::DivideByZero.to_string().contains("division"));
        let text = Fault::IllegalInstruction {
            pc: VirtAddr::new(0x42),
            raw: [0, 0xFF, 0, 0, 0, 0],
        }
        .to_string();
        assert!(text.contains("illegal instruction at 0x00000042"), "{text}");
        assert!(text.contains("0xff"), "{text}");
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<Fault>();
    }
}
