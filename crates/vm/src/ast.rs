//! The abstract syntax tree of SimC.
//!
//! The tree is deliberately simple — globals, functions, statements and
//! expressions over 32-bit words — but it carries the one piece of
//! information the paper's transformation depends on: the **declared type**
//! of every variable, so that UID-typed data (`uid_t`, `gid_t`) can be
//! identified and re-expressed without disturbing anything else.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Declared types in SimC.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// 32-bit signed integer.
    Int,
    /// A user identifier (`uid_t`). The target type of the UID variation.
    UidT,
    /// A group identifier (`gid_t`), treated as part of the UID data class.
    GidT,
    /// An untyped byte pointer.
    Ptr,
    /// A fixed-size byte buffer living in the enclosing frame or in globals.
    Buf(u32),
    /// No value (function return type only).
    Void,
}

impl Type {
    /// Returns `true` for the UID data class (`uid_t` or `gid_t`).
    #[must_use]
    pub fn is_uid_class(self) -> bool {
        matches!(self, Type::UidT | Type::GidT)
    }

    /// Size in bytes a value of this type occupies in memory.
    #[must_use]
    pub fn size(self) -> u32 {
        match self {
            Type::Buf(n) => n.max(1),
            Type::Void => 0,
            _ => 4,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::UidT => write!(f, "uid_t"),
            Type::GidT => write!(f, "gid_t"),
            Type::Ptr => write!(f, "ptr"),
            Type::Buf(n) => write!(f, "buf[{n}]"),
            Type::Void => write!(f, "void"),
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x` (yields 0 or 1).
    Not,
    /// Bitwise complement `~x`.
    BitNot,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "-"),
            UnOp::Not => write!(f, "!"),
            UnOp::BitNot => write!(f, "~"),
        }
    }
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Signed division.
    Div,
    /// Signed remainder.
    Mod,
    /// Bitwise and.
    BitAnd,
    /// Bitwise or.
    BitOr,
    /// Bitwise xor.
    BitXor,
    /// Left shift.
    Shl,
    /// Logical right shift.
    Shr,
    /// Equality (yields 0 or 1).
    Eq,
    /// Inequality.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Short-circuit logical and.
    LogAnd,
    /// Short-circuit logical or.
    LogOr,
}

impl BinOp {
    /// Returns `true` for the comparison operators (`==`, `!=`, `<`, `<=`,
    /// `>`, `>=`) — the operators the UID transformation must expose to the
    /// monitor via the `cc_*` detection calls.
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Returns `true` for the *inequality* comparisons whose truth value is
    /// not preserved by bit-flipping reexpression and must therefore be
    /// handled specially by the transformation (§3.3 of the paper).
    #[must_use]
    pub fn is_ordering_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::LogAnd => "&&",
            BinOp::LogOr => "||",
        };
        write!(f, "{s}")
    }
}

/// Expressions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal (decimal, hex, or character constant in source form).
    IntLit(i64),
    /// String literal; evaluates to the address of a NUL-terminated copy in
    /// read-only data.
    StrLit(String),
    /// Variable reference. Buffer-typed variables decay to their address.
    Ident(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function or system call.
    Call(String, Vec<Expr>),
    /// Byte indexing `base[index]` (base may be a buffer or a pointer).
    Index(Box<Expr>, Box<Expr>),
    /// Word dereference `*ptr`.
    Deref(Box<Expr>),
    /// Address of a variable `&name`.
    AddrOf(String),
}

impl Expr {
    /// Convenience constructor for a call expression.
    #[must_use]
    pub fn call(name: &str, args: Vec<Expr>) -> Expr {
        Expr::Call(name.to_string(), args)
    }

    /// Convenience constructor for an identifier.
    #[must_use]
    pub fn ident(name: &str) -> Expr {
        Expr::Ident(name.to_string())
    }

    /// Convenience constructor for an integer literal.
    #[must_use]
    pub fn int(value: i64) -> Expr {
        Expr::IntLit(value)
    }

    /// Convenience constructor for a binary expression.
    #[must_use]
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }
}

/// Assignment targets.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// A byte store `base[index] = …`.
    Index(Expr, Expr),
    /// A word store through a pointer `*ptr = …`.
    Deref(Expr),
}

/// Statements.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// Local variable declaration with optional initializer.
    VarDecl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initializing expression.
        init: Option<Expr>,
    },
    /// Assignment.
    Assign {
        /// Assignment target.
        target: LValue,
        /// Value to store.
        value: Expr,
    },
    /// Conditional.
    If {
        /// Condition expression.
        cond: Expr,
        /// Statements executed when the condition is non-zero.
        then_body: Vec<Stmt>,
        /// Statements executed otherwise.
        else_body: Vec<Stmt>,
    },
    /// Loop.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Return from the current function.
    Return(Option<Expr>),
    /// Expression evaluated for its side effects.
    Expr(Expr),
    /// Break out of the innermost loop.
    Break,
    /// Continue with the next iteration of the innermost loop.
    Continue,
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Return type.
    pub ret: Type,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A global variable declaration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional constant initializer (integer literal or string literal).
    pub init: Option<Expr>,
}

/// A complete SimC program: globals plus functions.
///
/// # Example
///
/// ```
/// use nvariant_vm::{parse_program, Type};
///
/// let program = parse_program("var counter: int = 0; fn main() -> int { return counter; }")?;
/// assert_eq!(program.globals.len(), 1);
/// assert_eq!(program.globals[0].ty, Type::Int);
/// assert!(program.function("main").is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// Global variables, in declaration order (which fixes their layout).
    pub globals: Vec<GlobalDecl>,
    /// Function definitions.
    pub functions: Vec<Function>,
}

impl Program {
    /// Creates an empty program.
    #[must_use]
    pub fn new() -> Self {
        Program::default()
    }

    /// Looks up a function by name.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    #[must_use]
    pub fn global(&self, name: &str) -> Option<&GlobalDecl> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Merges another program's globals and functions into this one
    /// (used to link the SimC standard library with an application).
    pub fn merge(&mut self, other: Program) {
        self.globals.extend(other.globals);
        self.functions.extend(other.functions);
    }

    /// Total number of statements across all functions — a rough size metric
    /// used when reporting transformation statistics.
    #[must_use]
    pub fn statement_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => 1 + count(then_body) + count(else_body),
                    Stmt::While { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        self.functions.iter().map(|f| count(&f.body)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_properties() {
        assert!(Type::UidT.is_uid_class());
        assert!(Type::GidT.is_uid_class());
        assert!(!Type::Int.is_uid_class());
        assert_eq!(Type::Int.size(), 4);
        assert_eq!(Type::Buf(64).size(), 64);
        assert_eq!(Type::Buf(0).size(), 1);
        assert_eq!(Type::Void.size(), 0);
        assert_eq!(format!("{}", Type::Buf(16)), "buf[16]");
        assert_eq!(format!("{}", Type::UidT), "uid_t");
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::Ge.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Lt.is_ordering_comparison());
        assert!(!BinOp::Eq.is_ordering_comparison());
        assert_eq!(format!("{}", BinOp::Le), "<=");
        assert_eq!(format!("{}", UnOp::Not), "!");
    }

    #[test]
    fn expr_constructors() {
        let e = Expr::binary(BinOp::Eq, Expr::ident("uid"), Expr::int(0));
        match e {
            Expr::Binary(BinOp::Eq, lhs, rhs) => {
                assert_eq!(*lhs, Expr::Ident("uid".into()));
                assert_eq!(*rhs, Expr::IntLit(0));
            }
            other => panic!("unexpected expression {other:?}"),
        }
        assert_eq!(
            Expr::call("getuid", vec![]),
            Expr::Call("getuid".into(), vec![])
        );
    }

    #[test]
    fn program_lookup_and_merge() {
        let mut p = Program::new();
        p.globals.push(GlobalDecl {
            name: "g".into(),
            ty: Type::Int,
            init: None,
        });
        p.functions.push(Function {
            name: "main".into(),
            params: vec![],
            ret: Type::Int,
            body: vec![Stmt::Return(Some(Expr::int(0)))],
        });
        assert!(p.function("main").is_some());
        assert!(p.global("g").is_some());
        assert!(p.function("missing").is_none());

        let mut lib = Program::new();
        lib.functions.push(Function {
            name: "helper".into(),
            params: vec![],
            ret: Type::Void,
            body: vec![],
        });
        p.merge(lib);
        assert!(p.function("helper").is_some());
    }

    #[test]
    fn statement_count_recurses() {
        let f = Function {
            name: "f".into(),
            params: vec![],
            ret: Type::Void,
            body: vec![
                Stmt::If {
                    cond: Expr::int(1),
                    then_body: vec![Stmt::Return(None), Stmt::Break],
                    else_body: vec![Stmt::Continue],
                },
                Stmt::While {
                    cond: Expr::int(0),
                    body: vec![Stmt::Expr(Expr::int(3))],
                },
            ],
        };
        let p = Program {
            globals: vec![],
            functions: vec![f],
        };
        assert_eq!(p.statement_count(), 6);
    }
}
