//! `analyze_pair`: lockstep comparison plus worklist abstract
//! interpretation over one compiled variant pair.
//!
//! The pair is checked in two phases. **Phase 1 (P-Lockstep)** is purely
//! structural: decode both images (undecodable slots report through the
//! interpreter's own [`nvariant_vm::DecodeFailure`] renderer), require equal
//! stream lengths, isomorphic CFGs, matching tag bytes, and per-index
//! instructions identical modulo the declared relation — operands must be
//! equal except a `Push` whose operands are related by the pairwise UID
//! mask, and the memory layouts must differ by exactly the declared address
//! partition displacement. **Phase 2 (P-Residual / P-Boundary)** runs only
//! on a lockstep-clean pair: a worklist fixpoint over each function's CFG
//! propagates [`AbsVal`]s through stack slots and locals, then a reporting
//! pass walks every block once with its fixpoint entry state and checks the
//! UID sinks.
//!
//! Soundness caveats (documented in `docs/static-analysis.md`): indirect
//! loads and stores (`LoadW`/`StoreW`/`LoadB`/`StoreB`) widen to `Top`, as
//! does everything reached through `CallPtr` (which the compiler never
//! emits); a `Top` UID argument is excluded from the boundary-domain check
//! rather than guessed.

use crate::cfg::{build_cfgs, FunctionCfg};
use crate::lattice::{AbsVal, Region};
use crate::report::{AnalysisReport, Finding, Property};
use crate::{pair_relation, VariantArtifact};
use nvariant_diversity::UidTransform;
use nvariant_simos::Sysno;
use nvariant_transform::UidContext;
use nvariant_types::Uid;
use nvariant_vm::{decode_slot_at, CompiledProgram, Instr, Op, INSTR_SIZE};
use std::collections::{BTreeMap, VecDeque};

/// Verifies one variant pair: P-Lockstep structurally, then P-Residual and
/// P-Boundary by abstract interpretation of the base variant's stream with
/// the other variant's operands as counterparts.
///
/// The `ctx` is the AST-level UID inference of the (transformed) program
/// both variants were compiled from; it seeds the global classification.
#[must_use]
pub fn analyze_pair(
    base: &VariantArtifact<'_>,
    other: &VariantArtifact<'_>,
    ctx: &UidContext,
) -> AnalysisReport {
    let relation = pair_relation(base.spec.uid, other.spec.uid);
    let mut findings = Vec::new();

    let stream_a = decode_stream(base, &mut findings);
    let stream_b = decode_stream(other, &mut findings);

    check_layouts(base, other, &mut findings);

    // Undecodable slots were already reported identically to the
    // interpreter's fault path; nothing deeper is meaningful.
    let (Some(stream_a), Some(stream_b)) = (stream_a, stream_b) else {
        return AnalysisReport {
            base: base.spec,
            other: other.spec,
            relation,
            functions: 0,
            blocks: 0,
            instructions: 0,
            findings,
        };
    };

    let cfgs_a = build_cfgs(&stream_a, &base.program.functions);
    let cfgs_b = build_cfgs(&stream_b, &other.program.functions);
    check_lockstep(
        base,
        other,
        &stream_a,
        &stream_b,
        &cfgs_a,
        &cfgs_b,
        relation,
        &mut findings,
    );
    check_globals_image(base, other, ctx, relation, &mut findings);

    // Phase 2 needs lockstep to hold (it reads counterpart operands by
    // index), but a data-segment residual does not invalidate it.
    let lockstep_clean = findings.iter().all(|f| f.property != Property::Lockstep);
    if lockstep_clean {
        let pair = PairContext {
            base,
            other_stream: &stream_b,
            relation,
            uid_globals: uid_global_words(base.program, ctx),
            offsets_to_names: base
                .program
                .functions
                .iter()
                .map(|(name, &off)| (off, name.clone()))
                .collect(),
        };
        for cfg in &cfgs_a {
            interpret_function(&pair, cfg, &stream_a, &mut findings);
        }
    }

    AnalysisReport {
        base: base.spec,
        other: other.spec,
        relation,
        functions: cfgs_a.len(),
        blocks: cfgs_a.iter().map(|c| c.blocks.len()).sum(),
        instructions: stream_a.len(),
        findings,
    }
}

/// Decodes a variant's retagged image, reporting every undecodable slot
/// with the same text the interpreter's illegal-instruction fault renders.
fn decode_stream(variant: &VariantArtifact<'_>, findings: &mut Vec<Finding>) -> Option<Vec<Instr>> {
    let code = &variant.image[..];
    let slots = code.len() as u32 / INSTR_SIZE;
    let mut stream = Vec::with_capacity(slots as usize);
    let mut clean = true;
    if !(code.len() as u32).is_multiple_of(INSTR_SIZE) {
        findings.push(Finding {
            property: Property::Lockstep,
            pc: None,
            function: "<image>".to_string(),
            block: None,
            index: None,
            instr: None,
            detail: format!(
                "code image length {} is not a multiple of the {INSTR_SIZE}-byte instruction size",
                code.len()
            ),
        });
        clean = false;
    }
    for i in 0..slots {
        let pc = i * INSTR_SIZE;
        match decode_slot_at(code, pc) {
            Ok(instr) => stream.push(instr),
            Err(failure) => {
                findings.push(Finding {
                    property: Property::Lockstep,
                    pc: Some(pc),
                    function: function_at(&variant.program.functions, pc),
                    block: None,
                    index: None,
                    instr: None,
                    detail: failure.describe(),
                });
                clean = false;
            }
        }
    }
    clean.then_some(stream)
}

/// The name of the function whose range contains `pc`.
fn function_at(functions: &BTreeMap<String, u32>, pc: u32) -> String {
    functions
        .iter()
        .filter(|(_, &off)| off <= pc)
        .max_by_key(|(_, &off)| off)
        .map_or_else(|| "<start>".to_string(), |(name, _)| name.clone())
}

/// The declared address relation must be visible in the layouts: each
/// segment base of `other` sits exactly at its spec's transform of the
/// canonical base recovered from `base`.
fn check_layouts(
    base: &VariantArtifact<'_>,
    other: &VariantArtifact<'_>,
    findings: &mut Vec<Finding>,
) {
    use nvariant_types::VirtAddr;
    let segments = [
        ("code_base", base.layout.code_base, other.layout.code_base),
        (
            "globals_base",
            base.layout.globals_base,
            other.layout.globals_base,
        ),
        ("stack_top", base.layout.stack_top, other.layout.stack_top),
    ];
    for (segment, a, b) in segments {
        let canonical = base.spec.addr.invert(VirtAddr::new(a));
        let expected = other.spec.addr.apply(canonical).as_u32();
        if b != expected {
            findings.push(Finding {
                property: Property::Lockstep,
                pc: None,
                function: "<image>".to_string(),
                block: None,
                index: None,
                instr: None,
                detail: format!(
                    "layout {segment} {b:#010x} does not reflect the declared address \
                     relation {} (expected {expected:#010x} from canonical {:#010x})",
                    other.spec.addr.describe(),
                    canonical.as_u32(),
                ),
            });
        }
    }
}

/// Phase 1: streams equal length, CFGs isomorphic, instructions identical
/// modulo tag byte and the pairwise UID relation on `Push` operands. Only
/// the first diverging (block, index) pair is reported.
#[allow(clippy::too_many_arguments)]
fn check_lockstep(
    base: &VariantArtifact<'_>,
    other: &VariantArtifact<'_>,
    stream_a: &[Instr],
    stream_b: &[Instr],
    cfgs_a: &[FunctionCfg],
    cfgs_b: &[FunctionCfg],
    relation: UidTransform,
    findings: &mut Vec<Finding>,
) {
    if stream_a.len() != stream_b.len() {
        let index = stream_a.len().min(stream_b.len());
        findings.push(Finding {
            property: Property::Lockstep,
            pc: Some(index as u32 * INSTR_SIZE),
            function: "<image>".to_string(),
            block: None,
            index: None,
            instr: None,
            detail: format!(
                "instruction streams diverge in length: {} vs {} instructions",
                stream_a.len(),
                stream_b.len()
            ),
        });
        return;
    }

    // CFG isomorphism. With equal-length streams the block partition is
    // derived data, but comparing it directly is what makes structural
    // drift reportable as a (block, index) coordinate.
    if cfgs_a.len() != cfgs_b.len() {
        findings.push(Finding {
            property: Property::Lockstep,
            pc: None,
            function: "<image>".to_string(),
            block: None,
            index: None,
            instr: None,
            detail: format!(
                "CFGs are not isomorphic: {} vs {} functions",
                cfgs_a.len(),
                cfgs_b.len()
            ),
        });
        return;
    }
    for (fa, fb) in cfgs_a.iter().zip(cfgs_b) {
        if fa.name != fb.name || fa.range != fb.range || fa.blocks != fb.blocks {
            let block = fa
                .blocks
                .iter()
                .zip(&fb.blocks)
                .position(|(a, b)| a != b)
                .unwrap_or(fa.blocks.len().min(fb.blocks.len()));
            findings.push(Finding {
                property: Property::Lockstep,
                pc: None,
                function: fa.name.clone(),
                block: Some(block),
                index: Some(0),
                instr: None,
                detail: format!(
                    "CFGs are not isomorphic: function {} diverges at block {block} \
                     ({} vs {} blocks)",
                    fa.name,
                    fa.blocks.len(),
                    fb.blocks.len()
                ),
            });
            return;
        }
    }

    for (i, (a, b)) in stream_a.iter().zip(stream_b).enumerate() {
        let pc = i as u32 * INSTR_SIZE;
        let divergence = instruction_divergence(*a, *b, base, other, relation);
        if let Some(detail) = divergence {
            let (function, block, index) = locate(cfgs_a, pc);
            findings.push(Finding {
                property: Property::Lockstep,
                pc: Some(pc),
                function,
                block,
                index,
                instr: Some(*a),
                detail,
            });
            return; // first diverging (block, index) pair only
        }
    }
}

/// Why two corresponding instructions are *not* identical modulo the
/// declared relation, if they aren't.
fn instruction_divergence(
    a: Instr,
    b: Instr,
    base: &VariantArtifact<'_>,
    other: &VariantArtifact<'_>,
    relation: UidTransform,
) -> Option<String> {
    if a.tag != base.spec.tag {
        return Some(format!(
            "tag byte {} does not match the base variant's declared tag {}",
            a.tag, base.spec.tag
        ));
    }
    if b.tag != other.spec.tag {
        return Some(format!(
            "counterpart tag byte {} does not match the other variant's declared tag {}",
            b.tag, other.spec.tag
        ));
    }
    if a.op != b.op {
        return Some(format!("opcode diverges: {} vs counterpart {}", a.op, b.op));
    }
    if a.operand == b.operand {
        return None;
    }
    let related = a.op == Op::Push
        && !relation.is_identity()
        && b.operand == relation.apply(Uid::new(a.operand)).as_u32();
    if related {
        return None;
    }
    Some(format!(
        "operand diverges outside the declared relation: {:#x} vs counterpart {:#x} \
         (uid relation {})",
        a.operand,
        b.operand,
        relation.describe()
    ))
}

/// Resolves a pc to (function, block index, instruction-in-block index).
fn locate(cfgs: &[FunctionCfg], pc: u32) -> (String, Option<usize>, Option<usize>) {
    for cfg in cfgs {
        if pc >= cfg.range.0 && pc < cfg.range.1 {
            if let Some(block) = cfg.block_of(pc) {
                let index = ((pc - cfg.blocks[block].start) / INSTR_SIZE) as usize;
                return (cfg.name.clone(), Some(block), Some(index));
            }
            return (cfg.name.clone(), None, None);
        }
    }
    ("<image>".to_string(), None, None)
}

/// UID-class global words: offset → name, from the declared types plus the
/// AST-level inference.
fn uid_global_words(program: &CompiledProgram, ctx: &UidContext) -> BTreeMap<u32, String> {
    let inferred = ctx.uid_globals();
    program
        .globals_map
        .iter()
        .filter(|(name, (_, ty))| ty.is_uid_class() || inferred.iter().any(|g| g == *name))
        .map(|(name, (off, _))| (*off, name.clone()))
        .collect()
}

/// The initial globals images must be identical except at UID-class words,
/// which must be related by the pairwise UID relation. An *equal, nonzero*
/// UID word under a non-identity relation is an untransformed initializer —
/// a P-Residual at the data segment. (Zero words are indistinguishable from
/// uninitialized storage and pass; runtime assignments cover them.)
fn check_globals_image(
    base: &VariantArtifact<'_>,
    other: &VariantArtifact<'_>,
    ctx: &UidContext,
    relation: UidTransform,
    findings: &mut Vec<Finding>,
) {
    let image_a = &base.program.globals_image;
    let image_b = &other.program.globals_image;
    if image_a.len() != image_b.len() {
        findings.push(Finding {
            property: Property::Lockstep,
            pc: None,
            function: "<image>".to_string(),
            block: None,
            index: None,
            instr: None,
            detail: format!(
                "globals images diverge in length: {} vs {} bytes",
                image_a.len(),
                image_b.len()
            ),
        });
        return;
    }

    let uid_words = uid_global_words(base.program, ctx);
    let word = |image: &[u8], off: u32| {
        let off = off as usize;
        image
            .get(off..off + 4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    };
    for (&off, name) in &uid_words {
        let (Some(a), Some(b)) = (word(image_a, off), word(image_b, off)) else {
            continue;
        };
        let expected = relation.apply(Uid::new(a)).as_u32();
        if b == expected {
            continue;
        }
        if a == b {
            if a == 0 || relation.is_identity() {
                continue;
            }
            findings.push(Finding {
                property: Property::Residual,
                pc: None,
                function: "<image>".to_string(),
                block: None,
                index: None,
                instr: None,
                detail: format!(
                    "UID-class global '{name}' (globals offset {off:#x}) holds the \
                     untransformed initializer {a:#x} in both variants (uid relation {})",
                    relation.describe()
                ),
            });
        } else {
            findings.push(Finding {
                property: Property::Lockstep,
                pc: None,
                function: "<image>".to_string(),
                block: None,
                index: None,
                instr: None,
                detail: format!(
                    "UID-class global '{name}' (globals offset {off:#x}) diverges outside \
                     the declared relation: {a:#x} vs counterpart {b:#x}"
                ),
            });
        }
    }

    // Everything outside UID words must match byte for byte.
    let in_uid_word = |i: usize| {
        uid_words
            .keys()
            .any(|&off| i >= off as usize && i < off as usize + 4)
    };
    if let Some(offset) = image_a
        .iter()
        .zip(image_b)
        .enumerate()
        .position(|(i, (a, b))| a != b && !in_uid_word(i))
    {
        findings.push(Finding {
            property: Property::Lockstep,
            pc: None,
            function: "<image>".to_string(),
            block: None,
            index: None,
            instr: None,
            detail: format!(
                "globals images diverge at non-UID offset {offset:#x}: \
                 {:#04x} vs counterpart {:#04x}",
                image_a[offset], image_b[offset]
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Phase 2: worklist abstract interpretation.
// ---------------------------------------------------------------------------

struct PairContext<'a> {
    base: &'a VariantArtifact<'a>,
    other_stream: &'a [Instr],
    relation: UidTransform,
    /// Offset → name of every UID-class global word.
    uid_globals: BTreeMap<u32, String>,
    /// Code offset → function name, for resolving `Call` targets.
    offsets_to_names: BTreeMap<u32, String>,
}

impl PairContext<'_> {
    /// A constant that is equal across the pair under a non-identity UID
    /// relation cannot have been reexpressed: the residual witness.
    fn residual(&self, v: AbsVal) -> Option<(u32, u32)> {
        if self.relation.is_identity() {
            return None;
        }
        match v {
            AbsVal::Const {
                value,
                counterpart,
                pc,
            } if counterpart == value => Some((value, pc)),
            _ => None,
        }
    }

    /// The reexpression domain a UID-position value sits in, when known.
    /// `None` (Top, addresses, taint) is excluded from the boundary check.
    fn domain(&self, v: AbsVal) -> Option<&'static str> {
        match v {
            _ if self.relation.is_identity() => match v {
                AbsVal::Const { .. } | AbsVal::UidClass(_) => Some("canonical"),
                _ => None,
            },
            AbsVal::UidClass(_) => Some("per-variant"),
            AbsVal::Const {
                value, counterpart, ..
            } => {
                if counterpart == self.relation.apply(Uid::new(value)).as_u32() {
                    Some("per-variant")
                } else {
                    Some("shared")
                }
            }
            _ => None,
        }
    }

    fn function_sig(&self, name: &str) -> Option<&nvariant_vm::FunctionSig> {
        self.base.program.type_info.functions.get(name)
    }
}

/// Abstract machine state at one program point.
#[derive(Clone, Debug, PartialEq)]
struct State {
    stack: Vec<AbsVal>,
    locals: BTreeMap<u32, AbsVal>,
}

impl State {
    fn join(&self, other: &State) -> State {
        // Operand stacks align from the top; compiler-generated code keeps
        // heights equal at joins, but injected or hand-built images may not
        // — align the common suffix and drop the rest (absent = Top-ish,
        // but a shorter stack is the safe degraded answer).
        let keep = self.stack.len().min(other.stack.len());
        let stack = self.stack[self.stack.len() - keep..]
            .iter()
            .zip(&other.stack[other.stack.len() - keep..])
            .map(|(a, b)| a.join(*b))
            .collect();
        // Locals absent from either side are Top and drop out.
        let locals = self
            .locals
            .iter()
            .filter_map(|(k, v)| {
                other
                    .locals
                    .get(k)
                    .map(|o| (*k, v.join(*o)))
                    .filter(|(_, j)| *j != AbsVal::Top)
            })
            .collect();
        State { stack, locals }
    }
}

/// Runs the worklist fixpoint over one function, then a single reporting
/// pass per block so findings are emitted exactly once.
fn interpret_function(
    pair: &PairContext<'_>,
    cfg: &FunctionCfg,
    stream: &[Instr],
    findings: &mut Vec<Finding>,
) {
    if cfg.blocks.is_empty() {
        return;
    }
    let entry = entry_state(pair, cfg);
    let mut in_states: BTreeMap<u32, State> = BTreeMap::new();
    in_states.insert(cfg.blocks[0].start, entry);
    let mut worklist: VecDeque<usize> = VecDeque::from([0]);
    // The lattice is finite-height, but bound the fixpoint defensively: a
    // hostile image cannot loop the verifier.
    let mut budget = cfg.blocks.len() * 64 + 64;

    while let Some(block_index) = worklist.pop_front() {
        if budget == 0 {
            return;
        }
        budget -= 1;
        let block = &cfg.blocks[block_index];
        let Some(state) = in_states.get(&block.start).cloned() else {
            continue;
        };
        let out = transfer_block(pair, cfg, block_index, state, stream, None);
        for &succ in &block.succs {
            let joined = match in_states.get(&succ) {
                Some(existing) => existing.join(&out),
                None => out.clone(),
            };
            if in_states.get(&succ) != Some(&joined) {
                in_states.insert(succ, joined);
                if let Some(index) = cfg.blocks.iter().position(|b| b.start == succ) {
                    worklist.push_back(index);
                }
            }
        }
    }

    for (block_index, block) in cfg.blocks.iter().enumerate() {
        if let Some(state) = in_states.get(&block.start).cloned() {
            transfer_block(pair, cfg, block_index, state, stream, Some(findings));
        }
    }
}

/// The abstract state on entry to a function: the caller has pushed the
/// arguments (last argument on top), typed from the signature.
fn entry_state(pair: &PairContext<'_>, cfg: &FunctionCfg) -> State {
    let mut stack = Vec::new();
    if let Some(sig) = pair.function_sig(&cfg.name) {
        for param in &sig.params {
            stack.push(if param.is_uid_class() {
                AbsVal::UidClass(pair.base.spec.uid)
            } else {
                AbsVal::Top
            });
        }
    }
    State {
        stack,
        locals: BTreeMap::new(),
    }
}

/// Executes one block abstractly. When `findings` is `Some`, the UID sinks
/// are checked (the reporting pass); the fixpoint pass passes `None`.
fn transfer_block(
    pair: &PairContext<'_>,
    cfg: &FunctionCfg,
    block_index: usize,
    mut state: State,
    stream: &[Instr],
    mut findings: Option<&mut Vec<Finding>>,
) -> State {
    let block = &cfg.blocks[block_index];
    for (index, stream_index) in block.instr_range().enumerate() {
        let instr = stream[stream_index];
        let pc = stream_index as u32 * INSTR_SIZE;
        let pop = |state: &mut State| state.stack.pop().unwrap_or(AbsVal::Top);
        match instr.op {
            Op::Nop | Op::Enter | Op::Jmp | Op::Ret | Op::Halt => {}
            Op::Push => {
                let counterpart = pair
                    .other_stream
                    .get(stream_index)
                    .map_or(instr.operand, |b| b.operand);
                state.stack.push(AbsVal::Const {
                    value: instr.operand,
                    counterpart,
                    pc,
                });
            }
            Op::LoadG => {
                let loaded = if pair.uid_globals.contains_key(&instr.operand) {
                    AbsVal::UidClass(pair.base.spec.uid)
                } else {
                    AbsVal::Top
                };
                state.stack.push(loaded);
            }
            Op::StoreG => {
                let value = pop(&mut state);
                if let Some(name) = pair.uid_globals.get(&instr.operand) {
                    if let (Some((residual, def_pc)), Some(findings)) =
                        (pair.residual(value), findings.as_deref_mut())
                    {
                        findings.push(Finding {
                            property: Property::Residual,
                            pc: Some(def_pc),
                            function: cfg.name.clone(),
                            block: Some(block_index),
                            index: Some(index),
                            instr: Some(instr),
                            detail: format!(
                                "UID-class constant {residual:#x} (defined at pc {def_pc:#010x}) \
                                 is stored to UID global '{name}' untransformed in both variants \
                                 (uid relation {}); lattice: {value}",
                                pair.relation.describe()
                            ),
                        });
                    }
                }
            }
            Op::LoadL => {
                let loaded = state
                    .locals
                    .get(&instr.operand)
                    .copied()
                    .unwrap_or(AbsVal::Top);
                state.stack.push(loaded);
            }
            Op::StoreL => {
                let value = pop(&mut state);
                state.locals.insert(instr.operand, value);
            }
            Op::LoadW | Op::LoadB => {
                let addr = pop(&mut state);
                // Indirect loads widen (soundness caveat); taint sticks.
                state.stack.push(if addr.is_tainted() {
                    AbsVal::Tainted
                } else {
                    AbsVal::Top
                });
            }
            Op::StoreW | Op::StoreB => {
                let _addr = pop(&mut state);
                let _value = pop(&mut state);
                // Indirect stores widen: not checked (documented caveat).
            }
            Op::LeaG => state.stack.push(AbsVal::AddrClass(Region::Globals)),
            Op::LeaL => state.stack.push(AbsVal::AddrClass(Region::Stack)),
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Mod
            | Op::BitAnd
            | Op::BitOr
            | Op::BitXor
            | Op::Shl
            | Op::Shr
            | Op::Eq
            | Op::Ne
            | Op::Lt
            | Op::Le
            | Op::Gt
            | Op::Ge => {
                let rhs = pop(&mut state);
                let lhs = pop(&mut state);
                state.stack.push(if lhs.is_tainted() || rhs.is_tainted() {
                    AbsVal::Tainted
                } else {
                    AbsVal::Top
                });
            }
            Op::Neg | Op::Not | Op::BitNot => {
                let value = pop(&mut state);
                state.stack.push(if value.is_tainted() {
                    AbsVal::Tainted
                } else {
                    AbsVal::Top
                });
            }
            Op::Jz | Op::Jnz => {
                let _cond = pop(&mut state);
            }
            Op::Call => {
                let callee = pair.offsets_to_names.get(&instr.operand).cloned();
                let sig = callee.as_deref().and_then(|name| pair.function_sig(name));
                if let (Some(callee), Some(sig)) = (callee.as_deref(), sig) {
                    let argc = sig.params.len();
                    let mut args = Vec::with_capacity(argc);
                    for _ in 0..argc {
                        args.push(pop(&mut state));
                    }
                    args.reverse();
                    if let Some(findings) = findings.as_deref_mut() {
                        for (position, (arg, ty)) in args.iter().zip(&sig.params).enumerate() {
                            if !ty.is_uid_class() {
                                continue;
                            }
                            if let Some((residual, def_pc)) = pair.residual(*arg) {
                                findings.push(Finding {
                                    property: Property::Residual,
                                    pc: Some(def_pc),
                                    function: cfg.name.clone(),
                                    block: Some(block_index),
                                    index: Some(index),
                                    instr: Some(instr),
                                    detail: format!(
                                        "UID-class constant {residual:#x} (defined at pc \
                                             {def_pc:#010x}) reaches uid_t parameter {position} \
                                             of {callee} untransformed in both variants \
                                             (uid relation {}); lattice: {arg}",
                                        pair.relation.describe()
                                    ),
                                });
                            }
                        }
                    }
                    state.stack.push(if sig.ret.is_uid_class() {
                        AbsVal::UidClass(pair.base.spec.uid)
                    } else {
                        AbsVal::Top
                    });
                } else {
                    // Unknown call target: no reliable arity. Degrade
                    // the whole frame rather than misalign the stack.
                    for slot in &mut state.stack {
                        *slot = AbsVal::Top;
                    }
                    state.locals.clear();
                }
            }
            Op::CallPtr => {
                // Never compiler-emitted; an indirect call could do
                // anything, so widen everything reachable.
                let _target = pop(&mut state);
                for slot in &mut state.stack {
                    *slot = AbsVal::Top;
                }
                state.locals.clear();
                state.stack.push(AbsVal::Top);
            }
            Op::Syscall => {
                syscall_transfer(
                    pair,
                    cfg,
                    block_index,
                    index,
                    instr,
                    pc,
                    &mut state,
                    &mut findings,
                );
            }
            Op::Dup => {
                let top = pop(&mut state);
                state.stack.push(top);
                state.stack.push(top);
            }
            Op::Pop => {
                let _ = pop(&mut state);
            }
            Op::Swap => {
                let a = pop(&mut state);
                let b = pop(&mut state);
                state.stack.push(a);
                state.stack.push(b);
            }
            // `Op` is non-exhaustive, but decode only produces the variants
            // above — an unknown opcode byte already failed phase 1.
            _ => {}
        }
    }
    state
}

/// Pops a syscall's arguments, checks P-Residual and P-Boundary on the
/// UID-class positions, and pushes the abstract result.
#[allow(clippy::too_many_arguments)]
fn syscall_transfer(
    pair: &PairContext<'_>,
    cfg: &FunctionCfg,
    block_index: usize,
    index: usize,
    instr: Instr,
    pc: u32,
    state: &mut State,
    findings: &mut Option<&mut Vec<Finding>>,
) {
    let sysno = Sysno::from_u32(instr.operand >> 8);
    let argc = (instr.operand & 0xFF) as usize;
    let mut args = Vec::with_capacity(argc);
    for _ in 0..argc {
        args.push(state.stack.pop().unwrap_or(AbsVal::Top));
    }
    args.reverse();

    if let (Some(sysno), Some(findings)) = (sysno, findings.as_deref_mut()) {
        for &position in sysno.uid_arg_positions() {
            let Some(&arg) = args.get(position) else {
                continue;
            };
            if let Some((residual, def_pc)) = pair.residual(arg) {
                findings.push(Finding {
                    property: Property::Residual,
                    pc: Some(def_pc),
                    function: cfg.name.clone(),
                    block: Some(block_index),
                    index: Some(index),
                    instr: Some(instr),
                    detail: format!(
                        "UID-class constant {residual:#x} (defined at pc {def_pc:#010x}) \
                         reaches {} argument {position} untransformed in both variants \
                         (uid relation {}); lattice: {arg}",
                        sysno.name(),
                        pair.relation.describe()
                    ),
                });
            }
        }
        let mut domains: Vec<(&'static str, usize)> = Vec::new();
        for &position in sysno.uid_arg_positions() {
            let Some(&arg) = args.get(position) else {
                continue;
            };
            if let Some(domain) = pair.domain(arg) {
                if !domains.iter().any(|(d, _)| *d == domain) {
                    domains.push((domain, position));
                }
            }
        }
        if domains.len() > 1 {
            let described: Vec<String> = sysno
                .uid_arg_positions()
                .iter()
                .filter_map(|&position| {
                    let arg = args.get(position)?;
                    let domain = pair.domain(*arg)?;
                    Some(format!("arg {position} {domain} ({arg})"))
                })
                .collect();
            findings.push(Finding {
                property: Property::Boundary,
                pc: Some(pc),
                function: cfg.name.clone(),
                block: Some(block_index),
                index: Some(index),
                instr: Some(instr),
                detail: format!(
                    "{} mixes reexpression domains across its UID-class arguments: {}",
                    sysno.name(),
                    described.join(", ")
                ),
            });
        }
    }

    let result = match sysno {
        Some(sysno) if sysno.returns_uid() => AbsVal::UidClass(pair.base.spec.uid),
        Some(sysno) if sysno.is_input() => AbsVal::Tainted,
        _ => AbsVal::Top,
    };
    state.stack.push(result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_diversity::{AddressTransform, VariantSpec};
    use nvariant_transform::{TransformOptions, UidTransformer};
    use nvariant_vm::{compile_program, parse_program, CompiledProgram, MemoryLayout};

    const SRC: &str = r"
        var server_uid: uid_t = 48;
        var hits: int = 0;

        fn main() -> int {
            var root: uid_t;
            root = getuid();
            if (server_uid == 0) { return 2; }
            if (server_uid == root) { hits = hits + 1; }
            setuid(server_uid);
            return 0;
        }
    ";

    fn compile_pair(options: TransformOptions) -> (CompiledProgram, CompiledProgram, UidContext) {
        let program = parse_program(SRC).unwrap();
        let transformer = UidTransformer::new(options);
        let variants = transformer
            .transform_for_variants(
                &program,
                &[UidTransform::Identity, UidTransform::paper_mask()],
            )
            .unwrap();
        let ctx = UidContext::analyze(&variants[0].program).unwrap();
        let a = compile_program(&variants[0].program).unwrap();
        let b = compile_program(&variants[1].program).unwrap();
        (a, b, ctx)
    }

    fn base_spec() -> VariantSpec {
        VariantSpec::identity()
    }

    fn other_spec() -> VariantSpec {
        VariantSpec::identity()
            .with_uid(UidTransform::paper_mask())
            .with_tag(1)
    }

    #[test]
    fn correctly_transformed_pair_is_clean() {
        let (a, b, ctx) = compile_pair(TransformOptions::default());
        let base = VariantArtifact::new(&a, MemoryLayout::default(), base_spec());
        let other = VariantArtifact::new(&b, MemoryLayout::default(), other_spec());
        let report = analyze_pair(&base, &other, &ctx);
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.functions >= 2, "main + <start>");
        assert!(report.instructions > 10);
    }

    #[test]
    fn pair_with_itself_under_identity_relation_is_clean() {
        let (a, _, ctx) = compile_pair(TransformOptions::default());
        let base = VariantArtifact::new(&a, MemoryLayout::default(), base_spec());
        let report = analyze_pair(&base, &base.clone(), &ctx);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.relation, UidTransform::Identity);
    }

    #[test]
    fn partitioned_layouts_satisfy_the_declared_address_relation() {
        let (a, b, ctx) = compile_pair(TransformOptions::default());
        let base = VariantArtifact::new(&a, MemoryLayout::default(), base_spec());
        let other = VariantArtifact::new(
            &b,
            MemoryLayout::default().with_partition_bit(),
            other_spec().with_addr(AddressTransform::PartitionHigh),
        );
        let report = analyze_pair(&base, &other, &ctx);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn undeclared_layout_shift_is_a_lockstep_finding() {
        let (a, b, ctx) = compile_pair(TransformOptions::default());
        let base = VariantArtifact::new(&a, MemoryLayout::default(), base_spec());
        // The spec claims a partitioned address space but the layout is
        // the canonical one.
        let other = VariantArtifact::new(
            &b,
            MemoryLayout::default(),
            other_spec().with_addr(AddressTransform::PartitionHigh),
        );
        let report = analyze_pair(&base, &other, &ctx);
        assert!(!report.is_clean());
        assert!(report
            .findings
            .iter()
            .all(|f| f.property == Property::Lockstep));
        assert!(report.findings[0].detail.contains("layout code_base"));
    }

    #[test]
    fn mis_stamped_tag_is_a_lockstep_finding() {
        let (a, b, ctx) = compile_pair(TransformOptions::default());
        let base = VariantArtifact::new(&a, MemoryLayout::default(), base_spec());
        // The image is stamped with tag 1 but the spec claims tag 2.
        let mut other = VariantArtifact::new(&b, MemoryLayout::default(), other_spec());
        other.spec = other.spec.with_tag(2);
        let report = analyze_pair(&base, &other, &ctx);
        assert!(!report.is_clean());
        let first = &report.findings[0];
        assert_eq!(first.property, Property::Lockstep);
        assert_eq!(first.pc, Some(0), "first divergence is the first slot");
        assert!(first.detail.contains("tag byte"));
    }

    #[test]
    fn operand_drift_outside_the_relation_is_a_lockstep_finding() {
        let program = parse_program(SRC).unwrap();
        let transformer = UidTransformer::default();
        let variants = transformer
            .transform_for_variants(
                &program,
                // The second variant was built with the *full* mask...
                &[UidTransform::Identity, UidTransform::full_mask()],
            )
            .unwrap();
        let ctx = UidContext::analyze(&variants[0].program).unwrap();
        let a = compile_program(&variants[0].program).unwrap();
        let b = compile_program(&variants[1].program).unwrap();
        let base = VariantArtifact::new(&a, MemoryLayout::default(), base_spec());
        // ...but its spec claims the paper mask.
        let other = VariantArtifact::new(&b, MemoryLayout::default(), other_spec());
        let report = analyze_pair(&base, &other, &ctx);
        assert!(!report.is_clean());
        let first = &report.findings[0];
        assert_eq!(first.property, Property::Lockstep);
        assert!(
            first.detail.contains("outside the declared relation"),
            "{}",
            first.detail
        );
        assert!(first.block.is_some() && first.index.is_some());
    }

    #[test]
    fn weakened_transform_surfaces_residual_and_boundary_findings() {
        let (a, b, ctx) = compile_pair(TransformOptions {
            skip_reexpression_globals: vec!["server_uid".to_string()],
            ..TransformOptions::default()
        });
        let base = VariantArtifact::new(&a, MemoryLayout::default(), base_spec());
        let other = VariantArtifact::new(&b, MemoryLayout::default(), other_spec());
        let report = analyze_pair(&base, &other, &ctx);
        assert!(!report.is_clean());
        // The untransformed `server_uid == 0` comparison leaves a canonical
        // 0 reaching the cc_eq reexpression boundary: a P-Residual anchored
        // to the defining Push, plus a P-Boundary at the syscall.
        let residual = report
            .findings
            .iter()
            .find(|f| f.property == Property::Residual && f.pc.is_some())
            .unwrap_or_else(|| panic!("no code-level residual:\n{}", report.render()));
        assert!(residual.detail.contains("cc_eq"), "{}", residual.detail);
        assert_eq!(residual.function, "main");
        assert!(report
            .findings
            .iter()
            .any(|f| f.property == Property::Boundary));
        // The skipped global's initializer (48 in both images) is the
        // data-segment residual.
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.property == Property::Residual
                    && f.pc.is_none()
                    && f.detail.contains("server_uid")),
            "{}",
            report.render()
        );
    }

    #[test]
    fn undecodable_slot_reports_like_the_interpreter() {
        let (a, _, ctx) = compile_pair(TransformOptions::default());
        let base = VariantArtifact::new(&a, MemoryLayout::default(), base_spec());
        let mut corrupt = base.clone();
        let mut bytes = corrupt.image.to_vec();
        bytes[1] = 0xFF; // opcode byte of slot 0
        corrupt.image = bytes.into();
        let report = analyze_pair(&corrupt, &base, &ctx);
        assert!(!report.is_clean());
        let first = &report.findings[0];
        assert_eq!(first.property, Property::Lockstep);
        assert_eq!(first.pc, Some(0));
        assert!(
            first
                .detail
                .contains("illegal instruction at 0x00000000: raw bytes"),
            "{}",
            first.detail
        );
    }
}
