//! The abstract value lattice of the diversity verifier.
//!
//! The lattice is deliberately small — the properties we check are about
//! *where UID-class data flows*, not about arithmetic precision:
//!
//! ```text
//!                Top
//!       /     |      |      \
//!   Const  UidClass AddrClass ...
//!       \     |      |      /
//!             Tainted
//! ```
//!
//! `Tainted` absorbs on join (attacker influence is sticky); any other
//! disagreement widens to `Top`. `Const` carries the *counterpart* operand —
//! the word the other variant of the pair holds at the same pc — which is
//! what turns a plain constant-propagation domain into a diversity checker:
//! a constant that is **equal across variants** under a non-identity UID
//! relation cannot have been reexpressed.

use nvariant_diversity::UidTransform;
use std::fmt;

/// The memory region an address points into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// The globals + rodata segment (`LeaG`).
    Globals,
    /// The current frame (`LeaL`).
    Stack,
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Globals => write!(f, "globals"),
            Region::Stack => write!(f, "stack"),
        }
    }
}

/// An abstract value tracked per stack slot, local slot, and global.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbsVal {
    /// Unknown.
    Top,
    /// A compile-time constant: the word this variant pushes, the word the
    /// pair's other variant pushes at the same pc, and the defining pc.
    Const {
        /// The operand in the analyzed variant.
        value: u32,
        /// The operand the other variant of the pair holds at the same pc.
        counterpart: u32,
        /// The code offset of the defining `Push`.
        pc: u32,
    },
    /// A runtime UID-class value expressed under the given reexpression
    /// (syscall results, UID-typed globals and parameters).
    UidClass(UidTransform),
    /// An address into the given region.
    AddrClass(Region),
    /// Attacker-influenced input (results of `read`/`recv`).
    Tainted,
}

impl AbsVal {
    /// Least upper bound. `Tainted` absorbs; differing values widen to
    /// `Top`; equal constants reached along different paths keep the
    /// earliest defining pc so diagnostics are deterministic.
    #[must_use]
    pub fn join(self, other: AbsVal) -> AbsVal {
        if self == other {
            return self;
        }
        match (self, other) {
            (AbsVal::Tainted, _) | (_, AbsVal::Tainted) => AbsVal::Tainted,
            (
                AbsVal::Const {
                    value: v1,
                    counterpart: c1,
                    pc: p1,
                },
                AbsVal::Const {
                    value: v2,
                    counterpart: c2,
                    pc: p2,
                },
            ) if v1 == v2 && c1 == c2 => AbsVal::Const {
                value: v1,
                counterpart: c1,
                pc: p1.min(p2),
            },
            _ => AbsVal::Top,
        }
    }

    /// `true` for values that carry taint.
    #[must_use]
    pub fn is_tainted(self) -> bool {
        matches!(self, AbsVal::Tainted)
    }
}

impl fmt::Display for AbsVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsVal::Top => write!(f, "Top"),
            AbsVal::Const {
                value,
                counterpart,
                pc,
            } => write!(
                f,
                "Const({value:#x}, counterpart {counterpart:#x}, def pc {pc:#010x})"
            ),
            AbsVal::UidClass(t) => write!(f, "UidClass({})", t.describe()),
            AbsVal::AddrClass(region) => write!(f, "AddrClass({region})"),
            AbsVal::Tainted => write!(f, "Tainted"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C1: AbsVal = AbsVal::Const {
        value: 1,
        counterpart: 1,
        pc: 12,
    };

    #[test]
    fn join_is_commutative_and_idempotent() {
        let vals = [
            AbsVal::Top,
            C1,
            AbsVal::UidClass(UidTransform::Identity),
            AbsVal::AddrClass(Region::Stack),
            AbsVal::Tainted,
        ];
        for a in vals {
            assert_eq!(a.join(a), a);
            for b in vals {
                assert_eq!(a.join(b), b.join(a));
            }
        }
    }

    #[test]
    fn taint_absorbs_and_disagreement_widens() {
        assert_eq!(C1.join(AbsVal::Tainted), AbsVal::Tainted);
        assert_eq!(AbsVal::Top.join(AbsVal::Tainted), AbsVal::Tainted);
        assert_eq!(C1.join(AbsVal::Top), AbsVal::Top);
        let c2 = AbsVal::Const {
            value: 2,
            counterpart: 2,
            pc: 12,
        };
        assert_eq!(C1.join(c2), AbsVal::Top);
    }

    #[test]
    fn equal_constants_keep_earliest_pc() {
        let later = AbsVal::Const {
            value: 1,
            counterpart: 1,
            pc: 48,
        };
        assert_eq!(C1.join(later), C1);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(
            C1.to_string(),
            "Const(0x1, counterpart 0x1, def pc 0x0000000c)"
        );
        assert_eq!(
            AbsVal::AddrClass(Region::Globals).to_string(),
            "AddrClass(globals)"
        );
    }
}
