//! Control-flow graph reconstruction from a decoded instruction stream.
//!
//! Leaders are the classic ones: the start of each function, every
//! jump/branch target, and the instruction after every terminator
//! (`Jmp`/`Jz`/`Jnz`/`Ret`/`Halt`). Jump operands in this machine are
//! code-segment byte offsets (always multiples of `INSTR_SIZE`), so block
//! boundaries are exact — there is no disassembly ambiguity to resolve.

use nvariant_vm::{Instr, Op, INSTR_SIZE};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// One basic block: a maximal straight-line run of instructions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// Code-segment byte offset of the first instruction.
    pub start: u32,
    /// Byte offset one past the last instruction.
    pub end: u32,
    /// Successor block start offsets, in (target, fallthrough) order.
    pub succs: Vec<u32>,
}

impl BasicBlock {
    /// The indices into the decoded stream covered by this block.
    #[must_use]
    pub fn instr_range(&self) -> std::ops::Range<usize> {
        (self.start / INSTR_SIZE) as usize..(self.end / INSTR_SIZE) as usize
    }
}

/// The CFG of one function (or of the entry stub).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionCfg {
    /// The function name, or `"<start>"` for the entry stub.
    pub name: String,
    /// The half-open byte range `[start, end)` the function covers.
    pub range: (u32, u32),
    /// Basic blocks, sorted by start offset; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
}

impl FunctionCfg {
    /// Index of the block containing byte offset `pc`, if any.
    #[must_use]
    pub fn block_of(&self, pc: u32) -> Option<usize> {
        self.blocks.iter().position(|b| b.start <= pc && pc < b.end)
    }
}

fn is_terminator(op: Op) -> bool {
    matches!(op, Op::Jmp | Op::Jz | Op::Jnz | Op::Ret | Op::Halt)
}

fn is_jump(op: Op) -> bool {
    matches!(op, Op::Jmp | Op::Jz | Op::Jnz)
}

/// Reconstructs one CFG per function from the decoded stream.
///
/// `functions` maps names to code offsets (as `CompiledProgram::functions`
/// does); the region before the first function is the compiler's start stub
/// and gets its own CFG named `"<start>"`.
#[must_use]
pub fn build_cfgs(stream: &[Instr], functions: &BTreeMap<String, u32>) -> Vec<FunctionCfg> {
    let code_len = (stream.len() as u32) * INSTR_SIZE;
    let mut boundaries: Vec<(u32, String)> = functions
        .iter()
        .map(|(name, &off)| (off, name.clone()))
        .collect();
    boundaries.sort();
    let first = boundaries.first().map_or(code_len, |(off, _)| *off);
    if first > 0 {
        boundaries.insert(0, (0, "<start>".to_string()));
    }

    let mut cfgs = Vec::with_capacity(boundaries.len());
    for (i, (start, name)) in boundaries.iter().enumerate() {
        let end = boundaries
            .get(i + 1)
            .map_or(code_len, |(next, _)| (*next).min(code_len));
        if *start >= end {
            continue;
        }
        cfgs.push(build_function_cfg(stream, name, *start, end));
    }
    cfgs
}

fn build_function_cfg(stream: &[Instr], name: &str, start: u32, end: u32) -> FunctionCfg {
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    leaders.insert(start);
    let mut pc = start;
    while pc < end {
        let instr = stream[(pc / INSTR_SIZE) as usize];
        if is_jump(instr.op) && instr.operand >= start && instr.operand < end {
            leaders.insert(instr.operand);
        }
        if is_terminator(instr.op) && pc + INSTR_SIZE < end {
            leaders.insert(pc + INSTR_SIZE);
        }
        pc += INSTR_SIZE;
    }

    let starts: Vec<u32> = leaders.into_iter().collect();
    let mut blocks = Vec::with_capacity(starts.len());
    for (i, &block_start) in starts.iter().enumerate() {
        let block_end = starts.get(i + 1).copied().unwrap_or(end);
        let last = stream[((block_end - INSTR_SIZE) / INSTR_SIZE) as usize];
        let mut succs = Vec::new();
        match last.op {
            Op::Jmp => {
                if last.operand >= start && last.operand < end {
                    succs.push(last.operand);
                }
            }
            Op::Jz | Op::Jnz => {
                if last.operand >= start && last.operand < end {
                    succs.push(last.operand);
                }
                if block_end < end {
                    succs.push(block_end);
                }
            }
            Op::Ret | Op::Halt => {}
            _ => {
                if block_end < end {
                    succs.push(block_end);
                }
            }
        }
        blocks.push(BasicBlock {
            start: block_start,
            end: block_end,
            succs,
        });
    }

    FunctionCfg {
        name: name.to_string(),
        range: (start, end),
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_vm::{compile_program, decode_slot_at, parse_program};

    fn cfgs_of(src: &str) -> Vec<FunctionCfg> {
        let compiled = compile_program(&parse_program(src).unwrap()).unwrap();
        let code = compiled.code();
        let stream: Vec<Instr> = (0..code.len() as u32 / INSTR_SIZE)
            .map(|i| decode_slot_at(code, i * INSTR_SIZE).unwrap())
            .collect();
        build_cfgs(&stream, &compiled.functions)
    }

    #[test]
    fn straight_line_function_is_one_block() {
        let cfgs = cfgs_of("fn main() -> int { return 7; }");
        let main = cfgs.iter().find(|c| c.name == "main").unwrap();
        // The explicit `return` plus the compiler's fallback `Push 0; Ret`
        // epilogue — both straight-line, both ending the function.
        assert_eq!(main.blocks.len(), 2, "blocks: {:?}", main.blocks);
        assert!(
            main.blocks.iter().all(|b| b.succs.is_empty()),
            "Ret has no successors"
        );
        // The start stub exists and covers offset 0.
        let stub = cfgs.iter().find(|c| c.name == "<start>").unwrap();
        assert_eq!(stub.range.0, 0);
    }

    #[test]
    fn branches_split_blocks_and_wire_both_edges() {
        let cfgs = cfgs_of(
            r"
            fn main() -> int {
                var x: int = 1;
                if (x) { x = 2; } else { x = 3; }
                while (x) { x = x - 1; }
                return x;
            }
            ",
        );
        let main = cfgs.iter().find(|c| c.name == "main").unwrap();
        assert!(main.blocks.len() >= 5, "blocks: {:?}", main.blocks);
        // Every conditional-jump block has two successors; every successor
        // offset is a block start.
        let starts: BTreeSet<u32> = main.blocks.iter().map(|b| b.start).collect();
        for block in &main.blocks {
            for succ in &block.succs {
                assert!(starts.contains(succ), "dangling edge to {succ:#x}");
            }
        }
        assert!(main.blocks.iter().any(|b| b.succs.len() == 2));
        // block_of resolves interior pcs.
        let b1 = &main.blocks[1];
        assert_eq!(main.block_of(b1.start), Some(1));
    }
}
