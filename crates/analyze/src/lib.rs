//! Static diversity verifier over compiled variant pairs.
//!
//! The paper's security argument (§3) rests on variants differing *only and
//! everywhere* in the diversified data: one UID constant the transform
//! missed is a blind spot where an attack corrupts every variant identically
//! and no divergence fires. The AST-level inference
//! (`nvariant_transform::UidContext`) finds the UID data class, but nothing
//! downstream of it is checked — the transform passes, the compiler and the
//! predecoder are trusted blindly. This crate closes that gap by verifying
//! the **compiled artifacts**:
//!
//! 1. a control-flow graph is reconstructed from each variant's decoded
//!    instruction stream ([`cfg`]),
//! 2. a worklist abstract interpretation runs over stack slots, locals and
//!    globals with the small value lattice of [`lattice::AbsVal`]
//!    (`Top / Const / UidClass / AddrClass / Tainted`), seeded from the
//!    [`UidContext`] and the pair's [`VariantSpec`]s, and
//! 3. three properties are checked with precise diagnostics
//!    ([`report::Finding`] carries the pc, the decoded instruction, the
//!    enclosing function and the lattice state):
//!
//! * **P-Lockstep** — the variants' CFGs are isomorphic and corresponding
//!   instructions are identical *modulo the declared relation* (tag byte,
//!   UID xor mask, address partition displacement); the first diverging
//!   (block, index) pair is reported.
//! * **P-Residual** — no UID-class constant reaches memory or a
//!   `setuid`-like syscall argument untransformed in a variant whose spec
//!   says it must be reexpressed.
//! * **P-Boundary** — every syscall's UID-class arguments sit consistently
//!   in exactly one reexpression domain: the static mirror of the monitor's
//!   runtime boundary check.
//!
//! Undecodable instruction slots are reported through
//! [`nvariant_vm::DecodeFailure`], the same helper the interpreter's fetch
//! fallback uses, so a bad opcode byte renders identically at verify time
//! and at run time.

pub mod absint;
pub mod cfg;
pub mod lattice;
pub mod report;

pub use absint::analyze_pair;
pub use cfg::{build_cfgs, BasicBlock, FunctionCfg};
pub use lattice::{AbsVal, Region};
pub use report::{combined_verdict, verdict_is_clean, AnalysisReport, Finding, Property};

use nvariant_diversity::{UidTransform, VariantSpec};
use nvariant_vm::{CompiledProgram, MemoryLayout};

/// A compiled variant as the verifier sees it: the program, the retagged
/// code image the variant actually maps, the memory layout it was linked
/// against, and the diversity spec it claims to implement. (The core
/// crate's `CompiledVariant` is crate-private; this is the analysis-facing
/// view of the same data.)
#[derive(Clone, Debug)]
pub struct VariantArtifact<'a> {
    /// The compiled program (globals image, symbol maps, type info).
    pub program: &'a CompiledProgram,
    /// The code image restamped with the variant's tag — the bytes a
    /// process of this variant executes, which is what gets verified.
    pub image: std::sync::Arc<[u8]>,
    /// The memory layout the variant runs under.
    pub layout: MemoryLayout,
    /// The diversity spec this variant claims to implement.
    pub spec: VariantSpec,
}

impl<'a> VariantArtifact<'a> {
    /// Builds the verifier's view of one variant, restamping the code image
    /// with the spec's tag exactly as process instantiation does.
    #[must_use]
    pub fn new(program: &'a CompiledProgram, layout: MemoryLayout, spec: VariantSpec) -> Self {
        VariantArtifact {
            image: program.retagged_image(spec.tag),
            program,
            layout,
            spec,
        }
    }
}

/// The pairwise UID relation between two variants: the single xor mask that
/// maps one variant's reexpressed constants onto the other's. Composes
/// generally because every supported reexpression is xor-based.
#[must_use]
pub fn pair_relation(base: UidTransform, other: UidTransform) -> UidTransform {
    let mask = |t: UidTransform| match t {
        UidTransform::Identity => 0,
        UidTransform::Xor(mask) => mask,
    };
    let combined = mask(base) ^ mask(other);
    if combined == 0 {
        UidTransform::Identity
    } else {
        UidTransform::Xor(combined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_relation_composes_masks() {
        assert_eq!(
            pair_relation(UidTransform::Identity, UidTransform::Identity),
            UidTransform::Identity
        );
        assert_eq!(
            pair_relation(UidTransform::Identity, UidTransform::paper_mask()),
            UidTransform::paper_mask()
        );
        assert_eq!(
            pair_relation(UidTransform::paper_mask(), UidTransform::paper_mask()),
            UidTransform::Identity
        );
        assert_eq!(
            pair_relation(UidTransform::Xor(0xFF), UidTransform::Xor(0x0F)),
            UidTransform::Xor(0xF0)
        );
    }
}
