//! Findings and the rendered analysis report.
//!
//! Rendering is **stable**: the golden-fixture tests and the CI greps pin
//! the exact text, so diagnostics deliberately avoid anything
//! non-deterministic (hash order, wall clock, paths).

use nvariant_diversity::{UidTransform, VariantSpec};
use nvariant_vm::Instr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The property a finding violates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Property {
    /// Structural drift between the variants (CFG shape, tags, opcodes,
    /// operands outside the declared relation, undecodable slots).
    Lockstep,
    /// A UID-class constant reached memory or a UID syscall argument
    /// untransformed.
    Residual,
    /// A syscall's UID-class arguments mix reexpression domains.
    Boundary,
}

impl Property {
    /// The stable diagnostic name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Property::Lockstep => "P-Lockstep",
            Property::Residual => "P-Residual",
            Property::Boundary => "P-Boundary",
        }
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One verified defect, anchored to an exact instruction where possible.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// The violated property.
    pub property: Property,
    /// Code-segment byte offset of the offending instruction, if the
    /// finding anchors to one (image-level findings carry `None`).
    pub pc: Option<u32>,
    /// The enclosing function (`"<start>"` for the stub, `"<image>"` for
    /// data-segment findings).
    pub function: String,
    /// Basic-block index within the function's CFG.
    pub block: Option<usize>,
    /// Instruction index within the block.
    pub index: Option<usize>,
    /// The decoded instruction at `pc`, when it decodes.
    pub instr: Option<Instr>,
    /// What went wrong, including the lattice state that proves it.
    pub detail: String,
}

impl Finding {
    /// Renders the finding as one stable line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(self.property.name());
        if let Some(pc) = self.pc {
            out.push_str(&format!(" at pc {pc:#010x}"));
        }
        out.push_str(&format!(" in {}", self.function));
        if let (Some(block), Some(index)) = (self.block, self.index) {
            out.push_str(&format!(" (block {block}, instr {index})"));
        }
        out.push_str(": ");
        if let Some(instr) = self.instr {
            out.push_str(&format!("{instr} — "));
        }
        out.push_str(&self.detail);
        out
    }
}

/// The result of verifying one variant pair.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// The spec of the pair's base variant (the one whose stream was
    /// abstractly interpreted).
    pub base: VariantSpec,
    /// The spec of the other variant.
    pub other: VariantSpec,
    /// The pairwise UID relation the images were checked against.
    pub relation: UidTransform,
    /// Functions scanned.
    pub functions: usize,
    /// Basic blocks reconstructed.
    pub blocks: usize,
    /// Instructions decoded and walked.
    pub instructions: usize,
    /// Everything that violated a property, in discovery order.
    pub findings: Vec<Finding>,
}

impl AnalysisReport {
    /// `true` if every property held.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The full, stable, multi-line rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pair: base [tag {}] {} / {}; other [tag {}] {} / {}; uid relation {}\n",
            self.base.tag,
            self.base.uid.describe(),
            self.base.addr.describe(),
            self.other.tag,
            self.other.uid.describe(),
            self.other.addr.describe(),
            self.relation.describe(),
        ));
        out.push_str(&format!(
            "scanned: {} functions, {} blocks, {} instructions\n",
            self.functions, self.blocks, self.instructions
        ));
        if self.is_clean() {
            out.push_str("verdict: clean (P-Residual, P-Lockstep, P-Boundary hold)\n");
        } else {
            out.push_str(&format!("verdict: {} finding(s)\n", self.findings.len()));
            for (i, finding) in self.findings.iter().enumerate() {
                out.push_str(&format!("  {}. {}\n", i + 1, finding.render()));
            }
        }
        out
    }
}

/// Collapses the reports of every pair of a deployment into the single
/// verdict line the artifact store persists. Clean verdicts start with
/// `"clean"`; anything else names the first finding.
#[must_use]
pub fn combined_verdict(reports: &[AnalysisReport]) -> String {
    let pairs = reports.len();
    let instructions: usize = reports.iter().map(|r| r.instructions).sum();
    let total: usize = reports.iter().map(|r| r.findings.len()).sum();
    if total == 0 {
        format!("clean: {pairs} pair(s), {instructions} instructions verified")
    } else {
        let first = reports
            .iter()
            .flat_map(|r| r.findings.iter())
            .next()
            .expect("total > 0 implies a finding");
        format!(
            "findings: {total} across {pairs} pair(s); first: {}",
            first.render()
        )
    }
}

/// `true` if a stored verdict line reports a clean analysis.
#[must_use]
pub fn verdict_is_clean(line: &str) -> bool {
    line.starts_with("clean")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_vm::Op;

    fn report(findings: Vec<Finding>) -> AnalysisReport {
        AnalysisReport {
            base: VariantSpec::identity(),
            other: VariantSpec::identity()
                .with_uid(UidTransform::paper_mask())
                .with_tag(1),
            relation: UidTransform::paper_mask(),
            functions: 3,
            blocks: 7,
            instructions: 42,
            findings,
        }
    }

    fn finding() -> Finding {
        Finding {
            property: Property::Residual,
            pc: Some(0x2A),
            function: "main".to_string(),
            block: Some(2),
            index: Some(1),
            instr: Some(Instr::new(Op::Push, 0).with_tag(1)),
            detail: "UID-class constant 0x0 reaches setuid argument 0 untransformed".to_string(),
        }
    }

    #[test]
    fn finding_render_names_pc_function_block_and_instr() {
        let text = finding().render();
        assert!(text.starts_with("P-Residual at pc 0x0000002a in main (block 2, instr 1):"));
        assert!(text.contains("[1] Push 0x0"));
        assert!(text.contains("untransformed"));
    }

    #[test]
    fn clean_report_renders_and_verdicts() {
        let clean = report(Vec::new());
        assert!(clean.is_clean());
        assert!(clean.render().contains("verdict: clean"));
        let verdict = combined_verdict(&[clean]);
        assert!(verdict_is_clean(&verdict), "{verdict}");
        assert!(verdict.contains("42 instructions"));
    }

    #[test]
    fn dirty_report_verdict_names_first_finding() {
        let dirty = report(vec![finding()]);
        assert!(!dirty.is_clean());
        assert!(dirty.render().contains("  1. P-Residual at pc"));
        let verdict = combined_verdict(&[dirty]);
        assert!(!verdict_is_clean(&verdict));
        assert!(verdict.contains("findings: 1 across 1 pair(s)"));
        assert!(verdict.contains("pc 0x0000002a"));
        assert!(!verdict.contains('\n'), "verdict must be one line");
    }
}
