//! Mechanized checks of the inverse and disjointedness properties.
//!
//! These checks back the high-assurance argument of the paper: for a given
//! variation we verify, over a structured sample of the value domain, that
//! every variant's reexpression satisfies `R⁻¹(R(x)) ≡ x` (normal
//! equivalence, §2.2) and that every *pair* of variants has disjoint inverse
//! functions (detection, §2.3).

use crate::spec::VariantSpec;
use crate::variation::Variation;
use nvariant_types::{Uid, VirtAddr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One property check and its outcome.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropertyCheck {
    /// What was checked (human-readable).
    pub description: String,
    /// Whether the property held for every sampled value.
    pub holds: bool,
    /// A witness value for which the property failed, if any.
    pub counterexample: Option<u32>,
}

/// The result of verifying a variation's properties.
///
/// # Example
///
/// ```
/// use nvariant_diversity::{verify_variation, Variation};
///
/// let report = verify_variation(&Variation::uid_diversity(), 2);
/// assert!(report.all_hold());
/// assert!(report.checks.len() >= 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropertyReport {
    /// The individual checks performed.
    pub checks: Vec<PropertyCheck>,
}

impl PropertyReport {
    /// Returns `true` if every check passed.
    #[must_use]
    pub fn all_hold(&self) -> bool {
        self.checks.iter().all(|c| c.holds)
    }

    /// The checks that failed.
    #[must_use]
    pub fn failures(&self) -> Vec<&PropertyCheck> {
        self.checks.iter().filter(|c| !c.holds).collect()
    }
}

impl fmt::Display for PropertyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for check in &self.checks {
            writeln!(
                f,
                "[{}] {}",
                if check.holds { "ok" } else { "FAIL" },
                check.description
            )?;
        }
        Ok(())
    }
}

/// A structured sample of the 32-bit value domain: boundary values, small
/// values, every single-bit pattern, and a deterministic pseudo-random
/// spread.
#[must_use]
pub fn sample_values() -> Vec<u32> {
    let mut values = vec![0, 1, 2, 3, 47, 48, 99, 1000, 65534, 65535];
    for bit in 0..32 {
        values.push(1u32 << bit);
        values.push(!(1u32 << bit));
    }
    values.extend([0x7FFF_FFFF, 0x8000_0000, 0xFFFF_FFFE, u32::MAX]);
    // Deterministic linear-congruential spread.
    let mut x: u32 = 0x1234_5678;
    for _ in 0..200 {
        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        values.push(x);
    }
    values
}

/// Verifies the inverse property for every variant and the disjointedness
/// property for every pair of variants of `variation`, instantiated with
/// `n` variants.
#[must_use]
pub fn verify_variation(variation: &Variation, n: usize) -> PropertyReport {
    let mut report = PropertyReport::default();
    let specs = match variation.try_variant_specs(n) {
        Ok(specs) => specs,
        Err(message) => {
            report.checks.push(PropertyCheck {
                description: format!("variant specifications are constructible ({message})"),
                holds: false,
                counterexample: None,
            });
            return report;
        }
    };
    let samples = sample_values();

    for (i, spec) in specs.iter().enumerate() {
        report.checks.push(check_inverse(i, spec, &samples));
    }
    for i in 0..specs.len() {
        for j in (i + 1)..specs.len() {
            report.checks.push(check_disjoint(
                variation, i, j, &specs[i], &specs[j], &samples,
            ));
        }
    }
    report
}

fn check_inverse(index: usize, spec: &VariantSpec, samples: &[u32]) -> PropertyCheck {
    let mut counterexample = None;
    for &raw in samples {
        let uid_ok = spec.uid.invert(spec.uid.apply(Uid::new(raw))) == Uid::new(raw);
        let addr_ok = spec.addr.invert(spec.addr.apply(VirtAddr::new(raw))) == VirtAddr::new(raw);
        if !uid_ok || !addr_ok {
            counterexample = Some(raw);
            break;
        }
    }
    PropertyCheck {
        description: format!("inverse property: variant {index} (∀x, R⁻¹(R(x)) = x)"),
        holds: counterexample.is_none(),
        counterexample,
    }
}

fn check_disjoint(
    variation: &Variation,
    i: usize,
    j: usize,
    a: &VariantSpec,
    b: &VariantSpec,
    samples: &[u32],
) -> PropertyCheck {
    let mut counterexample = None;
    for &raw in samples {
        let disjoint = match variation {
            Variation::InstructionTagging => a.tag != b.tag,
            Variation::UidDiversity { .. } => {
                a.uid.invert(Uid::new(raw)) != b.uid.invert(Uid::new(raw))
            }
            Variation::AddressPartitioning | Variation::ExtendedAddressPartitioning { .. } => {
                a.addr.invert(VirtAddr::new(raw)) != b.addr.invert(VirtAddr::new(raw))
            }
            Variation::Composed(_) => {
                // A composed variation detects an attack if *any* composed
                // class diverges; disjointedness therefore holds if it holds
                // for at least one diversified class.
                let uid = !a.uid.is_identity() || !b.uid.is_identity();
                let addr = !a.addr.is_identity() || !b.addr.is_identity();
                let uid_disjoint =
                    uid && a.uid.invert(Uid::new(raw)) != b.uid.invert(Uid::new(raw));
                let addr_disjoint =
                    addr && a.addr.invert(VirtAddr::new(raw)) != b.addr.invert(VirtAddr::new(raw));
                let tag_disjoint = a.tag != b.tag;
                uid_disjoint || addr_disjoint || tag_disjoint
            }
        };
        if !disjoint {
            counterexample = Some(raw);
            break;
        }
    }
    PropertyCheck {
        description: format!("disjointedness: variants {i} and {j} (∀x, R{i}⁻¹(x) ≠ R{j}⁻¹(x))"),
        holds: counterexample.is_none(),
        counterexample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_variations_satisfy_both_properties() {
        for variation in [
            Variation::address_partitioning(),
            Variation::extended_address_partitioning(0x40),
            Variation::instruction_tagging(),
            Variation::uid_diversity(),
            Variation::uid_diversity_full_mask(),
            Variation::composed(vec![
                Variation::uid_diversity(),
                Variation::address_partitioning(),
            ]),
        ] {
            let report = verify_variation(&variation, 2);
            assert!(
                report.all_hold(),
                "{variation}: {}",
                report
                    .failures()
                    .iter()
                    .map(|c| c.description.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }

    #[test]
    fn three_variant_uid_diversity_is_pairwise_disjoint() {
        let report = verify_variation(&Variation::uid_diversity(), 3);
        assert!(report.all_hold());
        // 3 inverse checks + 3 pairwise disjointedness checks.
        assert_eq!(report.checks.len(), 6);
    }

    #[test]
    fn a_degenerate_variation_fails_disjointedness() {
        // A UID "diversity" whose extra variant ends up with the identity
        // mask cannot be constructed (the builder refuses), which the report
        // records as a failed check rather than a panic.
        let degenerate = Variation::UidDiversity { mask: 1 };
        // Variant 2 would get mask 1 ^ 1 = 0 (identity): rejected.
        let report = verify_variation(&degenerate, 3);
        assert!(!report.all_hold());
        assert_eq!(report.failures().len(), 1);
    }

    #[test]
    fn sample_values_cover_boundaries() {
        let samples = sample_values();
        assert!(samples.contains(&0));
        assert!(samples.contains(&0x7FFF_FFFF));
        assert!(samples.contains(&0x8000_0000));
        assert!(samples.contains(&u32::MAX));
        assert!(samples.len() > 250);
    }

    #[test]
    fn report_display_lists_checks() {
        let report = verify_variation(&Variation::uid_diversity(), 2);
        let text = report.to_string();
        assert!(text.contains("inverse property"));
        assert!(text.contains("disjointedness"));
        assert!(text.contains("[ok]"));
    }
}
