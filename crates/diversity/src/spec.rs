//! Per-variant configuration: which reexpression each variant applies to
//! each data class.

use crate::addr::AddressTransform;
use crate::uid::UidTransform;
use nvariant_types::VariantId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Everything the framework needs to know to instantiate and monitor one
/// variant: the UID reexpression, the address-space transform, and the
/// instruction tag.
///
/// Variant 0 conventionally uses the identity for every data class (the
/// original, untransformed program); non-trivial reexpressions are assigned
/// to the other variants.
///
/// # Example
///
/// ```
/// use nvariant_diversity::{UidTransform, VariantSpec};
/// use nvariant_types::Uid;
///
/// let spec = VariantSpec::identity().with_uid(UidTransform::paper_mask());
/// assert_eq!(spec.uid.apply(Uid::ROOT).as_u32(), 0x7FFF_FFFF);
/// assert_eq!(spec.tag, 0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VariantSpec {
    /// Reexpression applied to UID-class data.
    pub uid: UidTransform,
    /// Reexpression applied to addresses (memory layout placement).
    pub addr: AddressTransform,
    /// Instruction tag stamped on the variant's code image and required by
    /// its fetch stage.
    pub tag: u8,
}

impl VariantSpec {
    /// The all-identity specification (variant 0 / an unprotected process).
    #[must_use]
    pub fn identity() -> Self {
        VariantSpec::default()
    }

    /// Sets the UID reexpression.
    #[must_use]
    pub fn with_uid(mut self, uid: UidTransform) -> Self {
        self.uid = uid;
        self
    }

    /// Sets the address transform.
    #[must_use]
    pub fn with_addr(mut self, addr: AddressTransform) -> Self {
        self.addr = addr;
        self
    }

    /// Sets the instruction tag.
    #[must_use]
    pub fn with_tag(mut self, tag: u8) -> Self {
        self.tag = tag;
        self
    }

    /// Returns `true` if every data class uses the identity reexpression and
    /// the default tag — i.e. this variant is an unmodified process.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.uid.is_identity() && self.addr.is_identity() && self.tag == 0
    }

    /// Merges another specification into this one, used when composing
    /// variations (§5 of the paper). Non-identity components of `other`
    /// override identity components of `self`; two conflicting non-identity
    /// components are rejected because composed variations must each keep
    /// their normal-equivalence argument intact.
    ///
    /// # Errors
    ///
    /// Returns a description of the conflicting component if both
    /// specifications define a non-identity reexpression for the same data
    /// class.
    pub fn compose(&self, other: &VariantSpec) -> Result<VariantSpec, String> {
        let uid = match (self.uid.is_identity(), other.uid.is_identity()) {
            (_, true) => self.uid,
            (true, false) => other.uid,
            (false, false) => return Err("both variations reexpress UID data".to_string()),
        };
        let addr = match (self.addr.is_identity(), other.addr.is_identity()) {
            (_, true) => self.addr,
            (true, false) => other.addr,
            (false, false) => return Err("both variations reexpress addresses".to_string()),
        };
        let tag = match (self.tag, other.tag) {
            (t, 0) => t,
            (0, t) => t,
            (a, b) if a == b => a,
            _ => return Err("both variations assign instruction tags".to_string()),
        };
        Ok(VariantSpec { uid, addr, tag })
    }
}

impl fmt::Display for VariantSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "uid: {}; addr: {}; tag: {}",
            self.uid, self.addr, self.tag
        )
    }
}

/// A list of variant specifications, indexed by [`VariantId`].
///
/// # Example
///
/// ```
/// use nvariant_diversity::{VariantSet, Variation};
/// use nvariant_types::VariantId;
///
/// let set = VariantSet::from_variation(&Variation::uid_diversity(), 2);
/// assert_eq!(set.len(), 2);
/// assert!(set.spec(VariantId::P0).is_identity());
/// assert!(!set.spec(VariantId::P1).is_identity());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VariantSet {
    specs: Vec<VariantSpec>,
}

impl VariantSet {
    /// Creates a set from explicit specifications.
    #[must_use]
    pub fn new(specs: Vec<VariantSpec>) -> Self {
        VariantSet { specs }
    }

    /// Creates the specifications for `n` variants of a variation.
    #[must_use]
    pub fn from_variation(variation: &crate::variation::Variation, n: usize) -> Self {
        VariantSet {
            specs: variation.variant_specs(n),
        }
    }

    /// Number of variants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Returns `true` if the set holds no variants.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The specification of one variant.
    ///
    /// # Panics
    ///
    /// Panics if the variant index is out of range.
    #[must_use]
    pub fn spec(&self, variant: VariantId) -> &VariantSpec {
        &self.specs[variant.index()]
    }

    /// Iterates over `(variant, spec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VariantId, &VariantSpec)> {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, spec)| (VariantId::new(i), spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variation::Variation;

    #[test]
    fn builder_methods() {
        let spec = VariantSpec::identity()
            .with_uid(UidTransform::paper_mask())
            .with_addr(AddressTransform::PartitionHigh)
            .with_tag(1);
        assert!(!spec.is_identity());
        assert_eq!(spec.tag, 1);
        assert!(VariantSpec::identity().is_identity());
        assert!(format!("{spec}").contains("0x7FFFFFFF"));
    }

    #[test]
    fn compose_merges_disjoint_classes() {
        let uid_spec = VariantSpec::identity().with_uid(UidTransform::paper_mask());
        let addr_spec = VariantSpec::identity().with_addr(AddressTransform::PartitionHigh);
        let composed = uid_spec.compose(&addr_spec).unwrap();
        assert_eq!(composed.uid, UidTransform::paper_mask());
        assert_eq!(composed.addr, AddressTransform::PartitionHigh);
        // Composition with identity on both sides is identity.
        assert!(VariantSpec::identity()
            .compose(&VariantSpec::identity())
            .unwrap()
            .is_identity());
    }

    #[test]
    fn compose_rejects_conflicts() {
        let a = VariantSpec::identity().with_uid(UidTransform::paper_mask());
        let b = VariantSpec::identity().with_uid(UidTransform::full_mask());
        assert!(a.compose(&b).is_err());
        let c = VariantSpec::identity().with_addr(AddressTransform::PartitionHigh);
        let d = VariantSpec::identity().with_addr(AddressTransform::PartitionHighWithOffset(4));
        assert!(c.compose(&d).is_err());
        let e = VariantSpec::identity().with_tag(1);
        let f = VariantSpec::identity().with_tag(2);
        assert!(e.compose(&f).is_err());
        // Equal tags are not a conflict.
        assert!(e.compose(&VariantSpec::identity().with_tag(1)).is_ok());
    }

    #[test]
    fn variant_set_indexing_and_iteration() {
        let set = VariantSet::from_variation(&Variation::uid_diversity(), 3);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        assert!(set.spec(VariantId::P0).is_identity());
        let collected: Vec<_> = set.iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[1].0, VariantId::P1);
    }
}
