//! Reexpression functions for addresses (address-space partitioning).

use nvariant_types::VirtAddr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A reexpression function over virtual addresses.
///
/// Address-space partitioning (Cox et al., Table 1 row 1) places variant 1's
/// address space entirely in the upper half (`R₁(a) = a + 0x80000000`);
/// the extended variant of Bruschi et al. additionally skews the layout by a
/// small offset so even partial-overwrite attacks are (probabilistically)
/// disturbed.
///
/// # Example
///
/// ```
/// use nvariant_diversity::AddressTransform;
/// use nvariant_types::VirtAddr;
///
/// let r1 = AddressTransform::PartitionHigh;
/// let a = VirtAddr::new(0x0010_0000);
/// assert_eq!(r1.apply(a).as_u32(), 0x8010_0000);
/// assert_eq!(r1.invert(r1.apply(a)), a);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AddressTransform {
    /// The identity mapping (variant 0).
    #[default]
    Identity,
    /// `R(a) = a + 0x80000000`: the partitioned upper half.
    PartitionHigh,
    /// `R(a) = a + 0x80000000 + offset`: extended partitioning.
    PartitionHighWithOffset(u32),
}

impl AddressTransform {
    /// The partition constant `0x80000000`.
    pub const PARTITION: u32 = 0x8000_0000;

    /// Applies `R` to a canonical address.
    #[must_use]
    pub fn apply(&self, addr: VirtAddr) -> VirtAddr {
        match self {
            AddressTransform::Identity => addr,
            AddressTransform::PartitionHigh => {
                VirtAddr::new(addr.as_u32().wrapping_add(Self::PARTITION))
            }
            AddressTransform::PartitionHighWithOffset(offset) => VirtAddr::new(
                addr.as_u32()
                    .wrapping_add(Self::PARTITION)
                    .wrapping_add(*offset),
            ),
        }
    }

    /// Applies `R⁻¹`, recovering the canonical address.
    #[must_use]
    pub fn invert(&self, addr: VirtAddr) -> VirtAddr {
        match self {
            AddressTransform::Identity => addr,
            AddressTransform::PartitionHigh => {
                VirtAddr::new(addr.as_u32().wrapping_sub(Self::PARTITION))
            }
            AddressTransform::PartitionHighWithOffset(offset) => VirtAddr::new(
                addr.as_u32()
                    .wrapping_sub(Self::PARTITION)
                    .wrapping_sub(*offset),
            ),
        }
    }

    /// Returns `true` if this transform is the identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        matches!(self, AddressTransform::Identity)
    }

    /// The byte displacement this transform adds to every address.
    #[must_use]
    pub fn displacement(&self) -> u32 {
        match self {
            AddressTransform::Identity => 0,
            AddressTransform::PartitionHigh => Self::PARTITION,
            AddressTransform::PartitionHighWithOffset(offset) => {
                Self::PARTITION.wrapping_add(*offset)
            }
        }
    }

    /// Human-readable description of `R`, as in Table 1.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            AddressTransform::Identity => "R(a) = a".to_string(),
            AddressTransform::PartitionHigh => "R(a) = a + 0x80000000".to_string(),
            AddressTransform::PartitionHighWithOffset(offset) => {
                format!("R(a) = a + 0x80000000 + {offset:#x}")
            }
        }
    }

    /// Human-readable description of `R⁻¹`.
    #[must_use]
    pub fn describe_inverse(&self) -> String {
        match self {
            AddressTransform::Identity => "R\u{207b}\u{00b9}(a) = a".to_string(),
            AddressTransform::PartitionHigh => "R\u{207b}\u{00b9}(a) = a - 0x80000000".to_string(),
            AddressTransform::PartitionHighWithOffset(offset) => {
                format!("R\u{207b}\u{00b9}(a) = a - 0x80000000 - {offset:#x}")
            }
        }
    }
}

impl fmt::Display for AddressTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn partition_moves_to_upper_half() {
        let r1 = AddressTransform::PartitionHigh;
        let a = VirtAddr::new(0x0000_4000);
        assert!(r1.apply(a).high_bit_set());
        assert!(!AddressTransform::Identity.apply(a).high_bit_set());
        assert_eq!(r1.displacement(), 0x8000_0000);
        assert_eq!(AddressTransform::Identity.displacement(), 0);
    }

    #[test]
    fn extended_partition_adds_offset() {
        let r1 = AddressTransform::PartitionHighWithOffset(0x40);
        let a = VirtAddr::new(0x0000_4000);
        assert_eq!(r1.apply(a).as_u32(), 0x8000_4040);
        assert_eq!(r1.invert(r1.apply(a)), a);
        assert_eq!(r1.displacement(), 0x8000_0040);
    }

    #[test]
    fn descriptions_match_table_1() {
        assert_eq!(AddressTransform::Identity.describe(), "R(a) = a");
        assert_eq!(
            AddressTransform::PartitionHigh.describe(),
            "R(a) = a + 0x80000000"
        );
        assert!(AddressTransform::PartitionHighWithOffset(0x40)
            .describe_inverse()
            .contains("- 0x40"));
        assert!(!AddressTransform::PartitionHigh.is_identity());
        assert!(AddressTransform::Identity.is_identity());
    }

    proptest! {
        /// Inverse property for every address transform.
        #[test]
        fn prop_inverse_property(raw in any::<u32>(), offset in 0u32..0x1000) {
            for transform in [
                AddressTransform::Identity,
                AddressTransform::PartitionHigh,
                AddressTransform::PartitionHighWithOffset(offset),
            ] {
                let a = VirtAddr::new(raw);
                prop_assert_eq!(transform.invert(transform.apply(a)), a);
            }
        }

        /// Disjointedness of the identity/partition pair: the two inverses
        /// never agree on any concrete address value.
        #[test]
        fn prop_disjointedness(raw in any::<u32>()) {
            let r0 = AddressTransform::Identity;
            let r1 = AddressTransform::PartitionHigh;
            prop_assert_ne!(r0.invert(VirtAddr::new(raw)), r1.invert(VirtAddr::new(raw)));
        }
    }
}
