//! The variation catalogue: Table 1 of the paper, plus composition.

use crate::addr::AddressTransform;
use crate::spec::VariantSpec;
use crate::uid::{UidTransform, FULL_UID_MASK, PAPER_UID_MASK};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A diversity variation: a rule for constructing the reexpression functions
/// of every variant in an N-variant system.
///
/// The first four correspond to the rows of Table 1; [`Variation::Composed`]
/// implements the composition of variations the paper discusses as future
/// work (§5, §7).
///
/// # Example
///
/// ```
/// use nvariant_diversity::Variation;
///
/// let rows = Variation::table1();
/// assert_eq!(rows.len(), 4);
/// assert_eq!(rows[3].variation, "UID Variation");
/// assert!(rows[3].reexpression_p1.contains("0x7FFFFFFF"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Variation {
    /// Address-space partitioning (Cox et al. 2006).
    AddressPartitioning,
    /// Extended address-space partitioning (Bruschi et al. 2007).
    ExtendedAddressPartitioning {
        /// The extra skew added on top of the partition bit.
        offset: u32,
    },
    /// Instruction-set tagging (Cox et al. 2006).
    InstructionTagging,
    /// The UID data variation introduced by this paper.
    UidDiversity {
        /// The XOR mask used by variant 1 (and derived masks for further
        /// variants).
        mask: u32,
    },
    /// Several variations applied simultaneously to the same variants.
    Composed(Vec<Variation>),
}

impl Variation {
    /// Address-space partitioning with the standard partition bit.
    #[must_use]
    pub fn address_partitioning() -> Self {
        Variation::AddressPartitioning
    }

    /// Extended address-space partitioning with the given extra offset.
    #[must_use]
    pub fn extended_address_partitioning(offset: u32) -> Self {
        Variation::ExtendedAddressPartitioning { offset }
    }

    /// Instruction-set tagging.
    #[must_use]
    pub fn instruction_tagging() -> Self {
        Variation::InstructionTagging
    }

    /// The paper's UID variation (`R₁(u) = u ⊕ 0x7FFFFFFF`).
    #[must_use]
    pub fn uid_diversity() -> Self {
        Variation::UidDiversity {
            mask: PAPER_UID_MASK,
        }
    }

    /// The full-bit-flip UID variation discussed and rejected in §3.2
    /// (`R₁(u) = u ⊕ 0xFFFFFFFF`), kept for the ablation study.
    #[must_use]
    pub fn uid_diversity_full_mask() -> Self {
        Variation::UidDiversity {
            mask: FULL_UID_MASK,
        }
    }

    /// Composes several variations (e.g. address partitioning **and** UID
    /// diversity in the same pair of variants).
    #[must_use]
    pub fn composed(parts: Vec<Variation>) -> Self {
        Variation::Composed(parts)
    }

    /// Short human-readable name.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Variation::AddressPartitioning => "Address Space Partitioning".to_string(),
            Variation::ExtendedAddressPartitioning { .. } => {
                "Extended Address Space Partitioning".to_string()
            }
            Variation::InstructionTagging => "Instruction Set Tagging".to_string(),
            Variation::UidDiversity { mask } if *mask == PAPER_UID_MASK => {
                "UID Variation".to_string()
            }
            Variation::UidDiversity { mask } => format!("UID Variation (mask {mask:#010X})"),
            Variation::Composed(parts) => {
                let names: Vec<String> = parts.iter().map(Variation::name).collect();
                format!("Composed [{}]", names.join(" + "))
            }
        }
    }

    /// The *target type* column of Table 1.
    #[must_use]
    pub fn target_type(&self) -> String {
        match self {
            Variation::AddressPartitioning | Variation::ExtendedAddressPartitioning { .. } => {
                "Address".to_string()
            }
            Variation::InstructionTagging => "Instruction".to_string(),
            Variation::UidDiversity { .. } => "UID".to_string(),
            Variation::Composed(parts) => {
                let mut types: Vec<String> = parts.iter().map(Variation::target_type).collect();
                types.dedup();
                types.join(" + ")
            }
        }
    }

    /// The per-variant specifications for an `n`-variant deployment.
    ///
    /// # Panics
    ///
    /// Panics if a composed variation assigns conflicting reexpressions to
    /// the same data class; use [`Variation::try_variant_specs`] to handle
    /// that case gracefully.
    #[must_use]
    pub fn variant_specs(&self, n: usize) -> Vec<VariantSpec> {
        self.try_variant_specs(n)
            .expect("composed variations must diversify disjoint data classes")
    }

    /// The per-variant specifications for an `n`-variant deployment.
    ///
    /// # Errors
    ///
    /// Returns a description of the conflict if a composed variation assigns
    /// conflicting reexpressions to the same data class.
    pub fn try_variant_specs(&self, n: usize) -> Result<Vec<VariantSpec>, String> {
        let mut specs = Vec::with_capacity(n);
        for index in 0..n {
            specs.push(self.spec_for(index)?);
        }
        Ok(specs)
    }

    fn spec_for(&self, index: usize) -> Result<VariantSpec, String> {
        if index == 0 {
            // Variant 0 always runs the canonical representation.
            return Ok(VariantSpec::identity());
        }
        let spec = match self {
            Variation::AddressPartitioning => VariantSpec::identity().with_addr(if index == 1 {
                AddressTransform::PartitionHigh
            } else {
                AddressTransform::PartitionHighWithOffset(0x1_0000 * (index as u32 - 1))
            }),
            Variation::ExtendedAddressPartitioning { offset } => VariantSpec::identity().with_addr(
                AddressTransform::PartitionHighWithOffset(offset.wrapping_mul(index as u32)),
            ),
            Variation::InstructionTagging => {
                VariantSpec::identity().with_tag(u8::try_from(index).unwrap_or(u8::MAX))
            }
            Variation::UidDiversity { mask } => {
                // Each additional variant gets a distinct non-zero mask so the
                // disjointedness property holds pairwise.
                let variant_mask = mask ^ (index as u32 - 1);
                if variant_mask == 0 {
                    return Err(format!(
                        "variant {index} would receive the identity mask; choose a different base mask"
                    ));
                }
                VariantSpec::identity().with_uid(UidTransform::Xor(variant_mask))
            }
            Variation::Composed(parts) => {
                let mut spec = VariantSpec::identity();
                for part in parts {
                    spec = spec.compose(&part.spec_for(index)?)?;
                }
                spec
            }
        };
        Ok(spec)
    }
}

impl fmt::Display for Variation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// One row of the paper's Table 1, rendered for a two-variant deployment.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Variation name.
    pub variation: String,
    /// Target data type.
    pub target_type: String,
    /// `R₀` description.
    pub reexpression_p0: String,
    /// `R₁` description.
    pub reexpression_p1: String,
    /// `R₀⁻¹` description.
    pub inverse_p0: String,
    /// `R₁⁻¹` description.
    pub inverse_p1: String,
}

impl Variation {
    /// Renders this variation as a Table 1 row for a two-variant system.
    #[must_use]
    pub fn table1_row(&self) -> Table1Row {
        let specs = self
            .try_variant_specs(2)
            .unwrap_or_else(|_| vec![VariantSpec::identity(), VariantSpec::identity()]);
        let (r0, r1, i0, i1) = match self {
            Variation::InstructionTagging => (
                "R(inst) = 0 || inst".to_string(),
                "R(inst) = 1 || inst".to_string(),
                "R\u{207b}\u{00b9}(0 || inst) = inst".to_string(),
                "R\u{207b}\u{00b9}(1 || inst) = inst".to_string(),
            ),
            Variation::UidDiversity { .. } => (
                specs[0].uid.describe(),
                specs[1].uid.describe(),
                specs[0].uid.describe_inverse(),
                specs[1].uid.describe_inverse(),
            ),
            _ => (
                specs[0].addr.describe(),
                specs[1].addr.describe(),
                specs[0].addr.describe_inverse(),
                specs[1].addr.describe_inverse(),
            ),
        };
        Table1Row {
            variation: self.name(),
            target_type: self.target_type(),
            reexpression_p0: r0,
            reexpression_p1: r1,
            inverse_p0: i0,
            inverse_p1: i1,
        }
    }

    /// The four rows of the paper's Table 1.
    #[must_use]
    pub fn table1() -> Vec<Table1Row> {
        vec![
            Variation::address_partitioning().table1_row(),
            Variation::extended_address_partitioning(0x40).table1_row(),
            Variation::instruction_tagging().table1_row(),
            Variation::uid_diversity().table1_row(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_types::Uid;

    #[test]
    fn variant_zero_is_always_identity() {
        for variation in [
            Variation::address_partitioning(),
            Variation::extended_address_partitioning(0x40),
            Variation::instruction_tagging(),
            Variation::uid_diversity(),
        ] {
            let specs = variation.variant_specs(2);
            assert!(specs[0].is_identity(), "{variation} variant 0 not identity");
            assert!(!specs[1].is_identity(), "{variation} variant 1 identity");
        }
    }

    #[test]
    fn uid_diversity_masks_are_pairwise_distinct() {
        let specs = Variation::uid_diversity().variant_specs(4);
        let mut masks = std::collections::BTreeSet::new();
        for spec in &specs[1..] {
            match spec.uid {
                UidTransform::Xor(mask) => assert!(masks.insert(mask)),
                UidTransform::Identity => panic!("non-zero variants must reexpress"),
            }
        }
        // Pairwise disjointedness of inverses over a sample value.
        for i in 0..specs.len() {
            for j in (i + 1)..specs.len() {
                assert_ne!(
                    specs[i].uid.invert(Uid::new(42)),
                    specs[j].uid.invert(Uid::new(42)),
                    "variants {i} and {j} agree"
                );
            }
        }
    }

    #[test]
    fn instruction_tagging_assigns_distinct_tags() {
        let specs = Variation::instruction_tagging().variant_specs(3);
        assert_eq!(specs[0].tag, 0);
        assert_eq!(specs[1].tag, 1);
        assert_eq!(specs[2].tag, 2);
    }

    #[test]
    fn composition_merges_uid_and_address() {
        let composed = Variation::composed(vec![
            Variation::uid_diversity(),
            Variation::address_partitioning(),
        ]);
        let specs = composed.variant_specs(2);
        assert_eq!(specs[1].uid, UidTransform::paper_mask());
        assert_eq!(specs[1].addr, AddressTransform::PartitionHigh);
        assert!(composed.name().contains("Composed"));
        assert_eq!(composed.target_type(), "UID + Address");
    }

    #[test]
    fn conflicting_composition_is_rejected() {
        let conflicted = Variation::composed(vec![
            Variation::uid_diversity(),
            Variation::uid_diversity_full_mask(),
        ]);
        assert!(conflicted.try_variant_specs(2).is_err());
    }

    #[test]
    fn table1_matches_the_paper() {
        let rows = Variation::table1();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].variation, "Address Space Partitioning");
        assert_eq!(rows[0].target_type, "Address");
        assert_eq!(rows[0].reexpression_p0, "R(a) = a");
        assert_eq!(rows[0].reexpression_p1, "R(a) = a + 0x80000000");
        assert!(rows[1].reexpression_p1.contains("0x40"));
        assert_eq!(rows[2].target_type, "Instruction");
        assert!(rows[2].reexpression_p1.contains("1 || inst"));
        assert_eq!(rows[3].target_type, "UID");
        assert!(rows[3].inverse_p1.contains("0x7FFFFFFF"));
    }

    #[test]
    fn extended_partitioning_scales_offset_per_variant() {
        let specs = Variation::extended_address_partitioning(0x40).variant_specs(3);
        assert_eq!(
            specs[1].addr,
            AddressTransform::PartitionHighWithOffset(0x40)
        );
        assert_eq!(
            specs[2].addr,
            AddressTransform::PartitionHighWithOffset(0x80)
        );
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(format!("{}", Variation::uid_diversity()), "UID Variation");
        assert!(Variation::uid_diversity_full_mask()
            .name()
            .contains("0xFFFFFFFF"));
    }
}
