//! Canonicalization: mapping variant-local concrete values back to the
//! canonical representation for comparison.
//!
//! The paper's normal-equivalence argument (§2.2) relies on a
//! *canonicalization function* that maps the states of all variants onto a
//! common canonical state. The monitor only ever compares canonicalized
//! values: raw values legitimately differ between variants (that is the
//! whole point of the diversity), and it is their canonical meanings that
//! must agree.

use crate::spec::VariantSpec;
use nvariant_types::Word;
use serde::{Deserialize, Serialize};

/// The data class of a system-call argument, which determines which inverse
/// reexpression function the monitor applies before comparing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataClass {
    /// UID/GID values: canonicalized with the UID inverse reexpression.
    Uid,
    /// Pointers into variant memory: canonicalized with the address inverse
    /// reexpression.
    Address,
    /// Everything else: compared verbatim.
    Opaque,
}

/// Applies the inverse reexpression functions of one variant.
///
/// # Example
///
/// ```
/// use nvariant_diversity::{Canonicalizer, UidTransform, VariantSpec};
/// use nvariant_diversity::canonical::DataClass;
/// use nvariant_types::Word;
///
/// let spec = VariantSpec::identity().with_uid(UidTransform::paper_mask());
/// let canon = Canonicalizer::new(spec);
/// // The variant's representation of root (0x7FFFFFFF) canonicalizes to 0.
/// let root = Word::from_u32(0x7FFF_FFFF);
/// assert_eq!(canon.canonical(root, DataClass::Uid), Word::ZERO);
/// // Opaque data passes through untouched.
/// assert_eq!(canon.canonical(root, DataClass::Opaque), root);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Canonicalizer {
    spec: VariantSpec,
}

impl Canonicalizer {
    /// Creates a canonicalizer for one variant's specification.
    #[must_use]
    pub fn new(spec: VariantSpec) -> Self {
        Canonicalizer { spec }
    }

    /// The variant specification this canonicalizer inverts.
    #[must_use]
    pub fn spec(&self) -> &VariantSpec {
        &self.spec
    }

    /// Canonicalizes a UID-class word (applies `R⁻¹` for UID data).
    #[must_use]
    pub fn canonical_uid(&self, word: Word) -> Word {
        self.spec.uid.invert_word(word)
    }

    /// Re-expresses a canonical UID word into this variant's representation
    /// (applies `R` for UID data) — used for system calls that *return* UIDs.
    #[must_use]
    pub fn reexpress_uid(&self, word: Word) -> Word {
        self.spec.uid.apply_word(word)
    }

    /// Canonicalizes an address-class word (applies `R⁻¹` for addresses).
    #[must_use]
    pub fn canonical_addr(&self, word: Word) -> Word {
        Word::from_addr(self.spec.addr.invert(word.as_addr()))
    }

    /// Canonicalizes a word according to its data class.
    #[must_use]
    pub fn canonical(&self, word: Word, class: DataClass) -> Word {
        match class {
            DataClass::Uid => self.canonical_uid(word),
            DataClass::Address => self.canonical_addr(word),
            DataClass::Opaque => word,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddressTransform;
    use crate::uid::UidTransform;
    use proptest::prelude::*;

    fn paper_variant() -> Canonicalizer {
        Canonicalizer::new(VariantSpec::identity().with_uid(UidTransform::paper_mask()))
    }

    fn partitioned_variant() -> Canonicalizer {
        Canonicalizer::new(VariantSpec::identity().with_addr(AddressTransform::PartitionHigh))
    }

    #[test]
    fn uid_canonicalization_round_trips() {
        let canon = paper_variant();
        let canonical = Word::from_u32(48);
        let reexpressed = canon.reexpress_uid(canonical);
        assert_ne!(reexpressed, canonical);
        assert_eq!(canon.canonical_uid(reexpressed), canonical);
        assert_eq!(canon.spec().uid, UidTransform::paper_mask());
    }

    #[test]
    fn address_canonicalization_strips_partition() {
        let canon = partitioned_variant();
        let hi = Word::from_u32(0x8010_0040);
        assert_eq!(canon.canonical_addr(hi).as_u32(), 0x0010_0040);
        assert_eq!(
            canon.canonical(hi, DataClass::Address).as_u32(),
            0x0010_0040
        );
    }

    #[test]
    fn opaque_data_is_untouched() {
        let canon = paper_variant();
        let w = Word::from_u32(0xDEAD_BEEF);
        assert_eq!(canon.canonical(w, DataClass::Opaque), w);
    }

    #[test]
    fn identity_variant_canonicalization_is_identity() {
        let canon = Canonicalizer::new(VariantSpec::identity());
        for raw in [0u32, 48, 0x7FFF_FFFF, u32::MAX] {
            let w = Word::from_u32(raw);
            assert_eq!(canon.canonical(w, DataClass::Uid), w);
            assert_eq!(canon.canonical(w, DataClass::Address), w);
        }
    }

    proptest! {
        /// Normal equivalence at the value level: for any canonical UID, the
        /// two variants' concrete representations differ, yet both
        /// canonicalize back to the same value.
        #[test]
        fn prop_two_variant_uid_agreement(raw in any::<u32>()) {
            let v0 = Canonicalizer::new(VariantSpec::identity());
            let v1 = paper_variant();
            let canonical = Word::from_u32(raw);
            let c0 = v0.reexpress_uid(canonical);
            let c1 = v1.reexpress_uid(canonical);
            prop_assert_ne!(c0, c1);
            prop_assert_eq!(v0.canonical_uid(c0), v1.canonical_uid(c1));
        }

        /// Detection at the value level: a single concrete value injected
        /// into both variants never canonicalizes to the same meaning.
        #[test]
        fn prop_injected_value_diverges(raw in any::<u32>()) {
            let v0 = Canonicalizer::new(VariantSpec::identity());
            let v1 = paper_variant();
            let injected = Word::from_u32(raw);
            prop_assert_ne!(v0.canonical_uid(injected), v1.canonical_uid(injected));
        }
    }
}
