//! Reexpression functions for UID-class data.

use nvariant_types::{Uid, Word};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The reexpression mask used by the paper's UID variation
/// (`R₁(u) = u ⊕ 0x7FFFFFFF`).
///
/// The high bit is deliberately left unflipped because the kernel treats
/// negative UID values as special cases (§3.2); the price is susceptibility
/// to a *single-bit* overwrite of the high bit, which the paper argues is
/// outside the realistic remote-attacker threat model.
pub const PAPER_UID_MASK: u32 = 0x7FFF_FFFF;

/// The "ideal" mask that flips every bit (`R₁(u) = u ⊕ 0xFFFFFFFF`),
/// discussed and rejected in §3.2 of the paper.
pub const FULL_UID_MASK: u32 = 0xFFFF_FFFF;

/// A reexpression function over UID-class values.
///
/// All supported reexpressions are XOR-based, so the function is its own
/// inverse; the [`UidTransform::invert`] method is still distinct in the API
/// because the *model* distinguishes `R` from `R⁻¹` and other reexpression
/// families (e.g. additive ones) would not be involutions.
///
/// # Example
///
/// ```
/// use nvariant_diversity::UidTransform;
/// use nvariant_types::Uid;
///
/// let r1 = UidTransform::paper_mask();
/// let reexpressed = r1.apply(Uid::new(48));
/// assert_eq!(reexpressed.as_u32(), 48 ^ 0x7FFF_FFFF);
/// assert_eq!(r1.invert(reexpressed), Uid::new(48));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum UidTransform {
    /// The identity reexpression (used by variant 0).
    #[default]
    Identity,
    /// XOR with a fixed mask.
    Xor(u32),
}

impl UidTransform {
    /// The paper's `R₁`: XOR with [`PAPER_UID_MASK`].
    #[must_use]
    pub fn paper_mask() -> Self {
        UidTransform::Xor(PAPER_UID_MASK)
    }

    /// The full bit-flip discussed in §3.2: XOR with [`FULL_UID_MASK`].
    #[must_use]
    pub fn full_mask() -> Self {
        UidTransform::Xor(FULL_UID_MASK)
    }

    /// Applies the reexpression function `R` to a canonical UID.
    #[must_use]
    pub fn apply(&self, uid: Uid) -> Uid {
        match self {
            UidTransform::Identity => uid,
            UidTransform::Xor(mask) => uid.xor(*mask),
        }
    }

    /// Applies the inverse reexpression function `R⁻¹` to a concrete
    /// (variant-local) UID, recovering the canonical value.
    #[must_use]
    pub fn invert(&self, uid: Uid) -> Uid {
        // XOR reexpressions are involutions.
        self.apply(uid)
    }

    /// Applies `R` to a raw machine word holding a UID.
    #[must_use]
    pub fn apply_word(&self, word: Word) -> Word {
        Word::from_uid(self.apply(word.as_uid()))
    }

    /// Applies `R⁻¹` to a raw machine word holding a UID.
    #[must_use]
    pub fn invert_word(&self, word: Word) -> Word {
        Word::from_uid(self.invert(word.as_uid()))
    }

    /// Returns the value that *represents root* inside a variant using this
    /// reexpression (e.g. `0x7FFFFFFF` for the paper's `R₁`).
    #[must_use]
    pub fn variant_root(&self) -> Uid {
        self.apply(Uid::ROOT)
    }

    /// Returns `true` if this transform is the identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        matches!(self, UidTransform::Identity) || matches!(self, UidTransform::Xor(0))
    }

    /// Human-readable description of `R`, as in Table 1 of the paper.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            UidTransform::Identity => "R(u) = u".to_string(),
            UidTransform::Xor(mask) => format!("R(u) = u \u{2295} {mask:#010X}"),
        }
    }

    /// Human-readable description of `R⁻¹`.
    #[must_use]
    pub fn describe_inverse(&self) -> String {
        match self {
            UidTransform::Identity => "R\u{207b}\u{00b9}(u) = u".to_string(),
            UidTransform::Xor(mask) => {
                format!("R\u{207b}\u{00b9}(u) = u \u{2295} {mask:#010X}")
            }
        }
    }
}

impl fmt::Display for UidTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_is_identity() {
        let r = UidTransform::Identity;
        for raw in [0u32, 1, 48, 1000, u32::MAX] {
            assert_eq!(r.apply(Uid::new(raw)), Uid::new(raw));
            assert_eq!(r.invert(Uid::new(raw)), Uid::new(raw));
        }
        assert!(r.is_identity());
        assert!(UidTransform::Xor(0).is_identity());
        assert!(!UidTransform::paper_mask().is_identity());
    }

    #[test]
    fn paper_mask_maps_root_to_all_low_bits() {
        let r1 = UidTransform::paper_mask();
        assert_eq!(r1.variant_root().as_u32(), 0x7FFF_FFFF);
        assert_eq!(r1.apply(Uid::new(48)).as_u32(), 0x7FFF_FFCF);
        // High bit is preserved (the §3.2 caveat).
        assert_eq!(
            r1.apply(Uid::new(0x8000_0000)).as_u32() & 0x8000_0000,
            0x8000_0000
        );
    }

    #[test]
    fn full_mask_flips_every_bit() {
        let r = UidTransform::full_mask();
        assert_eq!(r.apply(Uid::ROOT).as_u32(), u32::MAX);
        assert_eq!(r.apply(Uid::new(u32::MAX)), Uid::ROOT);
    }

    #[test]
    fn word_view_matches_uid_view() {
        let r1 = UidTransform::paper_mask();
        let word = Word::from_u32(48);
        assert_eq!(r1.apply_word(word).as_u32(), 48 ^ 0x7FFF_FFFF);
        assert_eq!(r1.invert_word(r1.apply_word(word)), word);
    }

    #[test]
    fn descriptions_match_table_1() {
        assert_eq!(UidTransform::Identity.describe(), "R(u) = u");
        assert!(UidTransform::paper_mask().describe().contains("0x7FFFFFFF"));
        assert!(UidTransform::paper_mask()
            .describe_inverse()
            .contains("0x7FFFFFFF"));
        assert_eq!(format!("{}", UidTransform::Identity), "R(u) = u");
    }

    proptest! {
        /// Inverse property (§2.2, property 3): ∀x, R⁻¹(R(x)) ≡ x.
        #[test]
        fn prop_inverse_property(raw in any::<u32>(), mask in any::<u32>()) {
            let r = UidTransform::Xor(mask);
            prop_assert_eq!(r.invert(r.apply(Uid::new(raw))), Uid::new(raw));
            let id = UidTransform::Identity;
            prop_assert_eq!(id.invert(id.apply(Uid::new(raw))), Uid::new(raw));
        }

        /// Disjointedness (§2.3): with a non-zero mask, the two inverse
        /// functions never agree on any concrete value.
        #[test]
        fn prop_disjointedness_of_paper_pair(raw in any::<u32>()) {
            let r0 = UidTransform::Identity;
            let r1 = UidTransform::paper_mask();
            prop_assert_ne!(r0.invert(Uid::new(raw)), r1.invert(Uid::new(raw)));
        }

        /// The reexpressed value always differs from the canonical value for
        /// non-trivial masks (flipping bits always changes the value).
        #[test]
        fn prop_reexpression_changes_value(raw in any::<u32>()) {
            let r1 = UidTransform::paper_mask();
            prop_assert_ne!(r1.apply(Uid::new(raw)), Uid::new(raw));
            let rf = UidTransform::full_mask();
            prop_assert_ne!(rf.apply(Uid::new(raw)), Uid::new(raw));
        }
    }
}
