//! Data diversity for N-variant systems: reexpression functions, variant
//! specifications, property checks and canonicalization.
//!
//! This crate is the direct implementation of the paper's model (§2):
//!
//! * a **reexpression function** `Rᵢ` maps canonical data to the concrete
//!   representation variant *i* operates on, and its inverse `Rᵢ⁻¹` is
//!   applied at the boundary to the target interpreter;
//! * **normal equivalence** requires `Rᵢ⁻¹(Rᵢ(x)) ≡ x` (the *inverse
//!   property*);
//! * **detection** requires the inverses to be *disjoint*:
//!   `∀x: R₀⁻¹(x) ≠ R₁⁻¹(x)`, so a single concrete value injected into every
//!   variant cannot mean the same thing in all of them.
//!
//! The four variations of the paper's Table 1 are provided ([`Variation`]):
//! address-space partitioning, extended address-space partitioning,
//! instruction-set tagging, and the UID data variation introduced by the
//! paper — plus the full-XOR UID variant discussed in §3.2 and variation
//! composition (§5).
//!
//! # Example
//!
//! ```
//! use nvariant_diversity::{UidTransform, Variation};
//! use nvariant_types::Uid;
//!
//! // The paper's UID reexpression: R1(u) = u ^ 0x7FFFFFFF.
//! let variation = Variation::uid_diversity();
//! let specs = variation.variant_specs(2);
//! assert_eq!(specs[0].uid, UidTransform::Identity);
//! assert_eq!(specs[1].uid.apply(Uid::ROOT).as_u32(), 0x7FFF_FFFF);
//!
//! // Inverse and disjointedness properties hold.
//! let report = nvariant_diversity::verify_variation(&variation, 2);
//! assert!(report.all_hold());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod canonical;
pub mod properties;
pub mod spec;
pub mod uid;
pub mod variation;

pub use addr::AddressTransform;
pub use canonical::{Canonicalizer, DataClass};
pub use properties::{verify_variation, PropertyCheck, PropertyReport};
pub use spec::{VariantSet, VariantSpec};
pub use uid::UidTransform;
pub use variation::{Table1Row, Variation};
